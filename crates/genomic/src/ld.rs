//! Linkage disequilibrium (LD): statistical correlation between nearby SNP
//! loci within one genome.
//!
//! §5.1 motivates the whole chapter with it: James Watson withheld his
//! ApoE locus, "however … although this sensitive gene is removed, it can
//! be inferred with the publicly available statistical correlation among
//! SNPs (i.e., linkage disequilibrium)". This module adds LD pairs as
//! SNP-SNP factors (reusing the kinship factor machinery) so the belief-
//! propagation attacker exploits them exactly like the works the chapter
//! cites ([54], [85]).
//!
//! An LD pair is parameterized by the two risk-allele frequencies
//! `(f_a, f_b)` and the correlation coefficient `r ∈ [−1, 1]` between the
//! alleles (so `r²` is the usual LD measure). Haplotype frequencies follow
//! from `D = r·√(f_a(1−f_a)f_b(1−f_b))`, and genotype-level conditionals
//! from independent haplotype draws (random mating).

use crate::factor_graph::FactorGraph;
use crate::model::SnpId;
use ppdp_errors::{ensure, Result};

/// One linkage-disequilibrium pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LdPair {
    /// First locus.
    pub a: SnpId,
    /// Second locus.
    pub b: SnpId,
    /// Risk-allele frequency at `a`.
    pub freq_a: f64,
    /// Risk-allele frequency at `b`.
    pub freq_b: f64,
    /// Allelic correlation coefficient `r` (signed; `r²` is the familiar
    /// LD strength).
    pub r: f64,
}

impl LdPair {
    /// Boundary validation of the pair's parameters: frequencies must be
    /// finite and in `[0, 1]`, the correlation finite and in `[−1, 1]`.
    /// (The computational methods below `assert!` the same ranges — this is
    /// the `Result`-returning form for data that crossed a trust boundary.)
    ///
    /// # Errors
    /// [`ppdp_errors::PpdpError::InvalidInput`].
    pub fn validate(&self) -> Result<()> {
        ensure(
            self.freq_a.is_finite() && (0.0..=1.0).contains(&self.freq_a),
            format!(
                "LD pair ({}, {}): freq_a = {} not in [0, 1]",
                self.a, self.b, self.freq_a
            ),
        )?;
        ensure(
            self.freq_b.is_finite() && (0.0..=1.0).contains(&self.freq_b),
            format!(
                "LD pair ({}, {}): freq_b = {} not in [0, 1]",
                self.a, self.b, self.freq_b
            ),
        )?;
        ensure(
            self.r.is_finite() && (-1.0..=1.0).contains(&self.r),
            format!(
                "LD pair ({}, {}): correlation r = {} not in [-1, 1]",
                self.a, self.b, self.r
            ),
        )?;
        ensure(
            self.a != self.b,
            format!("LD pair ({}, {}) links a locus to itself", self.a, self.b),
        )?;
        Ok(())
    }

    /// Haplotype frequencies `(P[r_a r_b], P[r_a ρ_b], P[ρ_a r_b],
    /// P[ρ_a ρ_b])`, clamped into the feasible region.
    pub fn haplotype_frequencies(&self) -> [f64; 4] {
        let (fa, fb, r) = (self.freq_a, self.freq_b, self.r);
        assert!(
            (0.0..=1.0).contains(&fa) && (0.0..=1.0).contains(&fb),
            "bad frequency"
        );
        assert!((-1.0..=1.0).contains(&r), "correlation out of range");
        let d = r * (fa * (1.0 - fa) * fb * (1.0 - fb)).sqrt();
        // Feasibility: all four haplotype frequencies must be ≥ 0.
        let d_max = (fa * (1.0 - fb)).min((1.0 - fa) * fb);
        let d_min = -(fa * fb).min((1.0 - fa) * (1.0 - fb));
        let d = d.clamp(d_min, d_max);
        [
            fa * fb + d,
            fa * (1.0 - fb) - d,
            (1.0 - fa) * fb - d,
            (1.0 - fa) * (1.0 - fb) + d,
        ]
    }

    /// Conditional allele distribution at `b` given the allele at `a`:
    /// `P(r_b | allele_a)`.
    fn allele_b_given_a(&self, a_is_risk: bool) -> f64 {
        let h = self.haplotype_frequencies();
        if a_is_risk {
            let z = h[0] + h[1];
            if z > 0.0 {
                h[0] / z
            } else {
                self.freq_b
            }
        } else {
            let z = h[2] + h[3];
            if z > 0.0 {
                h[2] / z
            } else {
                self.freq_b
            }
        }
    }

    /// Genotype-level conditional `table[g_a][g_b] = P(g_b | g_a)` under
    /// random mating: each of `b`'s two alleles pairs with one of `a`'s
    /// alleles on the same haplotype.
    pub fn genotype_table(&self) -> [[f64; 3]; 3] {
        let mut table = [[0.0; 3]; 3];
        for (ga, row) in table.iter_mut().enumerate() {
            // `a`'s two haplotypes carry risk alleles per genotype.
            let risk_haplos: &[bool] = match ga {
                0 => &[true, true],
                1 => &[true, false],
                _ => &[false, false],
            };
            // b's two alleles, one per haplotype.
            let p1 = self.allele_b_given_a(risk_haplos[0]);
            let p2 = self.allele_b_given_a(risk_haplos[1]);
            row[0] = p1 * p2;
            row[2] = (1.0 - p1) * (1.0 - p2);
            row[1] = 1.0 - row[0] - row[2];
        }
        table
    }

    /// The likelihood-ratio form of [`LdPair::genotype_table`] — divided by
    /// the HWE marginal at `b`, for insertion into a factor graph whose
    /// association factors already generate `b`'s base distribution (the
    /// same correction the kinship module applies).
    pub fn ratio_table(&self) -> [[f64; 3]; 3] {
        let raw = self.genotype_table();
        let fb = self.freq_b;
        let hwe = [fb * fb, 2.0 * fb * (1.0 - fb), (1.0 - fb) * (1.0 - fb)];
        let mut out = [[0.0; 3]; 3];
        for (row, raw_row) in out.iter_mut().zip(&raw) {
            for c in 0..3 {
                row[c] = if hwe[c] > 0.0 {
                    raw_row[c] / hwe[c]
                } else {
                    0.0
                };
            }
        }
        out
    }
}

/// Adds LD factors to an existing (single-individual) factor graph. Pairs
/// whose loci are not materialized in the graph are skipped and reported
/// back.
///
/// Returns the number of factors actually added.
///
/// # Errors
/// [`ppdp_errors::PpdpError::InvalidInput`] when a pair fails
/// [`LdPair::validate`] (the error names the pair's loci); no factors are
/// added in that case — validation runs before any mutation.
pub fn add_ld_factors(graph: &mut FactorGraph, pairs: &[LdPair]) -> Result<usize> {
    for p in pairs {
        p.validate()?;
    }
    let mut added = 0;
    for p in pairs {
        if let (Some(a), Some(b)) = (graph.snp_local(p.a), graph.snp_local(p.b)) {
            graph.add_kin_factor(a, b, p.ratio_table())?;
            added += 1;
        }
    }
    Ok(added)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bp::BpConfig;
    use crate::catalog::GwasCatalog;
    use crate::factor_graph::Evidence;
    use crate::model::Genotype;

    #[test]
    fn haplotypes_normalize_and_respect_feasibility() {
        for &(fa, fb, r) in &[(0.3, 0.4, 0.8), (0.1, 0.9, -0.5), (0.5, 0.5, 1.0)] {
            let p = LdPair {
                a: SnpId(0),
                b: SnpId(1),
                freq_a: fa,
                freq_b: fb,
                r,
            };
            let h = p.haplotype_frequencies();
            assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(h.iter().all(|&x| x >= -1e-12), "{h:?}");
        }
    }

    #[test]
    fn zero_correlation_gives_independence() {
        let p = LdPair {
            a: SnpId(0),
            b: SnpId(1),
            freq_a: 0.3,
            freq_b: 0.4,
            r: 0.0,
        };
        let t = p.genotype_table();
        // Every row equals the HWE marginal at b.
        let hwe = [0.4 * 0.4, 2.0 * 0.4 * 0.6, 0.6 * 0.6];
        for row in t {
            for (x, y) in row.iter().zip(&hwe) {
                assert!((x - y).abs() < 1e-12);
            }
        }
        // Ratio table is all-ones.
        for row in p.ratio_table() {
            for x in row {
                assert!((x - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn perfect_ld_makes_genotypes_track() {
        let p = LdPair {
            a: SnpId(0),
            b: SnpId(1),
            freq_a: 0.3,
            freq_b: 0.3,
            r: 1.0,
        };
        let t = p.genotype_table();
        // With r = 1 and equal frequencies, g_b = g_a deterministically.
        for g in 0..3 {
            assert!((t[g][g] - 1.0).abs() < 1e-9, "{t:?}");
        }
    }

    #[test]
    fn genotype_rows_normalize() {
        let p = LdPair {
            a: SnpId(0),
            b: SnpId(1),
            freq_a: 0.2,
            freq_b: 0.6,
            r: 0.5,
        };
        for row in p.genotype_table() {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    /// The Watson scenario: the victim withholds their ApoE-like SNP (s1)
    /// but releases a tightly-linked neighbour (s0); LD lets the attacker
    /// reconstruct the withheld locus.
    #[test]
    fn withheld_snp_reconstructed_through_ld() {
        let mut cat = GwasCatalog::new(2);
        let t0 = cat.add_trait("alzheimers-like", 0.02);
        cat.associate(SnpId(0), t0, 1.2, 0.3);
        cat.associate(SnpId(1), t0, 2.5, 0.3); // the sensitive locus

        let ev = Evidence::none().with_snp(SnpId(0), Genotype::HomRisk);
        let mut g = FactorGraph::build(&cat, &ev).unwrap();
        let baseline = BpConfig::default().run(&g);
        let s1 = g.snp_local(SnpId(1)).unwrap();
        let base_rr = baseline.snp_marginals[s1][0];

        let added = add_ld_factors(
            &mut g,
            &[LdPair {
                a: SnpId(0),
                b: SnpId(1),
                freq_a: 0.3,
                freq_b: 0.3,
                r: 0.95,
            }],
        )
        .unwrap();
        assert_eq!(added, 1);
        let with_ld = BpConfig::default().run(&g);
        assert!(
            with_ld.snp_marginals[s1][0] > base_rr + 0.3,
            "strong LD must nearly reconstruct the withheld locus: {} vs {base_rr}",
            with_ld.snp_marginals[s1][0]
        );
    }

    #[test]
    fn corrupt_ld_pair_rejected_naming_the_loci() {
        let mut cat = GwasCatalog::new(2);
        let t0 = cat.add_trait("x", 0.1);
        cat.associate(SnpId(0), t0, 1.5, 0.3);
        cat.associate(SnpId(1), t0, 1.2, 0.4);
        let mut g = FactorGraph::build(&cat, &Evidence::none()).unwrap();
        let bad = LdPair {
            a: SnpId(0),
            b: SnpId(1),
            freq_a: f64::NAN,
            freq_b: 0.3,
            r: 0.5,
        };
        let before = g.kin_factors.len();
        let e = add_ld_factors(&mut g, &[bad]).unwrap_err();
        assert_eq!(e.kind(), "invalid_input");
        assert!(e.to_string().contains("freq_a"), "{e}");
        assert_eq!(g.kin_factors.len(), before, "no partial mutation");

        let self_pair = LdPair {
            b: SnpId(0),
            freq_a: 0.3,
            ..bad
        };
        assert!(self_pair.validate().is_err(), "self-linked locus");
        let wild_r = LdPair {
            freq_a: 0.3,
            r: 1.5,
            ..bad
        };
        assert!(wild_r.validate().is_err(), "out-of-range correlation");
    }

    #[test]
    fn unmaterialized_pairs_skipped() {
        let mut cat = GwasCatalog::new(3);
        let t0 = cat.add_trait("x", 0.1);
        cat.associate(SnpId(0), t0, 1.5, 0.3);
        let mut g = FactorGraph::build(&cat, &Evidence::none()).unwrap();
        let added = add_ld_factors(
            &mut g,
            &[LdPair {
                a: SnpId(0),
                b: SnpId(2),
                freq_a: 0.3,
                freq_b: 0.3,
                r: 0.9,
            }],
        )
        .unwrap();
        assert_eq!(
            added, 0,
            "SNP 2 has no associations and is not materialized"
        );
    }
}
