//! Neighbor-SNP closures (Defs. 5.5.3 and 5.5.4): the candidate set the
//! sanitizer may hide in order to protect a target trait or SNP.

use crate::catalog::GwasCatalog;
use crate::model::{SnpId, TraitId};
use std::collections::BTreeSet;

fn snps_of_trait(cat: &GwasCatalog, t: TraitId) -> BTreeSet<SnpId> {
    cat.associations_of_trait(t).map(|a| a.snp).collect()
}

fn traits_of_snp(cat: &GwasCatalog, s: SnpId) -> BTreeSet<TraitId> {
    cat.associations_of_snp(s).map(|a| a.trait_id).collect()
}

fn snps_sharing_traits_with(cat: &GwasCatalog, snps: &BTreeSet<SnpId>) -> BTreeSet<SnpId> {
    let mut out = BTreeSet::new();
    for &s in snps {
        for t in traits_of_snp(cat, s) {
            out.extend(snps_of_trait(cat, t));
        }
    }
    out
}

/// Def. 5.5.3 — the neighbor SNPs of trait `t`:
/// 1. SNPs directly associated with `t`;
/// 2. SNPs associated with the traits that share common SNPs with `t`;
/// 3. SNPs sharing common traits with the case-2 SNPs.
pub fn neighbor_snps_of_trait(cat: &GwasCatalog, t: TraitId) -> Vec<SnpId> {
    let s1 = snps_of_trait(cat, t);
    // Traits sharing a SNP with t.
    let sharing_traits: BTreeSet<TraitId> = s1
        .iter()
        .flat_map(|&s| traits_of_snp(cat, s))
        .filter(|&tj| tj != t)
        .collect();
    let s2: BTreeSet<SnpId> = sharing_traits
        .iter()
        .flat_map(|&tj| snps_of_trait(cat, tj))
        .collect();
    let s3 = snps_sharing_traits_with(cat, &s2);
    let mut all = s1;
    all.extend(s2);
    all.extend(s3);
    all.into_iter().collect()
}

/// Def. 5.5.4 — the neighbor SNPs of SNP `s`:
/// 1. SNPs associated with a common trait with `s`;
/// 2. SNPs associated with the traits associated with the case-1 SNPs;
/// 3. SNPs sharing common traits with the case-2 SNPs.
///
/// `s` itself is excluded.
pub fn neighbor_snps_of_snp(cat: &GwasCatalog, s: SnpId) -> Vec<SnpId> {
    let own_traits = traits_of_snp(cat, s);
    let s1: BTreeSet<SnpId> = own_traits
        .iter()
        .flat_map(|&t| snps_of_trait(cat, t))
        .filter(|&x| x != s)
        .collect();
    let t2: BTreeSet<TraitId> = s1.iter().flat_map(|&x| traits_of_snp(cat, x)).collect();
    let s2: BTreeSet<SnpId> = t2.iter().flat_map(|&t| snps_of_trait(cat, t)).collect();
    let s3 = snps_sharing_traits_with(cat, &s2);
    let mut all = s1;
    all.extend(s2);
    all.extend(s3);
    all.remove(&s);
    all.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor_graph::figure_5_1_catalog;

    // Fig. 5.1 topology (0-indexed): t0 ↔ {s0,s1}, t1 ↔ {s1,s2,s3},
    // t2 ↔ {s4}.

    #[test]
    fn trait_neighbors_follow_example_in_text() {
        // The running example under Def. 5.5.3: s1, s2, s3 are all neighbor
        // SNPs of t1 because s2/s3 are associated with t2 which shares s1
        // with t1 (1-indexed in the text; 0-indexed here).
        let cat = figure_5_1_catalog();
        let n = neighbor_snps_of_trait(&cat, TraitId(0));
        assert!(
            n.contains(&SnpId(0)) && n.contains(&SnpId(1)),
            "direct SNPs"
        );
        assert!(
            n.contains(&SnpId(2)) && n.contains(&SnpId(3)),
            "via shared s1/t1"
        );
        assert!(
            !n.contains(&SnpId(4)),
            "s5 belongs to a different component"
        );
    }

    #[test]
    fn snp_neighbors_follow_example_in_text() {
        // Example under Def. 5.5.4: s2 and s3 are neighbor SNPs of s1
        // (1-indexed) — here: s1, s2, s3 are neighbors of s0 via t0→s1→t1.
        let cat = figure_5_1_catalog();
        let n = neighbor_snps_of_snp(&cat, SnpId(0));
        assert!(n.contains(&SnpId(1)), "shares t0");
        assert!(
            n.contains(&SnpId(2)) && n.contains(&SnpId(3)),
            "via s1's trait t1"
        );
        assert!(!n.contains(&SnpId(0)), "self excluded");
        assert!(!n.contains(&SnpId(4)));
    }

    #[test]
    fn isolated_component_has_local_neighbors_only() {
        let cat = figure_5_1_catalog();
        let n = neighbor_snps_of_trait(&cat, TraitId(2));
        assert_eq!(n, vec![SnpId(4)]);
        assert!(neighbor_snps_of_snp(&cat, SnpId(4)).is_empty());
    }

    #[test]
    fn neighbors_deterministic_and_sorted() {
        let cat = figure_5_1_catalog();
        let n = neighbor_snps_of_trait(&cat, TraitId(1));
        let mut sorted = n.clone();
        sorted.sort();
        assert_eq!(n, sorted);
    }
}
