//! Log-domain, flat-slice belief-propagation kernels.
//!
//! The textbook sum-product recursion of [`crate::bp`] multiplies
//! per-hop-normalized messages in linear probability space. That is exact
//! on the small Fig. 5.1 fixtures, but at AMD scale (90 449 SNPs,
//! hub variables with thousands of incident factors) the *product of
//! incoming messages at one variable* underflows: normalized 3-vector
//! messages have components ≈ 0.3–0.5, so a degree-`d` product has
//! components ≈ `0.5^d`, which reaches exact `0.0` near `d ≈ 1000` and
//! triggers the repair → unclean → restart-ladder → `prior_fallback`
//! degradation path even though the posterior is perfectly well defined.
//!
//! This module re-expresses the same fixed-point iteration in log space:
//!
//! * messages are stored as logs, normalized so `logsumexp(msg) = 0`;
//! * products become sums; factor marginalization becomes
//!   [`lse2`]/[`lse3`] with max-subtraction stabilization, which never
//!   overflows and never returns `-inf` for finite inputs;
//! * every stored lane is clamped at [`LOG_FLOOR`] (= ln of ~1e-304,
//!   still above the subnormal range), which makes the cavity
//!   subtraction `total − own` branch-free: no `-inf − (-inf) = NaN`
//!   corner exists;
//! * the per-variable incoming *product* is computed once per sweep as a
//!   flat total ([`BpScratch::stot`]/[`BpScratch::ttot`]), and each
//!   factor's cavity is recovered by subtracting its own branch — the
//!   innermost loops are fixed-width lane loops over padded `[f64; 4]`
//!   slots with no per-edge indirection, so they auto-vectorize;
//! * sweeps are scheduled over the CSR arenas in cache-sized blocks via
//!   [`ppdp_exec::ExecPolicy::par_fill`], with block-to-worker-lane
//!   affinity that is stable across rounds.
//!
//! The domain is selected per run by [`MessageDomain`] on
//! [`crate::BpConfig`]; the linear kernel remains the default and is
//! bit-for-bit unchanged. The differential suite (`tests/kernels.rs`)
//! proves the two kernels agree to ≤ 1e-9 on the golden fixtures, pick
//! identical sanitization sets, and stay policy- and resume-equivalent,
//! while the adversarial proptests drive the linear kernel into
//! underflow that the log kernel survives.
//!
//! Arenas live in a thread-local [`BpScratch`] (see [`with_scratch`]),
//! so repeated `publish`/`publish_resumable` calls on one thread reuse
//! their message buffers instead of reallocating per BP run.

use crate::bp::{Attempt, BpConfig, PAR_MIN_FACTORS};
use crate::factor_graph::FactorGraph;
use ppdp_exec::ExecPolicy;
use std::cell::RefCell;

/// Numeric domain for BP message storage and combination.
///
/// Both domains iterate the *same* fixed point (Eqs. 5.3–5.6) and
/// converge on the same residual criterion (max absolute change of
/// probability-space message components), so marginals agree to within
/// the convergence tolerance. Choose:
///
/// * [`Linear`](MessageDomain::Linear) — the default. Exact zeros are
///   preserved (evidence indicators stay `0.0`), and the historical
///   golden snapshots were produced in this domain. Underflows at high
///   variable degree (≳ 1000 incident factors).
/// * [`Log`](MessageDomain::Log) — log-sum-exp kernels, immune to
///   message-product underflow; exact zeros become `exp(LOG_FLOOR)`
///   ≈ 1e-304. Use for paper-scale graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MessageDomain {
    /// Probability-space messages (historical kernel, exact zeros).
    #[default]
    Linear,
    /// Log-space messages (underflow-immune flat-lane kernel).
    Log,
}

/// Inner-loop implementation of the BP message kernels, selected per run
/// by [`crate::BpConfig::variant`].
///
/// * In the **linear** domain the two variants are bitwise-identical:
///   `Blocked` only replaces the per-sweep `par_map` `Vec` collections
///   with tiled fills into persistent scratch arenas, evaluating the
///   exact same per-item arithmetic in the same order (the checked-in
///   golden snapshots pin this).
/// * In the **log** domain `Blocked` additionally switches to the
///   structure-of-arrays message planes and 4-lane gather accumulators
///   below, which *reassociate* the per-variable sums — results agree
///   with `Scalar` to well under 1e-12 per lane but are not bitwise
///   against it. Each variant remains bitwise-deterministic across exec
///   policies and tile sizes on its own, because every per-item closure
///   is a pure function of the previous sweep's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelVariant {
    /// Historical per-item kernels: the reference implementation the
    /// differential suite compares against.
    Scalar,
    /// Lane-batched, cache-blocked kernels: SoA message planes,
    /// `chunks_exact` quad-lane gathers, tiled round scheduling.
    #[default]
    Blocked,
}

/// Lower clamp for stored log-message lanes: `exp(-700)` ≈ 9.9e-305 is
/// the smallest normal-range magnitude we keep, safely above f64's
/// subnormal threshold (`exp(-745)` ≈ 5e-324). Clamping here (rather
/// than at `-inf`) keeps the cavity subtraction `total − own` finite and
/// branch-free.
pub const LOG_FLOOR: f64 = -700.0;

/// `ln(1/3)`, the uniform 3-state log-message (bit-equal to
/// `(1.0f64 / 3.0).ln()`, asserted in the unit tests).
const LN_THIRD: f64 = -1.0986122886681098;

/// `ln(1/2)`, the uniform 2-state log-message.
const LN_HALF: f64 = -std::f64::consts::LN_2;

/// Factors per scheduling block: 4096 × 64-byte [`FacMsg`] slots ≈
/// 256 KiB per block, sized to stay resident in a core's private L2
/// across the read-modify-write of one sweep.
const BLOCK: usize = 4096;

/// Resolves the effective cache-tile size for the blocked kernels:
/// [`crate::BpConfig::tile`] when set (the differential suite sweeps
/// tile boundaries through it), otherwise the L2-sized [`BLOCK`].
pub(crate) fn tile_size(cfg: &BpConfig) -> usize {
    cfg.tile.unwrap_or(BLOCK).max(1)
}

/// Stable log-sum-exp of two values: `ln(e^a + e^b)` with the max
/// subtracted first. Never overflows; returns `-inf` only when both
/// inputs are `-inf`. For finite inputs the result is finite and
/// `>= max(a, b)`.
#[inline]
pub fn lse2(a: f64, b: f64) -> f64 {
    let m = a.max(b);
    if !m.is_finite() {
        // Both -inf (sum of zeros), or a NaN/+inf slipped in: in every
        // case m itself is the mathematically right (or least wrong)
        // answer and avoids NaN from `-inf - -inf`.
        return m;
    }
    m + ((a - m).exp() + (b - m).exp()).ln()
}

/// Stable log-sum-exp of three values (see [`lse2`]).
#[inline]
pub fn lse3(a: f64, b: f64, c: f64) -> f64 {
    let m = a.max(b).max(c);
    if !m.is_finite() {
        return m;
    }
    m + ((a - m).exp() + (b - m).exp() + (c - m).exp()).ln()
}

/// Stable log-sum-exp over a slice; `-inf` for an empty slice.
pub fn logsumexp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return m;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

/// Normalizes a 3-state log-message in place so `logsumexp = 0`,
/// clamping lanes at [`LOG_FLOOR`] (lane 3 is padding and left as-is).
/// A non-finite normalizer — a NaN or `+inf` lane, the log-domain
/// signature of a poisoned table — repairs the message to uniform,
/// bumps `bp.renormalized`, and returns `false`, mirroring the linear
/// kernel's `checked3_flag`.
#[inline]
pub(crate) fn norm3_log(v: &mut [f64; 4]) -> bool {
    let z = lse3(v[0], v[1], v[2]);
    if !z.is_finite() {
        ppdp_telemetry::counter("bp.renormalized", 1);
        v[0] = LN_THIRD;
        v[1] = LN_THIRD;
        v[2] = LN_THIRD;
        return false;
    }
    v[0] = (v[0] - z).max(LOG_FLOOR);
    v[1] = (v[1] - z).max(LOG_FLOOR);
    v[2] = (v[2] - z).max(LOG_FLOOR);
    true
}

/// 2-state sibling of [`norm3_log`].
#[inline]
pub(crate) fn norm2_log(v: &mut [f64; 2]) -> bool {
    let z = lse2(v[0], v[1]);
    if !z.is_finite() {
        ppdp_telemetry::counter("bp.renormalized", 1);
        v[0] = LN_HALF;
        v[1] = LN_HALF;
        return false;
    }
    v[0] = (v[0] - z).max(LOG_FLOOR);
    v[1] = (v[1] - z).max(LOG_FLOOR);
    true
}

/// Log-domain damping: `ln(d·e^old + (1−d)·e^new)` via [`lse2`]. Called
/// with precomputed `ln d` / `ln(1−d)`; both inputs normalized, so the
/// mix is normalized too (up to rounding).
#[inline]
fn logmix(old: f64, new: f64, ln_d: f64, ln_1md: f64) -> f64 {
    lse2(ln_d + old, ln_1md + new)
}

/// One association factor's outgoing log-messages plus its sweep
/// residual and clean flag, padded to a 64-byte cache line so one
/// factor's state is one line.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FacMsg {
    /// Log-message to the SNP variable (lane 3 = padding, kept `0.0`).
    to_s: [f64; 4],
    /// Log-message to the trait variable.
    to_t: [f64; 2],
    /// Max probability-space component change of the last update.
    resid: f64,
    /// `false` when this factor's update needed repair (poisoned table).
    clean: bool,
}

impl Default for FacMsg {
    fn default() -> Self {
        // ln(1) = 0 per lane: identical to the linear kernel's fresh
        // [1.0; 3] messages, so sweep 1 sees the same starting point.
        Self {
            to_s: [0.0; 4],
            to_t: [0.0; 2],
            resid: 0.0,
            clean: true,
        }
    }
}

/// One kin factor's outgoing log-messages (to-parent side 0, to-child
/// side 1) plus residual and clean flag.
#[derive(Debug, Clone, Copy)]
pub(crate) struct KinMsg {
    to_parent: [f64; 4],
    to_child: [f64; 4],
    resid: f64,
    clean: bool,
}

impl Default for KinMsg {
    fn default() -> Self {
        Self {
            to_parent: [0.0; 4],
            to_child: [0.0; 4],
            resid: 0.0,
            clean: true,
        }
    }
}

/// Cold half of one association factor's state in the blocked
/// structure-of-arrays layout: the trait-side message plus sweep
/// bookkeeping, padded to half a cache line. The hot SNP-side lanes
/// live in a separate `[f64; 4]` plane ([`BpScratch::fs2s`]), so the
/// pass-A SNP gathers stream 32-byte records of nothing but `to_s`
/// lanes — half the cache traffic of the 64-byte [`FacMsg`] layout.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FacHalf {
    to_t: [f64; 2],
    resid: f64,
    clean: bool,
}

impl Default for FacHalf {
    fn default() -> Self {
        Self {
            to_t: [0.0; 2],
            resid: 0.0,
            clean: true,
        }
    }
}

/// Probability-space shadow of one association factor's outgoing
/// messages in the blocked log kernel. Keeping the linear values of the
/// previous sweep alongside the log planes lets the factor update run
/// its marginalization, damping and residual entirely in probability
/// space: the only transcendentals left per factor are the five `exp`
/// calls of the cavity normalization and the five `ln` calls that store
/// the result back into the log planes — down from ~40 in a pure
/// log-sum-exp update, which is what the ≥1.5× bench gate buys.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ProbMsg {
    /// Linear message to the SNP variable (lane 3 = padding).
    ps: [f64; 4],
    /// Linear message to the trait variable.
    pt: [f64; 2],
}

impl Default for ProbMsg {
    fn default() -> Self {
        // exp(ln 1) = 1 per lane: the linear view of the fresh messages.
        Self {
            ps: [1.0; 4],
            pt: [1.0; 2],
        }
    }
}

/// `acc += m`, one fixed-width lane statement per component.
#[inline]
fn add4(acc: &mut [f64; 4], m: &[f64; 4]) {
    for (a, &v) in acc.iter_mut().zip(m) {
        *a += v;
    }
}

/// 2-lane sibling of [`add4`].
#[inline]
fn add2(acc: &mut [f64; 2], m: &[f64; 2]) {
    for (a, &v) in acc.iter_mut().zip(m) {
        *a += v;
    }
}

/// Σ `plane[f]` over `ids` starting from `init`, gathered four incident
/// factors at a time into independent partial sums that combine at the
/// end. Splitting the reduction breaks the loop-carried dependence so
/// LLVM can keep four accumulator vectors in flight; it *reassociates*
/// the sum (≈1 ulp per term vs the scalar gather) but stays a pure
/// function of the operands, hence bitwise across exec policies and
/// tile sizes.
#[inline]
fn gather4(init: [f64; 4], ids: &[u32], plane: &[[f64; 4]]) -> [f64; 4] {
    let mut acc = [[0.0f64; 4]; 4];
    let mut quads = ids.chunks_exact(4);
    for quad in quads.by_ref() {
        for (a, &f) in acc.iter_mut().zip(quad) {
            add4(a, &plane[f as usize]);
        }
    }
    for (a, &f) in acc.iter_mut().zip(quads.remainder()) {
        add4(a, &plane[f as usize]);
    }
    let mut tot = init;
    for a in &acc {
        add4(&mut tot, a);
    }
    tot
}

/// Trait-side sibling of [`gather4`], reading the `to_t` lanes of the
/// cold half-plane — the hub-trait hot loop (thousands of incident
/// factors per trait at paper scale).
#[inline]
fn gather2(init: [f64; 2], ids: &[u32], half: &[FacHalf]) -> [f64; 2] {
    let mut acc = [[0.0f64; 2]; 4];
    let mut quads = ids.chunks_exact(4);
    for quad in quads.by_ref() {
        for (a, &f) in acc.iter_mut().zip(quad) {
            add2(a, &half[f as usize].to_t);
        }
    }
    for (a, &f) in acc.iter_mut().zip(quads.remainder()) {
        add2(a, &half[f as usize].to_t);
    }
    let mut tot = init;
    for a in &acc {
        add2(&mut tot, a);
    }
    tot
}

/// Reusable message arenas for both BP kernels.
///
/// One scratch lives per thread (see [`with_scratch`]); `clear` +
/// `resize` re-initializes contents to the fresh-run values without
/// touching capacity, so back-to-back runs on same-shaped graphs —
/// the greedy-sanitization inner loop, repeated `publish` calls —
/// perform zero message-buffer allocations after the first run. The
/// `exec.arena.reused` / `exec.arena.grown` metrics count warm vs cold
/// runs (asserted flat by the arena-reuse leak test).
#[derive(Debug, Default)]
pub struct BpScratch {
    /// Linear-domain factor→SNP messages.
    pub(crate) lin_f2s: Vec<[f64; 3]>,
    /// Linear-domain factor→trait messages.
    pub(crate) lin_f2t: Vec<[f64; 2]>,
    /// Linear-domain kin→SNP messages (side 0 parent, 1 child).
    pub(crate) lin_k2s: Vec<[[f64; 3]; 2]>,
    /// Blocked linear kernel: per-sweep variable→factor stage results
    /// (`(message, clean)`), filled in place instead of collected.
    pub(crate) lin_s2f: Vec<([f64; 3], bool)>,
    /// Blocked linear kernel: variable→kin-factor stage results.
    pub(crate) lin_s2k: Vec<([[f64; 3]; 2], bool)>,
    /// Blocked linear kernel: trait→factor stage results.
    pub(crate) lin_t2f: Vec<([f64; 2], bool)>,
    /// Blocked linear kernel: factor-update stage results
    /// (`to_s`, `to_t`, residual, clean).
    pub(crate) lin_fupd: Vec<([f64; 3], [f64; 2], f64, bool)>,
    /// Blocked linear kernel: kin-update stage results.
    pub(crate) lin_kupd: Vec<([[f64; 3]; 2], f64, bool)>,
    /// Blocked log kernel: current / next hot SNP-side message planes.
    fs2s: Vec<[f64; 4]>,
    nfs2s: Vec<[f64; 4]>,
    /// Blocked log kernel: current / next cold factor halves.
    fhalf: Vec<FacHalf>,
    nfhalf: Vec<FacHalf>,
    /// Blocked log kernel: current / next probability-space shadows.
    fprob: Vec<ProbMsg>,
    nfprob: Vec<ProbMsg>,
    /// Per-association-factor log tables, `[g*2 + t]`, pads at floor.
    ltab: Vec<[f64; 8]>,
    /// `exp` of the [`BpScratch::ltab`] lanes: the linear tables the
    /// blocked kernel's probability-space factor update multiplies
    /// against. Derived from the floored log lanes (not the raw input
    /// tables) so zeros and poison screen identically in both variants.
    ptab: Vec<[f64; 8]>,
    /// Per-kin-factor log tables, `[p*4 + c]`, pads at floor.
    lktab: Vec<[f64; 16]>,
    /// Log node potentials (evidence indicators / flat / priors).
    lsnp_pot: Vec<[f64; 4]>,
    /// Log trait potentials (evidence indicators / prevalence priors).
    ltrait_pot: Vec<[f64; 2]>,
    /// Current / next association-factor messages (swapped per sweep).
    fmsg: Vec<FacMsg>,
    nfmsg: Vec<FacMsg>,
    /// Current / next kin-factor messages.
    kmsg: Vec<KinMsg>,
    nkmsg: Vec<KinMsg>,
    /// Per-SNP incoming log totals (potential + all incident messages).
    stot: Vec<[f64; 4]>,
    /// Per-trait incoming log totals.
    ttot: Vec<[f64; 2]>,
    /// `false` when table/potential screening found a poisoned input —
    /// every log attempt on this graph is then marked unclean, matching
    /// the linear kernel's repair-and-degrade semantics.
    log_ok: bool,
}

thread_local! {
    static SCRATCH: RefCell<BpScratch> = RefCell::new(BpScratch::default());
}

/// Runs `f` with this thread's persistent [`BpScratch`]. Re-entrant
/// calls (a BP run nested inside another on the same thread) fall back
/// to a fresh scratch rather than aliasing the outer one.
pub fn with_scratch<R>(f: impl FnOnce(&mut BpScratch) -> R) -> R {
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut BpScratch::default()),
    })
}

/// Converts one probability `x` to a floored log lane. Exact zeros are
/// legal table entries and clamp to [`LOG_FLOOR`]; NaN, negative or
/// `+inf` entries are poison and clear `ok` (the linear kernel would
/// emit NaN messages and repair them; the log kernel screens once).
#[inline]
fn ln_lane(x: f64, ok: &mut bool) -> f64 {
    if x > 0.0 && x.is_finite() {
        x.ln().max(LOG_FLOOR)
    } else {
        if x != 0.0 {
            *ok = false;
        }
        LOG_FLOOR
    }
}

impl BpScratch {
    /// True when the arenas already have capacity for an `nf`-factor,
    /// `nk`-kin-factor graph in `domain` under `variant` (i.e. the
    /// coming run allocates nothing).
    pub(crate) fn is_warm(
        &self,
        domain: MessageDomain,
        variant: KernelVariant,
        nf: usize,
        nk: usize,
    ) -> bool {
        match (domain, variant) {
            (MessageDomain::Linear, KernelVariant::Scalar) => {
                self.lin_f2s.capacity() >= nf
                    && self.lin_f2t.capacity() >= nf
                    && self.lin_k2s.capacity() >= nk
            }
            (MessageDomain::Linear, KernelVariant::Blocked) => {
                self.lin_f2s.capacity() >= nf
                    && self.lin_f2t.capacity() >= nf
                    && self.lin_k2s.capacity() >= nk
                    && self.lin_s2f.capacity() >= nf
                    && self.lin_s2k.capacity() >= nk
                    && self.lin_t2f.capacity() >= nf
                    && self.lin_fupd.capacity() >= nf
                    && self.lin_kupd.capacity() >= nk
            }
            (MessageDomain::Log, KernelVariant::Scalar) => {
                self.fmsg.capacity() >= nf
                    && self.nfmsg.capacity() >= nf
                    && self.kmsg.capacity() >= nk
                    && self.nkmsg.capacity() >= nk
                    && self.ltab.capacity() >= nf
            }
            (MessageDomain::Log, KernelVariant::Blocked) => {
                self.fs2s.capacity() >= nf
                    && self.nfs2s.capacity() >= nf
                    && self.fhalf.capacity() >= nf
                    && self.nfhalf.capacity() >= nf
                    && self.fprob.capacity() >= nf
                    && self.nfprob.capacity() >= nf
                    && self.kmsg.capacity() >= nk
                    && self.nkmsg.capacity() >= nk
                    && self.ltab.capacity() >= nf
                    && self.ptab.capacity() >= nf
            }
        }
    }

    /// Precomputes the log tables and log potentials for `g`, returning
    /// with `self.log_ok = false` (and one `bp.renormalized` bump per
    /// poisoned factor) when screening finds NaN/negative/`+inf` entries
    /// or an all-zero table — the inputs on which the linear kernel's
    /// every sweep needs repair.
    pub(crate) fn prepare_log(&mut self, g: &FactorGraph) {
        let nf = g.factors.len();
        let nk = g.kin_factors.len();
        self.log_ok = true;

        self.ltab.clear();
        self.ltab.reserve(nf);
        self.ptab.clear();
        self.ptab.reserve(nf);
        for fac in &g.factors {
            let mut lanes = [LOG_FLOOR; 8];
            let mut ok = true;
            let mut any_pos = false;
            for (gi, row) in fac.table.iter().enumerate() {
                for (t, &x) in row.iter().enumerate() {
                    any_pos |= x > 0.0;
                    lanes[gi * 2 + t] = ln_lane(x, &mut ok);
                }
            }
            if !ok || !any_pos {
                ppdp_telemetry::counter("bp.renormalized", 1);
                self.log_ok = false;
            }
            self.ltab.push(lanes);
            self.ptab.push(lanes.map(f64::exp));
        }

        self.lktab.clear();
        self.lktab.reserve(nk);
        for kf in &g.kin_factors {
            let mut lanes = [LOG_FLOOR; 16];
            let mut ok = true;
            let mut any_pos = false;
            for (p, row) in kf.table.iter().enumerate() {
                for (c, &x) in row.iter().enumerate() {
                    any_pos |= x > 0.0;
                    lanes[p * 4 + c] = ln_lane(x, &mut ok);
                }
            }
            if !ok || !any_pos {
                ppdp_telemetry::counter("bp.renormalized", 1);
                self.log_ok = false;
            }
            self.lktab.push(lanes);
        }

        self.lsnp_pot.clear();
        self.lsnp_pot.reserve(g.n_snps());
        for ev in &g.snp_evidence {
            self.lsnp_pot.push(match ev {
                Some(i) => {
                    let mut v = [LOG_FLOOR, LOG_FLOOR, LOG_FLOOR, 0.0];
                    v[*i] = 0.0;
                    v
                }
                // ln(1) per lane — flat, like the linear [1.0; 3] pot.
                None => [0.0; 4],
            });
        }

        self.ltrait_pot.clear();
        self.ltrait_pot.reserve(g.n_traits());
        for (t, ev) in g.trait_evidence.iter().enumerate() {
            self.ltrait_pot.push(match ev {
                Some(true) => [LOG_FLOOR, 0.0],
                Some(false) => [0.0, LOG_FLOOR],
                None => {
                    let mut ok = true;
                    let p = g.trait_prior[t];
                    let lanes = [ln_lane(p[0], &mut ok), ln_lane(p[1], &mut ok)];
                    if !ok {
                        ppdp_telemetry::counter("bp.renormalized", 1);
                        self.log_ok = false;
                    }
                    lanes
                }
            });
        }
    }
}

/// One log-domain message-passing attempt from fresh messages at the
/// given damping — the log twin of the linear `BpConfig::attempt`, with
/// identical sweep scheduling (synchronous updates from the previous
/// sweep's messages), residual semantics (max absolute *probability*
/// change), telemetry stream, and restart/degradation contract.
/// Requires [`BpScratch::prepare_log`] to have run for `g`.
pub(crate) fn log_attempt(
    cfg: &BpConfig,
    g: &FactorGraph,
    damping: f64,
    scratch: &mut BpScratch,
) -> Attempt {
    let nf = g.factors.len();
    let nk = g.kin_factors.len();
    let exec = if nf + nk >= PAR_MIN_FACTORS {
        cfg.exec
    } else {
        ExecPolicy::Sequential
    };
    let BpScratch {
        ltab,
        lktab,
        lsnp_pot,
        ltrait_pot,
        fmsg,
        nfmsg,
        kmsg,
        nkmsg,
        stot,
        ttot,
        log_ok,
        ..
    } = scratch;
    let inputs_ok = *log_ok;
    let (ltab, lktab) = (&ltab[..], &lktab[..]);
    let (lsnp_pot, ltrait_pot) = (&lsnp_pot[..], &ltrait_pot[..]);
    fmsg.clear();
    fmsg.resize(nf, FacMsg::default());
    nfmsg.clear();
    nfmsg.resize(nf, FacMsg::default());
    kmsg.clear();
    kmsg.resize(nk, KinMsg::default());
    nkmsg.clear();
    nkmsg.resize(nk, KinMsg::default());
    stot.clear();
    stot.resize(g.n_snps(), [0.0; 4]);
    ttot.clear();
    ttot.resize(g.n_traits(), [0.0; 2]);

    let (ln_d, ln_1md) = if damping > 0.0 {
        (damping.ln(), (1.0 - damping).ln())
    } else {
        (f64::NEG_INFINITY, 0.0)
    };

    let mut sweeps = 0;
    let mut converged = false;
    let mut final_residual = f64::INFINITY;
    let mut clean = inputs_ok;
    let mut watchdog =
        ppdp_trace::ConvergenceWatchdog::new(ppdp_trace::WatchdogConfig::with_tol(cfg.tol));

    // Pass A: per-variable incoming totals (potential + every incident
    // message). Totals make the per-factor cavity a branch-free
    // subtraction in pass B instead of a skip-one gather per edge.
    #[allow(clippy::too_many_arguments)]
    fn gather_totals(
        g: &FactorGraph,
        exec: ExecPolicy,
        fm: &[FacMsg],
        km: &[KinMsg],
        lsnp_pot: &[[f64; 4]],
        ltrait_pot: &[[f64; 2]],
        stot: &mut [[f64; 4]],
        ttot: &mut [[f64; 2]],
    ) {
        exec.par_fill(stot, BLOCK, |s, slot| {
            let mut tot = lsnp_pot[s];
            for &f in g.snp_factor_ids(s) {
                add4(&mut tot, &fm[f as usize].to_s);
            }
            for &k in g.snp_kin_ids(s) {
                let k = k as usize;
                let m = if g.kin_factors[k].parent == s {
                    &km[k].to_parent
                } else {
                    &km[k].to_child
                };
                add4(&mut tot, m);
            }
            *slot = tot;
        });
        exec.par_fill(ttot, BLOCK, |t, slot| {
            let mut tot = ltrait_pot[t];
            for &f in g.trait_factor_ids(t) {
                add2(&mut tot, &fm[f as usize].to_t);
            }
            *slot = tot;
        });
    }

    ppdp_telemetry::target("bp.rounds", cfg.max_iters as f64);
    for iter in 0..cfg.max_iters {
        sweeps = iter + 1;
        gather_totals(g, exec, fmsg, kmsg, lsnp_pot, ltrait_pot, stot, ttot);
        let (st, tt) = (&stot[..], &ttot[..]);

        // Pass B: per-factor cavity + update (Eqs. 5.5/5.6 in log
        // space). Reads only previous-sweep messages and the totals, so
        // every slot is independent; the innermost loops are fixed-lane.
        {
            let fm = &fmsg[..];
            exec.par_fill(&mut nfmsg[..], BLOCK, |f, slot| {
                let fac = &g.factors[f];
                let old = &fm[f];
                let tab = &ltab[f];
                let mut ok = true;

                // Cavity at the SNP = this factor's variable→factor
                // message (Eq. 5.3), normalized like the linear kernel
                // normalizes s2f.
                let mut cs = [0.0f64; 4];
                for ((c, &t), &o) in cs.iter_mut().zip(&st[fac.snp]).zip(&old.to_s) {
                    *c = t - o;
                }
                ok &= norm3_log(&mut cs);
                let mut ct = [
                    tt[fac.trait_idx][0] - old.to_t[0],
                    tt[fac.trait_idx][1] - old.to_t[1],
                ];
                ok &= norm2_log(&mut ct);

                let mut to_s = [0.0f64; 4];
                for (m, pair) in to_s.iter_mut().zip(tab.chunks_exact(2)).take(3) {
                    *m = lse2(pair[0] + ct[0], pair[1] + ct[1]);
                }
                ok &= norm3_log(&mut to_s);
                let mut to_t = [0.0f64; 2];
                for (t, m) in to_t.iter_mut().enumerate() {
                    *m = lse3(tab[t] + cs[0], tab[2 + t] + cs[1], tab[4 + t] + cs[2]);
                }
                ok &= norm2_log(&mut to_t);

                if damping > 0.0 {
                    for (m, &o) in to_s.iter_mut().zip(old.to_s.iter()).take(3) {
                        *m = logmix(o, *m, ln_d, ln_1md);
                    }
                    for (m, &o) in to_t.iter_mut().zip(old.to_t.iter()) {
                        *m = logmix(o, *m, ln_d, ln_1md);
                    }
                }
                let mut d = 0.0f64;
                for (&m, &o) in to_s.iter().zip(old.to_s.iter()).take(3) {
                    d = d.max((m.exp() - o.exp()).abs());
                }
                for (&m, &o) in to_t.iter().zip(old.to_t.iter()) {
                    d = d.max((m.exp() - o.exp()).abs());
                }
                *slot = FacMsg {
                    to_s,
                    to_t,
                    resid: d,
                    clean: ok,
                };
            });
        }

        // Kin pass: 3×3 transmission tables, both directions.
        {
            let km = &kmsg[..];
            exec.par_fill(&mut nkmsg[..], BLOCK, |k, slot| {
                let kf = &g.kin_factors[k];
                let old = &km[k];
                let tab = &lktab[k];
                let mut ok = true;

                let mut cp = [0.0f64; 4];
                for ((c, &t), &o) in cp.iter_mut().zip(&st[kf.parent]).zip(&old.to_parent) {
                    *c = t - o;
                }
                let mut cc = [0.0f64; 4];
                for ((c, &t), &o) in cc.iter_mut().zip(&st[kf.child]).zip(&old.to_child) {
                    *c = t - o;
                }
                ok &= norm3_log(&mut cp);
                ok &= norm3_log(&mut cc);

                // to child: lse over parents of T[p][c] + μ_{parent→k}(p)
                let mut to_child = [0.0f64; 4];
                for (c, m) in to_child.iter_mut().enumerate().take(3) {
                    *m = lse3(tab[c] + cp[0], tab[4 + c] + cp[1], tab[8 + c] + cp[2]);
                }
                ok &= norm3_log(&mut to_child);
                // to parent: lse over children of T[p][c] + μ_{child→k}(c)
                let mut to_parent = [0.0f64; 4];
                for (p, m) in to_parent.iter_mut().enumerate().take(3) {
                    let row = p * 4;
                    *m = lse3(tab[row] + cc[0], tab[row + 1] + cc[1], tab[row + 2] + cc[2]);
                }
                ok &= norm3_log(&mut to_parent);

                if damping > 0.0 {
                    for (m, &o) in to_parent.iter_mut().zip(&old.to_parent).take(3) {
                        *m = logmix(o, *m, ln_d, ln_1md);
                    }
                    for (m, &o) in to_child.iter_mut().zip(&old.to_child).take(3) {
                        *m = logmix(o, *m, ln_d, ln_1md);
                    }
                }
                let mut d = 0.0f64;
                for (&m, &o) in to_parent.iter().zip(&old.to_parent).take(3) {
                    d = d.max((m.exp() - o.exp()).abs());
                }
                for (&m, &o) in to_child.iter().zip(&old.to_child).take(3) {
                    d = d.max((m.exp() - o.exp()).abs());
                }
                *slot = KinMsg {
                    to_parent,
                    to_child,
                    resid: d,
                    clean: ok,
                };
            });
        }

        std::mem::swap(fmsg, nfmsg);
        std::mem::swap(kmsg, nkmsg);
        let mut delta = 0.0f64;
        for m in fmsg.iter() {
            delta = delta.max(m.resid);
            clean &= m.clean;
        }
        for m in kmsg.iter() {
            delta = delta.max(m.resid);
            clean &= m.clean;
        }

        final_residual = delta;
        ppdp_telemetry::counter("bp.messages_updated", 2 * (nf + nk) as u64);
        ppdp_telemetry::value("bp.sweep_residual", delta);
        ppdp_telemetry::gauge("bp.round", sweeps as f64);
        ppdp_trace::bp_round(sweeps as u64, delta, 2 * (nf + nk) as u64, (nf + nk) as u64);
        if let Some(verdict) = watchdog.observe(delta) {
            ppdp_telemetry::counter(&format!("watchdog.bp.{}", verdict.as_str()), 1);
            ppdp_trace::watchdog_event("bp", verdict.as_str(), watchdog.iteration());
        }
        if !clean {
            break;
        }
        if delta < cfg.tol {
            converged = true;
            break;
        }
    }

    // Beliefs: refresh the totals from the final messages, normalize in
    // log space, exponentiate, and renormalize the (already ≈ 1) sums in
    // linear space so marginals sum to 1 at f64 precision.
    gather_totals(g, exec, fmsg, kmsg, lsnp_pot, ltrait_pot, stot, ttot);
    let (st, tt) = (&stot[..], &ttot[..]);
    let mut bclean = true;
    let snp_marginals: Vec<[f64; 3]> = crate::bp::fold_flag(
        exec.par_map(g.n_snps(), |s| {
            let mut b = st[s];
            let ok = norm3_log(&mut b);
            let e = [b[0].exp(), b[1].exp(), b[2].exp()];
            let z = e[0] + e[1] + e[2];
            ([e[0] / z, e[1] / z, e[2] / z], ok)
        }),
        &mut bclean,
    );
    let trait_marginals: Vec<[f64; 2]> = crate::bp::fold_flag(
        exec.par_map(g.n_traits(), |t| {
            let mut b = tt[t];
            let ok = norm2_log(&mut b);
            let e = [b[0].exp(), b[1].exp()];
            let z = e[0] + e[1];
            ([e[0] / z, e[1] / z], ok)
        }),
        &mut bclean,
    );
    clean &= bclean;

    Attempt {
        snp_marginals,
        trait_marginals,
        sweeps,
        converged: converged && clean,
        final_residual,
        clean,
    }
}

/// Blocked/vectorized twin of [`log_attempt`]: the same fixed point and
/// telemetry stream evaluated over the structure-of-arrays message
/// planes ([`BpScratch::fs2s`] + [`BpScratch::fhalf`]) with quad-lane
/// gather accumulators ([`gather4`]/[`gather2`]) and cache-tiled round
/// scheduling (`cfg.tile`, default [`BLOCK`]). Marginals agree with the
/// scalar kernel to ≲1e-12 per lane (the gathers reassociate) and are
/// bitwise-identical across exec policies and tile sizes.
pub(crate) fn log_attempt_blocked(
    cfg: &BpConfig,
    g: &FactorGraph,
    damping: f64,
    scratch: &mut BpScratch,
) -> Attempt {
    let nf = g.factors.len();
    let nk = g.kin_factors.len();
    let exec = if nf + nk >= PAR_MIN_FACTORS {
        cfg.exec
    } else {
        ExecPolicy::Sequential
    };
    let tile = tile_size(cfg);
    let BpScratch {
        lktab,
        lsnp_pot,
        ltrait_pot,
        fs2s,
        nfs2s,
        fhalf,
        nfhalf,
        fprob,
        nfprob,
        ptab,
        kmsg,
        nkmsg,
        stot,
        ttot,
        log_ok,
        ..
    } = scratch;
    let inputs_ok = *log_ok;
    let (ptab, lktab) = (&ptab[..], &lktab[..]);
    let (lsnp_pot, ltrait_pot) = (&lsnp_pot[..], &ltrait_pot[..]);
    fs2s.clear();
    fs2s.resize(nf, [0.0; 4]);
    nfs2s.clear();
    nfs2s.resize(nf, [0.0; 4]);
    fhalf.clear();
    fhalf.resize(nf, FacHalf::default());
    nfhalf.clear();
    nfhalf.resize(nf, FacHalf::default());
    fprob.clear();
    fprob.resize(nf, ProbMsg::default());
    nfprob.clear();
    nfprob.resize(nf, ProbMsg::default());
    kmsg.clear();
    kmsg.resize(nk, KinMsg::default());
    nkmsg.clear();
    nkmsg.resize(nk, KinMsg::default());
    stot.clear();
    stot.resize(g.n_snps(), [0.0; 4]);
    ttot.clear();
    ttot.resize(g.n_traits(), [0.0; 2]);

    let (ln_d, ln_1md) = if damping > 0.0 {
        (damping.ln(), (1.0 - damping).ln())
    } else {
        (f64::NEG_INFINITY, 0.0)
    };

    // Tile/lane utilization, live registry only (the values are
    // computed coordinator-side from the CSR shape, identical under
    // every policy, but they are scheduling facts — not part of the
    // kernel's semantic telemetry stream).
    let tiles_per_sweep = (g.n_snps().div_ceil(tile)
        + g.n_traits().div_ceil(tile)
        + nf.div_ceil(tile)
        + nk.div_ceil(tile)) as u64;
    let (lane_quads, lane_tail) = (0..g.n_snps())
        .map(|s| g.snp_factor_ids(s).len())
        .chain((0..g.n_traits()).map(|t| g.trait_factor_ids(t).len()))
        .fold((0u64, 0u64), |(q, r), deg| {
            (q + (deg / 4) as u64, r + (deg % 4) as u64)
        });
    ppdp_metrics::counter("bp.lane_quads", lane_quads);
    ppdp_metrics::counter("bp.lane_tail", lane_tail);

    let mut sweeps = 0;
    let mut converged = false;
    let mut final_residual = f64::INFINITY;
    let mut clean = inputs_ok;
    let mut watchdog =
        ppdp_trace::ConvergenceWatchdog::new(ppdp_trace::WatchdogConfig::with_tol(cfg.tol));

    // Pass A over the SoA planes: quad-lane gathers per variable.
    #[allow(clippy::too_many_arguments)]
    fn gather_totals_blocked(
        g: &FactorGraph,
        exec: ExecPolicy,
        tile: usize,
        fs: &[[f64; 4]],
        fh: &[FacHalf],
        km: &[KinMsg],
        lsnp_pot: &[[f64; 4]],
        ltrait_pot: &[[f64; 2]],
        stot: &mut [[f64; 4]],
        ttot: &mut [[f64; 2]],
    ) {
        exec.par_fill(stot, tile, |s, slot| {
            let mut tot = gather4(lsnp_pot[s], g.snp_factor_ids(s), fs);
            for &k in g.snp_kin_ids(s) {
                let k = k as usize;
                let m = if g.kin_factors[k].parent == s {
                    &km[k].to_parent
                } else {
                    &km[k].to_child
                };
                add4(&mut tot, m);
            }
            *slot = tot;
        });
        exec.par_fill(ttot, tile, |t, slot| {
            *slot = gather2(ltrait_pot[t], g.trait_factor_ids(t), fh);
        });
    }

    ppdp_telemetry::target("bp.rounds", cfg.max_iters as f64);
    for iter in 0..cfg.max_iters {
        sweeps = iter + 1;
        ppdp_metrics::counter("bp.tiles_swept", tiles_per_sweep);
        gather_totals_blocked(
            g, exec, tile, fs2s, fhalf, kmsg, lsnp_pot, ltrait_pot, stot, ttot,
        );
        let (st, tt) = (&stot[..], &ttot[..]);

        // Pass B: per-factor cavity + update in one tiled schedule over
        // all three planes. The cavity is exponentiated once (with the
        // max subtracted, like `lse`), after which marginalization over
        // the floored linear tables, damping against the probability
        // shadow, and the residual are pure mul/add — the same fixed
        // point as the scalar kernel's log-sum-exp update, agreeing to
        // ≲1e-12 per lane since every message renormalizes per hop.
        {
            let (fs, fh, fp) = (&fs2s[..], &fhalf[..], &fprob[..]);
            exec.par_zip_fill3(
                &mut nfs2s[..],
                &mut nfhalf[..],
                &mut nfprob[..],
                tile,
                |f, s_slot, h_slot, p_slot| {
                    let fac = &g.factors[f];
                    let old_ls = &fs[f];
                    let old_lt = &fh[f].to_t;
                    let old_p = &fp[f];
                    let tab = &ptab[f];
                    let mut ok = true;

                    // Cavity at the SNP, exponentiated and normalized in
                    // linear space. The max lane contributes exp(0) = 1,
                    // so the normalizer zs ∈ [1, 3] — finite and positive
                    // whenever the inputs are, exactly the cases where
                    // the scalar `norm3_log` succeeds.
                    let stv = &st[fac.snp];
                    let c = [stv[0] - old_ls[0], stv[1] - old_ls[1], stv[2] - old_ls[2]];
                    let m = c[0].max(c[1]).max(c[2]);
                    let cs = if m.is_finite() {
                        let e = [(c[0] - m).exp(), (c[1] - m).exp(), (c[2] - m).exp()];
                        let zs = e[0] + e[1] + e[2];
                        [e[0] / zs, e[1] / zs, e[2] / zs]
                    } else {
                        ppdp_telemetry::counter("bp.renormalized", 1);
                        ok = false;
                        [1.0 / 3.0; 3]
                    };
                    let ct0 = tt[fac.trait_idx][0] - old_lt[0];
                    let ct1 = tt[fac.trait_idx][1] - old_lt[1];
                    let mt = ct0.max(ct1);
                    let ct = if mt.is_finite() {
                        let e = [(ct0 - mt).exp(), (ct1 - mt).exp()];
                        let zt = e[0] + e[1];
                        [e[0] / zt, e[1] / zt]
                    } else {
                        ppdp_telemetry::counter("bp.renormalized", 1);
                        ok = false;
                        [0.5; 2]
                    };

                    // Marginalize over the linear tables. Every ptab lane
                    // is ≥ exp(LOG_FLOOR) > 0 and each cavity's max lane
                    // is ≥ 1/width, so the sums stay strictly positive —
                    // a non-finite normalizer can only come from poisoned
                    // inputs, the same cases the scalar kernel repairs.
                    let mut ps = [0.0f64; 4];
                    for (m, pair) in ps.iter_mut().zip(tab.chunks_exact(2)).take(3) {
                        *m = pair[0] * ct[0] + pair[1] * ct[1];
                    }
                    let zs = ps[0] + ps[1] + ps[2];
                    if zs.is_finite() && zs > 0.0 {
                        ps[0] /= zs;
                        ps[1] /= zs;
                        ps[2] /= zs;
                    } else {
                        ppdp_telemetry::counter("bp.renormalized", 1);
                        ok = false;
                        ps = [1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0, 0.0];
                    }
                    let mut pt = [0.0f64; 2];
                    for (t, m) in pt.iter_mut().enumerate() {
                        *m = tab[t] * cs[0] + tab[2 + t] * cs[1] + tab[4 + t] * cs[2];
                    }
                    let zt = pt[0] + pt[1];
                    if zt.is_finite() && zt > 0.0 {
                        pt[0] /= zt;
                        pt[1] /= zt;
                    } else {
                        ppdp_telemetry::counter("bp.renormalized", 1);
                        ok = false;
                        pt = [0.5; 2];
                    }

                    if damping > 0.0 {
                        for (m, &o) in ps.iter_mut().zip(&old_p.ps).take(3) {
                            *m = damping * o + (1.0 - damping) * *m;
                        }
                        for (m, &o) in pt.iter_mut().zip(&old_p.pt) {
                            *m = damping * o + (1.0 - damping) * *m;
                        }
                    }
                    let mut d = 0.0f64;
                    for (&m, &o) in ps.iter().zip(&old_p.ps).take(3) {
                        d = d.max((m - o).abs());
                    }
                    for (&m, &o) in pt.iter().zip(&old_p.pt) {
                        d = d.max((m - o).abs());
                    }

                    // Store the log view for pass A's gathers, floored
                    // exactly like the scalar kernel's stored lanes.
                    let to_s = [
                        ps[0].ln().max(LOG_FLOOR),
                        ps[1].ln().max(LOG_FLOOR),
                        ps[2].ln().max(LOG_FLOOR),
                        0.0,
                    ];
                    let to_t = [pt[0].ln().max(LOG_FLOOR), pt[1].ln().max(LOG_FLOOR)];
                    *s_slot = to_s;
                    *h_slot = FacHalf {
                        to_t,
                        resid: d,
                        clean: ok,
                    };
                    *p_slot = ProbMsg { ps, pt };
                },
            );
        }

        // Kin pass: unchanged AoS layout (kin counts are tiny next to
        // association factors), tiled like everything else.
        {
            let km = &kmsg[..];
            exec.par_fill(&mut nkmsg[..], tile, |k, slot| {
                let kf = &g.kin_factors[k];
                let old = &km[k];
                let tab = &lktab[k];
                let mut ok = true;

                let mut cp = [0.0f64; 4];
                for ((c, &t), &o) in cp.iter_mut().zip(&st[kf.parent]).zip(&old.to_parent) {
                    *c = t - o;
                }
                let mut cc = [0.0f64; 4];
                for ((c, &t), &o) in cc.iter_mut().zip(&st[kf.child]).zip(&old.to_child) {
                    *c = t - o;
                }
                ok &= norm3_log(&mut cp);
                ok &= norm3_log(&mut cc);

                let mut to_child = [0.0f64; 4];
                for (c, m) in to_child.iter_mut().enumerate().take(3) {
                    *m = lse3(tab[c] + cp[0], tab[4 + c] + cp[1], tab[8 + c] + cp[2]);
                }
                ok &= norm3_log(&mut to_child);
                let mut to_parent = [0.0f64; 4];
                for (p, m) in to_parent.iter_mut().enumerate().take(3) {
                    let row = p * 4;
                    *m = lse3(tab[row] + cc[0], tab[row + 1] + cc[1], tab[row + 2] + cc[2]);
                }
                ok &= norm3_log(&mut to_parent);

                if damping > 0.0 {
                    for (m, &o) in to_parent.iter_mut().zip(&old.to_parent).take(3) {
                        *m = logmix(o, *m, ln_d, ln_1md);
                    }
                    for (m, &o) in to_child.iter_mut().zip(&old.to_child).take(3) {
                        *m = logmix(o, *m, ln_d, ln_1md);
                    }
                }
                let mut d = 0.0f64;
                for (&m, &o) in to_parent.iter().zip(&old.to_parent).take(3) {
                    d = d.max((m.exp() - o.exp()).abs());
                }
                for (&m, &o) in to_child.iter().zip(&old.to_child).take(3) {
                    d = d.max((m.exp() - o.exp()).abs());
                }
                *slot = KinMsg {
                    to_parent,
                    to_child,
                    resid: d,
                    clean: ok,
                };
            });
        }

        std::mem::swap(fs2s, nfs2s);
        std::mem::swap(fhalf, nfhalf);
        std::mem::swap(fprob, nfprob);
        std::mem::swap(kmsg, nkmsg);
        let mut delta = 0.0f64;
        for h in fhalf.iter() {
            delta = delta.max(h.resid);
            clean &= h.clean;
        }
        for m in kmsg.iter() {
            delta = delta.max(m.resid);
            clean &= m.clean;
        }

        final_residual = delta;
        ppdp_telemetry::counter("bp.messages_updated", 2 * (nf + nk) as u64);
        ppdp_telemetry::value("bp.sweep_residual", delta);
        ppdp_telemetry::gauge("bp.round", sweeps as f64);
        ppdp_trace::bp_round(sweeps as u64, delta, 2 * (nf + nk) as u64, (nf + nk) as u64);
        if let Some(verdict) = watchdog.observe(delta) {
            ppdp_telemetry::counter(&format!("watchdog.bp.{}", verdict.as_str()), 1);
            ppdp_trace::watchdog_event("bp", verdict.as_str(), watchdog.iteration());
        }
        if !clean {
            break;
        }
        if delta < cfg.tol {
            converged = true;
            break;
        }
    }

    gather_totals_blocked(
        g, exec, tile, fs2s, fhalf, kmsg, lsnp_pot, ltrait_pot, stot, ttot,
    );
    let (st, tt) = (&stot[..], &ttot[..]);
    let mut bclean = true;
    let snp_marginals: Vec<[f64; 3]> = crate::bp::fold_flag(
        exec.par_map(g.n_snps(), |s| {
            let mut b = st[s];
            let ok = norm3_log(&mut b);
            let e = [b[0].exp(), b[1].exp(), b[2].exp()];
            let z = e[0] + e[1] + e[2];
            ([e[0] / z, e[1] / z, e[2] / z], ok)
        }),
        &mut bclean,
    );
    let trait_marginals: Vec<[f64; 2]> = crate::bp::fold_flag(
        exec.par_map(g.n_traits(), |t| {
            let mut b = tt[t];
            let ok = norm2_log(&mut b);
            let e = [b[0].exp(), b[1].exp()];
            let z = e[0] + e[1];
            ([e[0] / z, e[1] / z], ok)
        }),
        &mut bclean,
    );
    clean &= bclean;

    Attempt {
        snp_marginals,
        trait_marginals,
        sweeps,
        converged: converged && clean,
        final_residual,
        clean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_log_constants_match_runtime_ln() {
        assert_eq!(LN_THIRD, (1.0f64 / 3.0).ln());
        assert_eq!(LN_HALF, (1.0f64 / 2.0).ln());
    }

    #[test]
    fn lse_matches_naive_in_safe_range() {
        for (a, b, c) in [
            (0.0f64, 0.0f64, 0.0f64),
            (-1.0, -2.0, -3.0),
            (3.5, -0.25, 1.0),
        ] {
            let naive = (a.exp() + b.exp() + c.exp()).ln();
            assert!((lse3(a, b, c) - naive).abs() < 1e-12);
            let naive2 = (a.exp() + b.exp()).ln();
            assert!((lse2(a, b) - naive2).abs() < 1e-12);
            assert!((logsumexp(&[a, b, c]) - lse3(a, b, c)).abs() < 1e-12);
        }
    }

    #[test]
    fn lse_survives_extreme_magnitudes() {
        // Naive exp would overflow (+inf) or underflow (0 → -inf).
        assert!((lse2(1000.0, 1000.0) - (1000.0 + 2f64.ln())).abs() < 1e-9);
        assert!((lse2(-1e6, -1e6) - (-1e6 + 2f64.ln())).abs() < 1e-6);
        // The dominant element wins when the gap exceeds the mantissa.
        assert_eq!(lse2(0.0, -800.0), 0.0);
        assert_eq!(lse3(-5.0, f64::NEG_INFINITY, f64::NEG_INFINITY), -5.0);
        assert_eq!(logsumexp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn norm_log_normalizes_and_floors() {
        let mut v = [-1000.0, -1001.0, -5000.0, 0.0];
        assert!(norm3_log(&mut v));
        assert!((lse3(v[0], v[1], v[2])).abs() < 1e-12);
        assert_eq!(v[2], LOG_FLOOR, "deep lane clamps at the floor");
        assert_eq!(v[3], 0.0, "padding untouched");
        let mut w = [f64::NAN, 0.0];
        assert!(!norm2_log(&mut w), "NaN lane repairs to uniform");
        assert_eq!(w, [LN_HALF; 2]);
    }

    #[test]
    fn logmix_matches_linear_damping() {
        let (d, old, new) = (0.5f64, 0.2f64, 0.6f64);
        let mixed = logmix(old.ln(), new.ln(), d.ln(), (1.0 - d).ln());
        assert!((mixed.exp() - (d * old + (1.0 - d) * new)).abs() < 1e-12);
    }

    #[test]
    fn fac_msg_is_one_cache_line() {
        assert_eq!(std::mem::size_of::<FacMsg>(), 64);
    }

    #[test]
    fn fac_half_and_hot_plane_are_half_lines() {
        assert_eq!(std::mem::size_of::<FacHalf>(), 32);
        assert_eq!(std::mem::size_of::<[f64; 4]>(), 32);
    }

    #[test]
    fn lane_gathers_match_scalar_sums_across_remainders() {
        // Degrees 0..=9 cover every chunks_exact(4) remainder shape.
        for deg in 0..=9usize {
            let plane: Vec<[f64; 4]> = (0..deg)
                .map(|i| {
                    let x = (i as f64 + 1.0) * 0.37 - 1.1;
                    [x, -x * 0.5, x * x * 0.01, 0.0]
                })
                .collect();
            let half: Vec<FacHalf> = plane
                .iter()
                .map(|p| FacHalf {
                    to_t: [p[0] * 0.3, p[1] - 0.2],
                    ..FacHalf::default()
                })
                .collect();
            let ids: Vec<u32> = (0..deg as u32).collect();
            let init4 = [0.25, -0.5, 1.5, 0.0];
            let got4 = gather4(init4, &ids, &plane);
            let mut want4 = init4;
            for &f in &ids {
                add4(&mut want4, &plane[f as usize]);
            }
            for (a, b) in got4.iter().zip(&want4) {
                assert!((a - b).abs() < 1e-12, "deg={deg}: {a} vs {b}");
            }
            let init2 = [0.1, -0.7];
            let got2 = gather2(init2, &ids, &half);
            let mut want2 = init2;
            for &f in &ids {
                add2(&mut want2, &half[f as usize].to_t);
            }
            for (a, b) in got2.iter().zip(&want2) {
                assert!((a - b).abs() < 1e-12, "deg={deg}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn lane_gathers_are_deterministic_for_fixed_inputs() {
        let plane: Vec<[f64; 4]> = (0..1500)
            .map(|i| {
                let x = ((i * 2654435761_usize) % 997) as f64 / 997.0 - 0.5;
                [x, x * 0.5, -x, 0.0]
            })
            .collect();
        let ids: Vec<u32> = (0..1500).collect();
        let a = gather4([0.0; 4], &ids, &plane);
        let b = gather4([0.0; 4], &ids, &plane);
        assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits));
    }
}
