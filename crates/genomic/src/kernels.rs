//! Log-domain, flat-slice belief-propagation kernels.
//!
//! The textbook sum-product recursion of [`crate::bp`] multiplies
//! per-hop-normalized messages in linear probability space. That is exact
//! on the small Fig. 5.1 fixtures, but at AMD scale (90 449 SNPs,
//! hub variables with thousands of incident factors) the *product of
//! incoming messages at one variable* underflows: normalized 3-vector
//! messages have components ≈ 0.3–0.5, so a degree-`d` product has
//! components ≈ `0.5^d`, which reaches exact `0.0` near `d ≈ 1000` and
//! triggers the repair → unclean → restart-ladder → `prior_fallback`
//! degradation path even though the posterior is perfectly well defined.
//!
//! This module re-expresses the same fixed-point iteration in log space:
//!
//! * messages are stored as logs, normalized so `logsumexp(msg) = 0`;
//! * products become sums; factor marginalization becomes
//!   [`lse2`]/[`lse3`] with max-subtraction stabilization, which never
//!   overflows and never returns `-inf` for finite inputs;
//! * every stored lane is clamped at [`LOG_FLOOR`] (= ln of ~1e-304,
//!   still above the subnormal range), which makes the cavity
//!   subtraction `total − own` branch-free: no `-inf − (-inf) = NaN`
//!   corner exists;
//! * the per-variable incoming *product* is computed once per sweep as a
//!   flat total ([`BpScratch::stot`]/[`BpScratch::ttot`]), and each
//!   factor's cavity is recovered by subtracting its own branch — the
//!   innermost loops are fixed-width lane loops over padded `[f64; 4]`
//!   slots with no per-edge indirection, so they auto-vectorize;
//! * sweeps are scheduled over the CSR arenas in cache-sized blocks via
//!   [`ppdp_exec::ExecPolicy::par_fill`], with block-to-worker-lane
//!   affinity that is stable across rounds.
//!
//! The domain is selected per run by [`MessageDomain`] on
//! [`crate::BpConfig`]; the linear kernel remains the default and is
//! bit-for-bit unchanged. The differential suite (`tests/kernels.rs`)
//! proves the two kernels agree to ≤ 1e-9 on the golden fixtures, pick
//! identical sanitization sets, and stay policy- and resume-equivalent,
//! while the adversarial proptests drive the linear kernel into
//! underflow that the log kernel survives.
//!
//! Arenas live in a thread-local [`BpScratch`] (see [`with_scratch`]),
//! so repeated `publish`/`publish_resumable` calls on one thread reuse
//! their message buffers instead of reallocating per BP run.

use crate::bp::{Attempt, BpConfig, PAR_MIN_FACTORS};
use crate::factor_graph::FactorGraph;
use ppdp_exec::ExecPolicy;
use std::cell::RefCell;

/// Numeric domain for BP message storage and combination.
///
/// Both domains iterate the *same* fixed point (Eqs. 5.3–5.6) and
/// converge on the same residual criterion (max absolute change of
/// probability-space message components), so marginals agree to within
/// the convergence tolerance. Choose:
///
/// * [`Linear`](MessageDomain::Linear) — the default. Exact zeros are
///   preserved (evidence indicators stay `0.0`), and the historical
///   golden snapshots were produced in this domain. Underflows at high
///   variable degree (≳ 1000 incident factors).
/// * [`Log`](MessageDomain::Log) — log-sum-exp kernels, immune to
///   message-product underflow; exact zeros become `exp(LOG_FLOOR)`
///   ≈ 1e-304. Use for paper-scale graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MessageDomain {
    /// Probability-space messages (historical kernel, exact zeros).
    #[default]
    Linear,
    /// Log-space messages (underflow-immune flat-lane kernel).
    Log,
}

/// Lower clamp for stored log-message lanes: `exp(-700)` ≈ 9.9e-305 is
/// the smallest normal-range magnitude we keep, safely above f64's
/// subnormal threshold (`exp(-745)` ≈ 5e-324). Clamping here (rather
/// than at `-inf`) keeps the cavity subtraction `total − own` finite and
/// branch-free.
pub const LOG_FLOOR: f64 = -700.0;

/// `ln(1/3)`, the uniform 3-state log-message (bit-equal to
/// `(1.0f64 / 3.0).ln()`, asserted in the unit tests).
const LN_THIRD: f64 = -1.0986122886681098;

/// `ln(1/2)`, the uniform 2-state log-message.
const LN_HALF: f64 = -std::f64::consts::LN_2;

/// Factors per scheduling block: 4096 × 64-byte [`FacMsg`] slots ≈
/// 256 KiB per block, sized to stay resident in a core's private L2
/// across the read-modify-write of one sweep.
const BLOCK: usize = 4096;

/// Stable log-sum-exp of two values: `ln(e^a + e^b)` with the max
/// subtracted first. Never overflows; returns `-inf` only when both
/// inputs are `-inf`. For finite inputs the result is finite and
/// `>= max(a, b)`.
#[inline]
pub fn lse2(a: f64, b: f64) -> f64 {
    let m = a.max(b);
    if !m.is_finite() {
        // Both -inf (sum of zeros), or a NaN/+inf slipped in: in every
        // case m itself is the mathematically right (or least wrong)
        // answer and avoids NaN from `-inf - -inf`.
        return m;
    }
    m + ((a - m).exp() + (b - m).exp()).ln()
}

/// Stable log-sum-exp of three values (see [`lse2`]).
#[inline]
pub fn lse3(a: f64, b: f64, c: f64) -> f64 {
    let m = a.max(b).max(c);
    if !m.is_finite() {
        return m;
    }
    m + ((a - m).exp() + (b - m).exp() + (c - m).exp()).ln()
}

/// Stable log-sum-exp over a slice; `-inf` for an empty slice.
pub fn logsumexp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return m;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

/// Normalizes a 3-state log-message in place so `logsumexp = 0`,
/// clamping lanes at [`LOG_FLOOR`] (lane 3 is padding and left as-is).
/// A non-finite normalizer — a NaN or `+inf` lane, the log-domain
/// signature of a poisoned table — repairs the message to uniform,
/// bumps `bp.renormalized`, and returns `false`, mirroring the linear
/// kernel's `checked3_flag`.
#[inline]
pub(crate) fn norm3_log(v: &mut [f64; 4]) -> bool {
    let z = lse3(v[0], v[1], v[2]);
    if !z.is_finite() {
        ppdp_telemetry::counter("bp.renormalized", 1);
        v[0] = LN_THIRD;
        v[1] = LN_THIRD;
        v[2] = LN_THIRD;
        return false;
    }
    v[0] = (v[0] - z).max(LOG_FLOOR);
    v[1] = (v[1] - z).max(LOG_FLOOR);
    v[2] = (v[2] - z).max(LOG_FLOOR);
    true
}

/// 2-state sibling of [`norm3_log`].
#[inline]
pub(crate) fn norm2_log(v: &mut [f64; 2]) -> bool {
    let z = lse2(v[0], v[1]);
    if !z.is_finite() {
        ppdp_telemetry::counter("bp.renormalized", 1);
        v[0] = LN_HALF;
        v[1] = LN_HALF;
        return false;
    }
    v[0] = (v[0] - z).max(LOG_FLOOR);
    v[1] = (v[1] - z).max(LOG_FLOOR);
    true
}

/// Log-domain damping: `ln(d·e^old + (1−d)·e^new)` via [`lse2`]. Called
/// with precomputed `ln d` / `ln(1−d)`; both inputs normalized, so the
/// mix is normalized too (up to rounding).
#[inline]
fn logmix(old: f64, new: f64, ln_d: f64, ln_1md: f64) -> f64 {
    lse2(ln_d + old, ln_1md + new)
}

/// One association factor's outgoing log-messages plus its sweep
/// residual and clean flag, padded to a 64-byte cache line so one
/// factor's state is one line.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FacMsg {
    /// Log-message to the SNP variable (lane 3 = padding, kept `0.0`).
    to_s: [f64; 4],
    /// Log-message to the trait variable.
    to_t: [f64; 2],
    /// Max probability-space component change of the last update.
    resid: f64,
    /// `false` when this factor's update needed repair (poisoned table).
    clean: bool,
}

impl Default for FacMsg {
    fn default() -> Self {
        // ln(1) = 0 per lane: identical to the linear kernel's fresh
        // [1.0; 3] messages, so sweep 1 sees the same starting point.
        Self {
            to_s: [0.0; 4],
            to_t: [0.0; 2],
            resid: 0.0,
            clean: true,
        }
    }
}

/// One kin factor's outgoing log-messages (to-parent side 0, to-child
/// side 1) plus residual and clean flag.
#[derive(Debug, Clone, Copy)]
pub(crate) struct KinMsg {
    to_parent: [f64; 4],
    to_child: [f64; 4],
    resid: f64,
    clean: bool,
}

impl Default for KinMsg {
    fn default() -> Self {
        Self {
            to_parent: [0.0; 4],
            to_child: [0.0; 4],
            resid: 0.0,
            clean: true,
        }
    }
}

/// Reusable message arenas for both BP kernels.
///
/// One scratch lives per thread (see [`with_scratch`]); `clear` +
/// `resize` re-initializes contents to the fresh-run values without
/// touching capacity, so back-to-back runs on same-shaped graphs —
/// the greedy-sanitization inner loop, repeated `publish` calls —
/// perform zero message-buffer allocations after the first run. The
/// `exec.arena.reused` / `exec.arena.grown` metrics count warm vs cold
/// runs (asserted flat by the arena-reuse leak test).
#[derive(Debug, Default)]
pub struct BpScratch {
    /// Linear-domain factor→SNP messages.
    pub(crate) lin_f2s: Vec<[f64; 3]>,
    /// Linear-domain factor→trait messages.
    pub(crate) lin_f2t: Vec<[f64; 2]>,
    /// Linear-domain kin→SNP messages (side 0 parent, 1 child).
    pub(crate) lin_k2s: Vec<[[f64; 3]; 2]>,
    /// Per-association-factor log tables, `[g*2 + t]`, pads at floor.
    ltab: Vec<[f64; 8]>,
    /// Per-kin-factor log tables, `[p*4 + c]`, pads at floor.
    lktab: Vec<[f64; 16]>,
    /// Log node potentials (evidence indicators / flat / priors).
    lsnp_pot: Vec<[f64; 4]>,
    /// Log trait potentials (evidence indicators / prevalence priors).
    ltrait_pot: Vec<[f64; 2]>,
    /// Current / next association-factor messages (swapped per sweep).
    fmsg: Vec<FacMsg>,
    nfmsg: Vec<FacMsg>,
    /// Current / next kin-factor messages.
    kmsg: Vec<KinMsg>,
    nkmsg: Vec<KinMsg>,
    /// Per-SNP incoming log totals (potential + all incident messages).
    stot: Vec<[f64; 4]>,
    /// Per-trait incoming log totals.
    ttot: Vec<[f64; 2]>,
    /// `false` when table/potential screening found a poisoned input —
    /// every log attempt on this graph is then marked unclean, matching
    /// the linear kernel's repair-and-degrade semantics.
    log_ok: bool,
}

thread_local! {
    static SCRATCH: RefCell<BpScratch> = RefCell::new(BpScratch::default());
}

/// Runs `f` with this thread's persistent [`BpScratch`]. Re-entrant
/// calls (a BP run nested inside another on the same thread) fall back
/// to a fresh scratch rather than aliasing the outer one.
pub fn with_scratch<R>(f: impl FnOnce(&mut BpScratch) -> R) -> R {
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut BpScratch::default()),
    })
}

/// Converts one probability `x` to a floored log lane. Exact zeros are
/// legal table entries and clamp to [`LOG_FLOOR`]; NaN, negative or
/// `+inf` entries are poison and clear `ok` (the linear kernel would
/// emit NaN messages and repair them; the log kernel screens once).
#[inline]
fn ln_lane(x: f64, ok: &mut bool) -> f64 {
    if x > 0.0 && x.is_finite() {
        x.ln().max(LOG_FLOOR)
    } else {
        if x != 0.0 {
            *ok = false;
        }
        LOG_FLOOR
    }
}

impl BpScratch {
    /// True when the arenas already have capacity for an `nf`-factor,
    /// `nk`-kin-factor graph in `domain` (i.e. the coming run allocates
    /// nothing).
    pub(crate) fn is_warm(&self, domain: MessageDomain, nf: usize, nk: usize) -> bool {
        match domain {
            MessageDomain::Linear => {
                self.lin_f2s.capacity() >= nf
                    && self.lin_f2t.capacity() >= nf
                    && self.lin_k2s.capacity() >= nk
            }
            MessageDomain::Log => {
                self.fmsg.capacity() >= nf
                    && self.nfmsg.capacity() >= nf
                    && self.kmsg.capacity() >= nk
                    && self.nkmsg.capacity() >= nk
                    && self.ltab.capacity() >= nf
            }
        }
    }

    /// Precomputes the log tables and log potentials for `g`, returning
    /// with `self.log_ok = false` (and one `bp.renormalized` bump per
    /// poisoned factor) when screening finds NaN/negative/`+inf` entries
    /// or an all-zero table — the inputs on which the linear kernel's
    /// every sweep needs repair.
    pub(crate) fn prepare_log(&mut self, g: &FactorGraph) {
        let nf = g.factors.len();
        let nk = g.kin_factors.len();
        self.log_ok = true;

        self.ltab.clear();
        self.ltab.reserve(nf);
        for fac in &g.factors {
            let mut lanes = [LOG_FLOOR; 8];
            let mut ok = true;
            let mut any_pos = false;
            for (gi, row) in fac.table.iter().enumerate() {
                for (t, &x) in row.iter().enumerate() {
                    any_pos |= x > 0.0;
                    lanes[gi * 2 + t] = ln_lane(x, &mut ok);
                }
            }
            if !ok || !any_pos {
                ppdp_telemetry::counter("bp.renormalized", 1);
                self.log_ok = false;
            }
            self.ltab.push(lanes);
        }

        self.lktab.clear();
        self.lktab.reserve(nk);
        for kf in &g.kin_factors {
            let mut lanes = [LOG_FLOOR; 16];
            let mut ok = true;
            let mut any_pos = false;
            for (p, row) in kf.table.iter().enumerate() {
                for (c, &x) in row.iter().enumerate() {
                    any_pos |= x > 0.0;
                    lanes[p * 4 + c] = ln_lane(x, &mut ok);
                }
            }
            if !ok || !any_pos {
                ppdp_telemetry::counter("bp.renormalized", 1);
                self.log_ok = false;
            }
            self.lktab.push(lanes);
        }

        self.lsnp_pot.clear();
        self.lsnp_pot.reserve(g.n_snps());
        for ev in &g.snp_evidence {
            self.lsnp_pot.push(match ev {
                Some(i) => {
                    let mut v = [LOG_FLOOR, LOG_FLOOR, LOG_FLOOR, 0.0];
                    v[*i] = 0.0;
                    v
                }
                // ln(1) per lane — flat, like the linear [1.0; 3] pot.
                None => [0.0; 4],
            });
        }

        self.ltrait_pot.clear();
        self.ltrait_pot.reserve(g.n_traits());
        for (t, ev) in g.trait_evidence.iter().enumerate() {
            self.ltrait_pot.push(match ev {
                Some(true) => [LOG_FLOOR, 0.0],
                Some(false) => [0.0, LOG_FLOOR],
                None => {
                    let mut ok = true;
                    let p = g.trait_prior[t];
                    let lanes = [ln_lane(p[0], &mut ok), ln_lane(p[1], &mut ok)];
                    if !ok {
                        ppdp_telemetry::counter("bp.renormalized", 1);
                        self.log_ok = false;
                    }
                    lanes
                }
            });
        }
    }
}

/// One log-domain message-passing attempt from fresh messages at the
/// given damping — the log twin of the linear `BpConfig::attempt`, with
/// identical sweep scheduling (synchronous updates from the previous
/// sweep's messages), residual semantics (max absolute *probability*
/// change), telemetry stream, and restart/degradation contract.
/// Requires [`BpScratch::prepare_log`] to have run for `g`.
pub(crate) fn log_attempt(
    cfg: &BpConfig,
    g: &FactorGraph,
    damping: f64,
    scratch: &mut BpScratch,
) -> Attempt {
    let nf = g.factors.len();
    let nk = g.kin_factors.len();
    let exec = if nf + nk >= PAR_MIN_FACTORS {
        cfg.exec
    } else {
        ExecPolicy::Sequential
    };
    let BpScratch {
        ltab,
        lktab,
        lsnp_pot,
        ltrait_pot,
        fmsg,
        nfmsg,
        kmsg,
        nkmsg,
        stot,
        ttot,
        log_ok,
        ..
    } = scratch;
    let inputs_ok = *log_ok;
    let (ltab, lktab) = (&ltab[..], &lktab[..]);
    let (lsnp_pot, ltrait_pot) = (&lsnp_pot[..], &ltrait_pot[..]);
    fmsg.clear();
    fmsg.resize(nf, FacMsg::default());
    nfmsg.clear();
    nfmsg.resize(nf, FacMsg::default());
    kmsg.clear();
    kmsg.resize(nk, KinMsg::default());
    nkmsg.clear();
    nkmsg.resize(nk, KinMsg::default());
    stot.clear();
    stot.resize(g.n_snps(), [0.0; 4]);
    ttot.clear();
    ttot.resize(g.n_traits(), [0.0; 2]);

    let (ln_d, ln_1md) = if damping > 0.0 {
        (damping.ln(), (1.0 - damping).ln())
    } else {
        (f64::NEG_INFINITY, 0.0)
    };

    let mut sweeps = 0;
    let mut converged = false;
    let mut final_residual = f64::INFINITY;
    let mut clean = inputs_ok;
    let mut watchdog =
        ppdp_trace::ConvergenceWatchdog::new(ppdp_trace::WatchdogConfig::with_tol(cfg.tol));

    // Pass A: per-variable incoming totals (potential + every incident
    // message). Totals make the per-factor cavity a branch-free
    // subtraction in pass B instead of a skip-one gather per edge.
    #[allow(clippy::too_many_arguments)]
    fn gather_totals(
        g: &FactorGraph,
        exec: ExecPolicy,
        fm: &[FacMsg],
        km: &[KinMsg],
        lsnp_pot: &[[f64; 4]],
        ltrait_pot: &[[f64; 2]],
        stot: &mut [[f64; 4]],
        ttot: &mut [[f64; 2]],
    ) {
        exec.par_fill(stot, BLOCK, |s, slot| {
            let mut tot = lsnp_pot[s];
            for &f in g.snp_factor_ids(s) {
                let m = &fm[f as usize].to_s;
                for l in 0..4 {
                    tot[l] += m[l];
                }
            }
            for &k in g.snp_kin_ids(s) {
                let k = k as usize;
                let m = if g.kin_factors[k].parent == s {
                    &km[k].to_parent
                } else {
                    &km[k].to_child
                };
                for l in 0..4 {
                    tot[l] += m[l];
                }
            }
            *slot = tot;
        });
        exec.par_fill(ttot, BLOCK, |t, slot| {
            let mut tot = ltrait_pot[t];
            for &f in g.trait_factor_ids(t) {
                let m = &fm[f as usize].to_t;
                tot[0] += m[0];
                tot[1] += m[1];
            }
            *slot = tot;
        });
    }

    ppdp_telemetry::target("bp.rounds", cfg.max_iters as f64);
    for iter in 0..cfg.max_iters {
        sweeps = iter + 1;
        gather_totals(g, exec, fmsg, kmsg, lsnp_pot, ltrait_pot, stot, ttot);
        let (st, tt) = (&stot[..], &ttot[..]);

        // Pass B: per-factor cavity + update (Eqs. 5.5/5.6 in log
        // space). Reads only previous-sweep messages and the totals, so
        // every slot is independent; the innermost loops are fixed-lane.
        {
            let fm = &fmsg[..];
            exec.par_fill(&mut nfmsg[..], BLOCK, |f, slot| {
                let fac = &g.factors[f];
                let old = &fm[f];
                let tab = &ltab[f];
                let mut ok = true;

                // Cavity at the SNP = this factor's variable→factor
                // message (Eq. 5.3), normalized like the linear kernel
                // normalizes s2f.
                let mut cs = [0.0f64; 4];
                for l in 0..4 {
                    cs[l] = st[fac.snp][l] - old.to_s[l];
                }
                ok &= norm3_log(&mut cs);
                let mut ct = [
                    tt[fac.trait_idx][0] - old.to_t[0],
                    tt[fac.trait_idx][1] - old.to_t[1],
                ];
                ok &= norm2_log(&mut ct);

                let mut to_s = [0.0f64; 4];
                for gi in 0..3 {
                    to_s[gi] = lse2(tab[gi * 2] + ct[0], tab[gi * 2 + 1] + ct[1]);
                }
                ok &= norm3_log(&mut to_s);
                let mut to_t = [0.0f64; 2];
                for t in 0..2 {
                    to_t[t] = lse3(tab[t] + cs[0], tab[2 + t] + cs[1], tab[4 + t] + cs[2]);
                }
                ok &= norm2_log(&mut to_t);

                if damping > 0.0 {
                    for (m, &o) in to_s.iter_mut().zip(old.to_s.iter()).take(3) {
                        *m = logmix(o, *m, ln_d, ln_1md);
                    }
                    for (m, &o) in to_t.iter_mut().zip(old.to_t.iter()) {
                        *m = logmix(o, *m, ln_d, ln_1md);
                    }
                }
                let mut d = 0.0f64;
                for (&m, &o) in to_s.iter().zip(old.to_s.iter()).take(3) {
                    d = d.max((m.exp() - o.exp()).abs());
                }
                for (&m, &o) in to_t.iter().zip(old.to_t.iter()) {
                    d = d.max((m.exp() - o.exp()).abs());
                }
                *slot = FacMsg {
                    to_s,
                    to_t,
                    resid: d,
                    clean: ok,
                };
            });
        }

        // Kin pass: 3×3 transmission tables, both directions.
        {
            let km = &kmsg[..];
            exec.par_fill(&mut nkmsg[..], BLOCK, |k, slot| {
                let kf = &g.kin_factors[k];
                let old = &km[k];
                let tab = &lktab[k];
                let mut ok = true;

                let mut cp = [0.0f64; 4];
                let mut cc = [0.0f64; 4];
                for l in 0..4 {
                    cp[l] = st[kf.parent][l] - old.to_parent[l];
                    cc[l] = st[kf.child][l] - old.to_child[l];
                }
                ok &= norm3_log(&mut cp);
                ok &= norm3_log(&mut cc);

                // to child: lse over parents of T[p][c] + μ_{parent→k}(p)
                let mut to_child = [0.0f64; 4];
                for c in 0..3 {
                    to_child[c] = lse3(tab[c] + cp[0], tab[4 + c] + cp[1], tab[8 + c] + cp[2]);
                }
                ok &= norm3_log(&mut to_child);
                // to parent: lse over children of T[p][c] + μ_{child→k}(c)
                let mut to_parent = [0.0f64; 4];
                for (p, m) in to_parent.iter_mut().enumerate().take(3) {
                    let row = p * 4;
                    *m = lse3(tab[row] + cc[0], tab[row + 1] + cc[1], tab[row + 2] + cc[2]);
                }
                ok &= norm3_log(&mut to_parent);

                if damping > 0.0 {
                    for l in 0..3 {
                        to_parent[l] = logmix(old.to_parent[l], to_parent[l], ln_d, ln_1md);
                        to_child[l] = logmix(old.to_child[l], to_child[l], ln_d, ln_1md);
                    }
                }
                let mut d = 0.0f64;
                for l in 0..3 {
                    d = d.max((to_parent[l].exp() - old.to_parent[l].exp()).abs());
                    d = d.max((to_child[l].exp() - old.to_child[l].exp()).abs());
                }
                *slot = KinMsg {
                    to_parent,
                    to_child,
                    resid: d,
                    clean: ok,
                };
            });
        }

        std::mem::swap(fmsg, nfmsg);
        std::mem::swap(kmsg, nkmsg);
        let mut delta = 0.0f64;
        for m in fmsg.iter() {
            delta = delta.max(m.resid);
            clean &= m.clean;
        }
        for m in kmsg.iter() {
            delta = delta.max(m.resid);
            clean &= m.clean;
        }

        final_residual = delta;
        ppdp_telemetry::counter("bp.messages_updated", 2 * (nf + nk) as u64);
        ppdp_telemetry::value("bp.sweep_residual", delta);
        ppdp_telemetry::gauge("bp.round", sweeps as f64);
        ppdp_trace::bp_round(sweeps as u64, delta, 2 * (nf + nk) as u64, (nf + nk) as u64);
        if let Some(verdict) = watchdog.observe(delta) {
            ppdp_telemetry::counter(&format!("watchdog.bp.{}", verdict.as_str()), 1);
            ppdp_trace::watchdog_event("bp", verdict.as_str(), watchdog.iteration());
        }
        if !clean {
            break;
        }
        if delta < cfg.tol {
            converged = true;
            break;
        }
    }

    // Beliefs: refresh the totals from the final messages, normalize in
    // log space, exponentiate, and renormalize the (already ≈ 1) sums in
    // linear space so marginals sum to 1 at f64 precision.
    gather_totals(g, exec, fmsg, kmsg, lsnp_pot, ltrait_pot, stot, ttot);
    let (st, tt) = (&stot[..], &ttot[..]);
    let mut bclean = true;
    let snp_marginals: Vec<[f64; 3]> = crate::bp::fold_flag(
        exec.par_map(g.n_snps(), |s| {
            let mut b = st[s];
            let ok = norm3_log(&mut b);
            let e = [b[0].exp(), b[1].exp(), b[2].exp()];
            let z = e[0] + e[1] + e[2];
            ([e[0] / z, e[1] / z, e[2] / z], ok)
        }),
        &mut bclean,
    );
    let trait_marginals: Vec<[f64; 2]> = crate::bp::fold_flag(
        exec.par_map(g.n_traits(), |t| {
            let mut b = tt[t];
            let ok = norm2_log(&mut b);
            let e = [b[0].exp(), b[1].exp()];
            let z = e[0] + e[1];
            ([e[0] / z, e[1] / z], ok)
        }),
        &mut bclean,
    );
    clean &= bclean;

    Attempt {
        snp_marginals,
        trait_marginals,
        sweeps,
        converged: converged && clean,
        final_residual,
        clean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_log_constants_match_runtime_ln() {
        assert_eq!(LN_THIRD, (1.0f64 / 3.0).ln());
        assert_eq!(LN_HALF, (1.0f64 / 2.0).ln());
    }

    #[test]
    fn lse_matches_naive_in_safe_range() {
        for (a, b, c) in [
            (0.0f64, 0.0f64, 0.0f64),
            (-1.0, -2.0, -3.0),
            (3.5, -0.25, 1.0),
        ] {
            let naive = (a.exp() + b.exp() + c.exp()).ln();
            assert!((lse3(a, b, c) - naive).abs() < 1e-12);
            let naive2 = (a.exp() + b.exp()).ln();
            assert!((lse2(a, b) - naive2).abs() < 1e-12);
            assert!((logsumexp(&[a, b, c]) - lse3(a, b, c)).abs() < 1e-12);
        }
    }

    #[test]
    fn lse_survives_extreme_magnitudes() {
        // Naive exp would overflow (+inf) or underflow (0 → -inf).
        assert!((lse2(1000.0, 1000.0) - (1000.0 + 2f64.ln())).abs() < 1e-9);
        assert!((lse2(-1e6, -1e6) - (-1e6 + 2f64.ln())).abs() < 1e-6);
        // The dominant element wins when the gap exceeds the mantissa.
        assert_eq!(lse2(0.0, -800.0), 0.0);
        assert_eq!(lse3(-5.0, f64::NEG_INFINITY, f64::NEG_INFINITY), -5.0);
        assert_eq!(logsumexp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn norm_log_normalizes_and_floors() {
        let mut v = [-1000.0, -1001.0, -5000.0, 0.0];
        assert!(norm3_log(&mut v));
        assert!((lse3(v[0], v[1], v[2])).abs() < 1e-12);
        assert_eq!(v[2], LOG_FLOOR, "deep lane clamps at the floor");
        assert_eq!(v[3], 0.0, "padding untouched");
        let mut w = [f64::NAN, 0.0];
        assert!(!norm2_log(&mut w), "NaN lane repairs to uniform");
        assert_eq!(w, [LN_HALF; 2]);
    }

    #[test]
    fn logmix_matches_linear_damping() {
        let (d, old, new) = (0.5f64, 0.2f64, 0.6f64);
        let mixed = logmix(old.ln(), new.ln(), d.ln(), (1.0 - d).ln());
        assert!((mixed.exp() - (d * old + (1.0 - d) * new)).abs() < 1e-12);
    }

    #[test]
    fn fac_msg_is_one_cache_line() {
        assert_eq!(std::mem::size_of::<FacMsg>(), 64);
    }
}
