//! Privacy metrics of §5.5.1 and §5.6.2:
//! * normalized entropy `H_i` (Eq. 5.7) and the `δ-privacy` criterion
//!   (Def. 5.5.1);
//! * the attacker estimation error `Er` (Eq. 5.8).

/// Normalized Shannon entropy of a marginal: `H = −Σ p log p / log |domain|`
/// (Eq. 5.7 — the dissertation normalizes SNPs by `log 3`; this
/// generalization divides by the log of the actual domain size so traits
/// normalize by `log 2`). Ranges over `[0, 1]`; 1 = attacker fully
/// uncertain.
pub fn entropy_privacy(dist: &[f64]) -> f64 {
    let n = dist.len();
    if n <= 1 {
        return 0.0;
    }
    let h: f64 = dist
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum();
    (h / (n as f64).ln()).clamp(0.0, 1.0)
}

/// Def. 5.5.1: the released data satisfy `δ-privacy` for a set of target
/// marginals iff every target's normalized entropy is at least `δ`.
pub fn satisfies_delta_privacy<'a, I>(marginals: I, delta: f64) -> bool
where
    I: IntoIterator<Item = &'a [f64]>,
{
    marginals.into_iter().all(|m| entropy_privacy(m) >= delta)
}

/// Estimation error `Er = Σ_x p(x) · ‖x − x̂‖` (Eq. 5.8), where `x̂` is the
/// attacker's point prediction (the marginal's argmax) and values are coded
/// numerically by `coding` (e.g. risk-allele copies for genotypes, 0/1 for
/// traits). Normalized by the coding's range so it lies in `[0, 1]`.
pub fn estimation_error(dist: &[f64], coding: &[f64]) -> f64 {
    assert_eq!(
        dist.len(),
        coding.len(),
        "distribution/coding length mismatch"
    );
    if dist.is_empty() {
        return 0.0;
    }
    let xhat = coding[argmax(dist)];
    let range = coding.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - coding.iter().cloned().fold(f64::INFINITY, f64::min);
    let raw: f64 = dist
        .iter()
        .zip(coding)
        .map(|(&p, &x)| p * (x - xhat).abs())
        .sum();
    if range > 0.0 {
        raw / range
    } else {
        0.0
    }
}

/// Numeric coding of the genotype domain (risk-allele copies 2/1/0).
pub const GENOTYPE_CODING: [f64; 3] = [2.0, 1.0, 0.0];

/// Numeric coding of the trait domain (absent/present).
pub const TRAIT_CODING: [f64; 2] = [0.0, 1.0];

fn argmax(v: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_extremes() {
        assert_eq!(entropy_privacy(&[1.0, 0.0, 0.0]), 0.0);
        assert!((entropy_privacy(&[1.0 / 3.0; 3]) - 1.0).abs() < 1e-12);
        assert!((entropy_privacy(&[0.5, 0.5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_monotone_toward_uniform() {
        let sharp = entropy_privacy(&[0.9, 0.05, 0.05]);
        let soft = entropy_privacy(&[0.5, 0.3, 0.2]);
        assert!(soft > sharp);
    }

    #[test]
    fn degenerate_domains() {
        assert_eq!(entropy_privacy(&[]), 0.0);
        assert_eq!(entropy_privacy(&[1.0]), 0.0);
    }

    #[test]
    fn delta_privacy_all_targets_must_pass() {
        let a = [0.5, 0.5];
        let b = [0.95, 0.05];
        assert!(satisfies_delta_privacy([&a[..]], 0.9));
        assert!(!satisfies_delta_privacy([&a[..], &b[..]], 0.9));
        assert!(satisfies_delta_privacy(std::iter::empty::<&[f64]>(), 0.9));
    }

    #[test]
    fn estimation_error_zero_when_certain() {
        assert_eq!(estimation_error(&[0.0, 0.0, 1.0], &GENOTYPE_CODING), 0.0);
    }

    #[test]
    fn estimation_error_grows_with_uncertainty() {
        let sharp = estimation_error(&[0.9, 0.1, 0.0], &GENOTYPE_CODING);
        let soft = estimation_error(&[0.4, 0.3, 0.3], &GENOTYPE_CODING);
        assert!(soft > sharp);
        // Uniform over genotypes: argmax = rr (2 copies), error =
        // (1/3·0 + 1/3·1 + 1/3·2) / 2 = 0.5.
        let uni = estimation_error(&[1.0 / 3.0; 3], &GENOTYPE_CODING);
        assert!((uni - 0.5).abs() < 1e-12);
    }

    #[test]
    fn trait_coding_error() {
        assert!((estimation_error(&[0.3, 0.7], &TRAIT_CODING) - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn coding_length_checked() {
        estimation_error(&[0.5, 0.5], &GENOTYPE_CODING);
    }
}
