//! The GWAS-Catalog model (§5.2.3, §5.3.1): traits with prevalence rates
//! and SNP-trait associations `C(T, s_i, r_i^j, O_i^j, f_i^{j,o})`.

use crate::model::{SnpId, TraitId};
use ppdp_errors::Result;

/// One catalogued trait: a name plus its population prevalence rate
/// `p(t_j)` (Table 5.3 supplies the dissertation's seven diseases).
#[derive(Debug, Clone, PartialEq)]
pub struct TraitInfo {
    /// Human-readable trait/disease name.
    pub name: String,
    /// Population prevalence `p(t_j) ∈ (0, 1)`.
    pub prevalence: f64,
}

/// One SNP-trait association as reported by the GWAS catalog: the risk
/// allele's odds ratio `O_i^j` and its control-group frequency `f_i^{j,o}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Association {
    /// The SNP.
    pub snp: SnpId,
    /// The associated trait.
    pub trait_id: TraitId,
    /// Odds ratio of the risk allele (> 0; > 1 means the allele raises
    /// susceptibility).
    pub odds_ratio: f64,
    /// Risk-allele frequency in the control group, `f^o ∈ (0, 1)`.
    pub raf_control: f64,
}

impl Association {
    /// Case-group risk-allele frequency `f^a` derived from `f^o` and the
    /// odds ratio (the derivation the dissertation cites from [49]):
    /// `odds_case = OR · odds_control` ⇒
    /// `f^a = OR·f^o / (1 − f^o + OR·f^o)`.
    pub fn raf_case(&self) -> f64 {
        let num = self.odds_ratio * self.raf_control;
        num / (1.0 - self.raf_control + num)
    }
}

/// The full catalog: traits, the number of catalogued SNPs, and the
/// association list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GwasCatalog {
    traits: Vec<TraitInfo>,
    n_snps: usize,
    associations: Vec<Association>,
}

impl GwasCatalog {
    /// Creates an empty catalog over `n_snps` SNP loci.
    pub fn new(n_snps: usize) -> Self {
        Self {
            traits: Vec::new(),
            n_snps,
            associations: Vec::new(),
        }
    }

    /// Registers a trait; returns its id.
    ///
    /// # Panics
    /// Panics if `prevalence ∉ (0, 1)`.
    pub fn add_trait(&mut self, name: impl Into<String>, prevalence: f64) -> TraitId {
        assert!(
            prevalence > 0.0 && prevalence < 1.0,
            "prevalence must lie strictly in (0,1)"
        );
        self.traits.push(TraitInfo {
            name: name.into(),
            prevalence,
        });
        TraitId(self.traits.len() - 1)
    }

    /// Registers an association.
    ///
    /// # Panics
    /// Panics on out-of-range ids, non-positive odds ratio, or `f^o`
    /// outside `(0, 1)`.
    pub fn associate(&mut self, snp: SnpId, trait_id: TraitId, odds_ratio: f64, raf_control: f64) {
        assert!(snp.0 < self.n_snps, "unknown SNP {snp}");
        assert!(trait_id.0 < self.traits.len(), "unknown trait {trait_id}");
        assert!(odds_ratio > 0.0, "odds ratio must be positive");
        assert!(
            raf_control > 0.0 && raf_control < 1.0,
            "f^o must lie in (0,1)"
        );
        self.associations.push(Association {
            snp,
            trait_id,
            odds_ratio,
            raf_control,
        });
    }

    /// Number of SNP loci.
    pub fn n_snps(&self) -> usize {
        self.n_snps
    }

    /// Number of traits.
    pub fn n_traits(&self) -> usize {
        self.traits.len()
    }

    /// Trait metadata.
    pub fn trait_info(&self, t: TraitId) -> &TraitInfo {
        &self.traits[t.0]
    }

    /// All traits with ids.
    pub fn traits(&self) -> impl Iterator<Item = (TraitId, &TraitInfo)> {
        self.traits.iter().enumerate().map(|(i, t)| (TraitId(i), t))
    }

    /// All associations.
    pub fn associations(&self) -> &[Association] {
        &self.associations
    }

    /// Associations involving SNP `s` (the factor neighbourhood of the SNP
    /// variable node).
    pub fn associations_of_snp(&self, s: SnpId) -> impl Iterator<Item = &Association> {
        self.associations.iter().filter(move |a| a.snp == s)
    }

    /// Associations involving trait `t` (`S_{t_j}` of §5.3.1).
    pub fn associations_of_trait(&self, t: TraitId) -> impl Iterator<Item = &Association> {
        self.associations.iter().filter(move |a| a.trait_id == t)
    }

    /// Re-checks every invariant the registration methods enforce, plus the
    /// NaN/Inf cases their comparisons only reject by accident. This is the
    /// boundary check [`crate::FactorGraph::build`] runs before compiling a
    /// graph, so catalogs corrupted *after* construction (deserialized,
    /// mutated through [`GwasCatalog::traits_mut`], …) surface as typed
    /// errors naming the offending record instead of downstream NaN
    /// marginals.
    ///
    /// # Errors
    /// [`ppdp_errors::PpdpError::InvalidInput`] naming the first offending
    /// trait or association.
    pub fn validate(&self) -> Result<()> {
        for (j, t) in self.traits.iter().enumerate() {
            ppdp_errors::ensure_unit_open(
                &format!("trait {j} ({:?}) prevalence", t.name),
                t.prevalence,
            )?;
        }
        for (i, a) in self.associations.iter().enumerate() {
            ppdp_errors::ensure(
                a.snp.0 < self.n_snps,
                format!(
                    "association {i}: SNP {} out of range (catalog has {} loci)",
                    a.snp, self.n_snps
                ),
            )?;
            ppdp_errors::ensure(
                a.trait_id.0 < self.traits.len(),
                format!(
                    "association {i}: trait {} out of range (catalog has {} traits)",
                    a.trait_id,
                    self.traits.len()
                ),
            )?;
            ppdp_errors::ensure_positive(
                &format!("association {i} ({} ↔ {}) odds ratio", a.snp, a.trait_id),
                a.odds_ratio,
            )?;
            ppdp_errors::ensure_unit_open(
                &format!("association {i} ({} ↔ {}) control RAF", a.snp, a.trait_id),
                a.raf_control,
            )?;
        }
        Ok(())
    }

    /// Raw mutable access to the trait list, bypassing the registration
    /// checks. Exists so fault-injection harnesses (`ppdp-datagen`'s chaos
    /// module) can corrupt a catalog the way a bad upstream feed would;
    /// production code should never need it — [`GwasCatalog::validate`]
    /// rejects whatever it broke.
    #[doc(hidden)]
    pub fn traits_mut(&mut self) -> &mut Vec<TraitInfo> {
        &mut self.traits
    }

    /// Raw mutable access to the association list; see
    /// [`GwasCatalog::traits_mut`].
    #[doc(hidden)]
    pub fn associations_mut(&mut self) -> &mut Vec<Association> {
        &mut self.associations
    }

    /// The dissertation's Table 5.3: seven popular diseases and their
    /// prevalence rates, pre-registered as traits of a fresh catalog.
    pub fn with_table_5_3_traits(n_snps: usize) -> Self {
        let mut c = Self::new(n_snps);
        for (name, p) in TABLE_5_3 {
            c.add_trait(*name, *p);
        }
        c
    }
}

/// Table 5.3 of the dissertation: disease → prevalence rate.
pub const TABLE_5_3: &[(&str, f64)] = &[
    ("Alzheimer's Disease", 0.0167),
    ("Celiac Disease", 0.0075),
    ("Heart Diseases", 0.115),
    ("Hypertensive disease", 0.29),
    ("Liver carcinoma", 0.000017),
    ("Osteoporosis", 0.103),
    ("Stomach Carcinoma", 0.00025),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raf_case_derivation() {
        // OR = 1 → cases and controls identical.
        let a = Association {
            snp: SnpId(0),
            trait_id: TraitId(0),
            odds_ratio: 1.0,
            raf_control: 0.3,
        };
        assert!((a.raf_case() - 0.3).abs() < 1e-12);
        // OR = 2, f^o = 0.5 → odds 1 → 2 → f^a = 2/3.
        let b = Association {
            odds_ratio: 2.0,
            raf_control: 0.5,
            ..a
        };
        assert!((b.raf_case() - 2.0 / 3.0).abs() < 1e-12);
        // Risk allele with OR > 1 is always enriched in cases.
        let c = Association {
            odds_ratio: 1.8,
            raf_control: 0.2,
            ..a
        };
        assert!(c.raf_case() > c.raf_control);
    }

    #[test]
    fn catalog_registration_and_lookup() {
        let mut c = GwasCatalog::new(5);
        let t0 = c.add_trait("lung cancer", 0.06);
        let t1 = c.add_trait("height>1.9m", 0.02);
        c.associate(SnpId(0), t0, 1.4, 0.3);
        c.associate(SnpId(1), t0, 1.2, 0.25);
        c.associate(SnpId(1), t1, 0.8, 0.4);
        assert_eq!(c.n_traits(), 2);
        assert_eq!(c.associations_of_trait(t0).count(), 2);
        assert_eq!(c.associations_of_snp(SnpId(1)).count(), 2);
        assert_eq!(c.trait_info(t1).name, "height>1.9m");
    }

    #[test]
    fn table_5_3_registered() {
        let c = GwasCatalog::with_table_5_3_traits(10);
        assert_eq!(c.n_traits(), 7);
        assert!((c.trait_info(TraitId(3)).prevalence - 0.29).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unknown SNP")]
    fn association_to_unknown_snp_rejected() {
        let mut c = GwasCatalog::new(1);
        let t = c.add_trait("x", 0.1);
        c.associate(SnpId(5), t, 1.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "prevalence")]
    fn bad_prevalence_rejected() {
        GwasCatalog::new(1).add_trait("x", 1.5);
    }

    #[test]
    fn validate_accepts_well_formed_catalogs() {
        assert!(figure_like_catalog().validate().is_ok());
    }

    fn figure_like_catalog() -> GwasCatalog {
        let mut c = GwasCatalog::new(3);
        let t = c.add_trait("x", 0.1);
        c.associate(SnpId(0), t, 1.5, 0.3);
        c.associate(SnpId(2), t, 1.2, 0.4);
        c
    }

    #[test]
    fn validate_names_the_corrupted_record() {
        // NaN prevalence injected past the registration checks.
        let mut c = figure_like_catalog();
        c.traits_mut()[0].prevalence = f64::NAN;
        let e = c.validate().unwrap_err();
        assert_eq!(e.kind(), "invalid_input");
        assert!(e.to_string().contains("trait 0"), "{e}");

        // Non-positive odds ratio.
        let mut c = figure_like_catalog();
        c.associations_mut()[1].odds_ratio = 0.0;
        let e = c.validate().unwrap_err();
        assert!(e.to_string().contains("association 1"), "{e}");

        // Dangling SNP reference.
        let mut c = figure_like_catalog();
        c.associations_mut()[0].snp = SnpId(99);
        let e = c.validate().unwrap_err();
        assert!(e.to_string().contains("out of range"), "{e}");

        // Infinite control RAF.
        let mut c = figure_like_catalog();
        c.associations_mut()[0].raf_control = f64::INFINITY;
        assert!(c.validate().is_err());
    }
}
