//! Kin genomic inference — the relative-aware attacker of §5.1/§5.3.2.
//!
//! The dissertation's attacker "can effectively predict the target
//! genotypes and phenotypes of target individuals based on genome
//! information shared by individuals **or their relatives**" (§1.4, the
//! Lacks-family motivation). This module realizes that capability by
//! replicating the SNP-trait factor graph per family member and connecting
//! relatives' genotype variables at each locus with Mendelian-transmission
//! factors:
//!
//! `P(child | parent)` marginalizes the unobserved second parent through
//! the population allele frequency `f` (the association's control-group
//! RAF), giving the 3×3 table
//! `T[p][c] = Σ_{passed} P(pass | p) · P(other allele | f)`.

use crate::bp::{BpConfig, BpResult};
use crate::catalog::GwasCatalog;
use crate::factor_graph::{Evidence, FactorGraph};
use crate::model::{SnpId, TraitId};
use ppdp_errors::{ensure, Result};

/// A nuclear/extended family: per-member released evidence plus
/// parent-child relations (indices into `members`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Family {
    /// Each member's released SNPs/traits (may be empty for the victim).
    pub members: Vec<Evidence>,
    /// `(parent, child)` pairs, both indices into `members`.
    pub parent_child: Vec<(usize, usize)>,
}

impl Family {
    /// Starts an empty family.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a member; returns their index.
    pub fn member(&mut self, evidence: Evidence) -> usize {
        self.members.push(evidence);
        self.members.len() - 1
    }

    /// Declares `parent` to be a biological parent of `child`.
    ///
    /// # Panics
    /// Panics on unknown indices or a self-relation.
    pub fn relate(&mut self, parent: usize, child: usize) {
        assert!(
            parent < self.members.len() && child < self.members.len(),
            "unknown member"
        );
        assert_ne!(parent, child, "a member cannot parent themselves");
        self.parent_child.push((parent, child));
    }
}

/// Maps `(member, global id)` to the local variable indices of the compiled
/// family factor graph.
#[derive(Debug, Clone)]
pub struct FamilyIndex {
    /// Number of SNP variables per member (the per-member stride).
    snps_per_member: usize,
    /// Number of trait variables per member.
    traits_per_member: usize,
    /// The per-member template ids (identical for every member).
    snp_ids: Vec<SnpId>,
    trait_ids: Vec<TraitId>,
}

impl FamilyIndex {
    /// Local SNP-variable index of `(member, snp)`, if the SNP is
    /// materialized.
    pub fn snp(&self, member: usize, snp: SnpId) -> Option<usize> {
        self.snp_ids
            .iter()
            .position(|&x| x == snp)
            .map(|i| member * self.snps_per_member + i)
    }

    /// Local trait-variable index of `(member, trait)`.
    pub fn trait_(&self, member: usize, t: TraitId) -> Option<usize> {
        self.trait_ids
            .iter()
            .position(|&x| x == t)
            .map(|i| member * self.traits_per_member + i)
    }
}

/// Mendelian transmission table `T[parent][child]` with the second parent
/// marginalized through population risk-allele frequency `f`.
pub fn transmission_table(f: f64) -> [[f64; 3]; 3] {
    assert!((0.0..=1.0).contains(&f), "allele frequency out of range");
    // Probability the parent passes the risk allele, by parent genotype
    // (rr, rρ, ρρ).
    let pass = [1.0, 0.5, 0.0];
    let mut table = [[0.0; 3]; 3];
    for (p, &pr) in pass.iter().enumerate() {
        // child = (passed allele, population allele):
        // rr  needs passed r AND population r;
        // ρρ  needs passed ρ AND population ρ;
        // rρ  is everything else.
        table[p][0] = pr * f;
        table[p][2] = (1.0 - pr) * (1.0 - f);
        table[p][1] = 1.0 - table[p][0] - table[p][2];
    }
    table
}

/// Compiles a family into one factor graph: each member gets a full copy of
/// the catalog's SNP-trait graph (with their own evidence clamped), and
/// each `(parent, child)` relation adds one transmission factor per locus.
///
/// Returns the graph and the index for locating per-member variables.
///
/// This is the validation boundary for family data: an empty family,
/// dangling or self-referential `parent_child` relations (the fields are
/// public and may have bypassed [`Family::relate`]), and member evidence
/// referencing loci/traits outside the catalog are all rejected with an
/// error naming the offending record.
///
/// # Errors
/// [`ppdp_errors::PpdpError::InvalidInput`].
pub fn build_family_graph(
    catalog: &GwasCatalog,
    family: &Family,
) -> Result<(FactorGraph, FamilyIndex)> {
    ensure(
        !family.members.is_empty(),
        "family needs at least one member",
    )?;
    for (i, &(p, c)) in family.parent_child.iter().enumerate() {
        ensure(
            p < family.members.len() && c < family.members.len(),
            format!(
                "relation {i} ({p}, {c}) dangles: family has {} members",
                family.members.len()
            ),
        )?;
        ensure(
            p != c,
            format!("relation {i}: member {p} parents themselves"),
        )?;
    }
    for (m, ev) in family.members.iter().enumerate() {
        for s in ev.snps.keys() {
            ensure(
                s.0 < catalog.n_snps(),
                format!("member {m} evidence references unknown SNP {s}"),
            )?;
        }
        for tr in ev.traits.keys() {
            ensure(
                tr.0 < catalog.n_traits(),
                format!("member {m} evidence references unknown trait {tr}"),
            )?;
        }
    }
    let template = FactorGraph::build(catalog, &Evidence::none())?;
    let m = family.members.len();
    let (ns, nt) = (template.n_snps(), template.n_traits());

    let mut snp_ids = Vec::with_capacity(ns * m);
    let mut trait_ids = Vec::with_capacity(nt * m);
    let mut trait_prior = Vec::with_capacity(nt * m);
    let mut snp_evidence = Vec::with_capacity(ns * m);
    let mut trait_evidence = Vec::with_capacity(nt * m);
    let mut factors = Vec::with_capacity(template.factors.len() * m);

    for (member, evidence) in family.members.iter().enumerate() {
        let (s_off, t_off) = (member * ns, member * nt);
        snp_ids.extend_from_slice(&template.snp_ids);
        trait_ids.extend_from_slice(&template.trait_ids);
        trait_prior.extend_from_slice(&template.trait_prior);
        snp_evidence.extend(
            template
                .snp_ids
                .iter()
                .map(|s| evidence.snps.get(s).map(|x| x.index())),
        );
        trait_evidence.extend(
            template
                .trait_ids
                .iter()
                .map(|t| evidence.traits.get(t).copied()),
        );
        factors.extend(
            template
                .factors
                .iter()
                .map(|f| crate::factor_graph::Factor {
                    snp: f.snp + s_off,
                    trait_idx: f.trait_idx + t_off,
                    table: f.table,
                }),
        );
    }
    let mut g = FactorGraph::from_parts(
        snp_ids,
        trait_ids,
        trait_prior,
        snp_evidence,
        trait_evidence,
        factors,
    )?;

    // One transmission factor per relation per materialized locus, using
    // the locus's first-association control RAF as the population
    // frequency. The raw transmission table is divided by the HWE
    // population prior: the child's association factor already supplies a
    // generative genotype distribution, so the kin factor must contribute
    // only the *likelihood ratio* `P(c | parent) / P_pop(c)` — otherwise
    // the population base rate is counted twice (product-of-experts) and a
    // risk-homozygous parent would paradoxically not raise the child's
    // P(rr).
    let mut kin_batch = Vec::with_capacity(family.parent_child.len() * ns);
    for &(parent, child) in &family.parent_child {
        for (i, &snp) in template.snp_ids.iter().enumerate() {
            let f = catalog
                .associations_of_snp(snp)
                .next()
                .map(|a| a.raf_control)
                .unwrap_or(0.5);
            let raw = transmission_table(f);
            let hwe = [f * f, 2.0 * f * (1.0 - f), (1.0 - f) * (1.0 - f)];
            let mut table = [[0.0; 3]; 3];
            for (p_row, raw_row) in table.iter_mut().zip(&raw) {
                for c in 0..3 {
                    p_row[c] = if hwe[c] > 0.0 {
                        raw_row[c] / hwe[c]
                    } else {
                        0.0
                    };
                }
            }
            kin_batch.push((parent * ns + i, child * ns + i, table));
        }
    }
    g.add_kin_factors(kin_batch)?;

    let index = FamilyIndex {
        snps_per_member: ns,
        traits_per_member: nt,
        snp_ids: template.snp_ids,
        trait_ids: template.trait_ids,
    };
    Ok((g, index))
}

/// Runs the kin inference attack: builds the family graph, runs belief
/// propagation, and returns the marginals (index them with the returned
/// [`FamilyIndex`]).
///
/// # Errors
/// Propagates [`build_family_graph`] validation failures.
pub fn kin_attack(
    catalog: &GwasCatalog,
    family: &Family,
    cfg: BpConfig,
) -> Result<(BpResult, FamilyIndex)> {
    let (g, index) = build_family_graph(catalog, family)?;
    Ok((cfg.run(&g), index))
}

/// A protection target inside a family: `(member, variable)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KinTarget {
    /// A member's unreleased SNP.
    Snp(usize, SnpId),
    /// A member's unreleased trait.
    Trait(usize, TraitId),
}

/// Outcome of a kin-aware sanitization run.
#[derive(Debug, Clone, PartialEq)]
pub struct KinSanitizeOutcome {
    /// SNPs the releaser must withhold, in greedy order.
    pub withheld: Vec<SnpId>,
    /// Minimum target privacy level after each withholding
    /// (`history[0]` = before any).
    pub history: Vec<f64>,
    /// Whether every target reached `δ`.
    pub satisfied: bool,
}

/// Kin-aware GPUT: greedily withholds SNPs from `releaser`'s evidence until
/// every target (typically a *relative*'s traits) reaches `δ` privacy —
/// privacy being measured as in
/// [`crate::sanitize::Predictor::target_privacy_levels`]: distance of the
/// BP posterior from the all-SNPs-hidden baseline.
///
/// This answers the consent question §5.1 raises: which parts of *my*
/// genome must I keep private so that publishing the rest does not expose
/// *my family*?
///
/// # Errors
/// [`ppdp_errors::PpdpError::InvalidInput`] on an unknown releaser or a
/// family/catalog pair that fails [`build_family_graph`] validation;
/// [`ppdp_errors::PpdpError::Numerical`] when the privacy objective turns
/// NaN mid-search.
pub fn kin_greedy_sanitize(
    catalog: &GwasCatalog,
    family: &Family,
    releaser: usize,
    targets: &[KinTarget],
    delta: f64,
    max_withheld: usize,
    cfg: BpConfig,
) -> Result<KinSanitizeOutcome> {
    ensure(
        releaser < family.members.len(),
        format!(
            "unknown releaser {releaser}: family has {} members",
            family.members.len()
        ),
    )?;
    let candidates: Vec<SnpId> = {
        let mut c: Vec<SnpId> = family.members[releaser].snps.keys().copied().collect();
        c.sort_unstable();
        c
    };

    let levels = |withheld: &[usize]| -> Result<Vec<f64>> {
        let mut fam = family.clone();
        for &i in withheld {
            fam.members[releaser].snps.remove(&candidates[i]);
        }
        // Baseline: every member's SNP evidence hidden.
        let mut base_fam = fam.clone();
        for m in &mut base_fam.members {
            m.snps.clear();
        }
        let (post, idx) = kin_attack(catalog, &fam, cfg)?;
        let (base, idx0) = kin_attack(catalog, &base_fam, cfg)?;
        Ok(targets
            .iter()
            .map(|t| {
                let (p, b) = match *t {
                    KinTarget::Snp(m, s) => (
                        idx.snp(m, s).map(|i| post.snp_marginals[i].to_vec()),
                        idx0.snp(m, s).map(|i| base.snp_marginals[i].to_vec()),
                    ),
                    KinTarget::Trait(m, t) => (
                        idx.trait_(m, t).map(|i| post.trait_marginals[i].to_vec()),
                        idx0.trait_(m, t).map(|i| base.trait_marginals[i].to_vec()),
                    ),
                };
                match (p, b) {
                    (Some(p), Some(b)) => {
                        let tv = 0.5 * p.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum::<f64>();
                        (1.0 - tv).clamp(0.0, 1.0)
                    }
                    _ => 1.0,
                }
            })
            .collect())
    };
    let min_level =
        |w: &[usize]| -> Result<f64> { Ok(levels(w)?.into_iter().fold(f64::INFINITY, f64::min)) };
    // NaN signals a failure to `greedy_cardinality`'s checked evaluation,
    // which converts it back into a typed `Numerical` error.
    let sum_level = |w: &[usize]| -> f64 { levels(w).map(|v| v.iter().sum()).unwrap_or(f64::NAN) };

    let order = ppdp_opt::greedy_cardinality(
        candidates.len(),
        max_withheld.min(candidates.len()),
        |sel| sum_level(sel),
    )?;

    let mut history = vec![min_level(&[])?];
    let mut taken: Vec<usize> = Vec::new();
    let mut satisfied = history[0] >= delta;
    for &i in &order {
        if satisfied {
            break;
        }
        taken.push(i);
        let h = min_level(&taken)?;
        history.push(h);
        satisfied = h >= delta;
    }
    Ok(KinSanitizeOutcome {
        withheld: taken.into_iter().map(|i| candidates[i]).collect(),
        history,
        satisfied,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive_marginals;
    use crate::model::Genotype;

    /// Two independent single-SNP traits — per-member graphs are forests,
    /// and kin edges keep them forests.
    fn small_catalog() -> GwasCatalog {
        let mut c = GwasCatalog::new(2);
        let t0 = c.add_trait("d0", 0.1);
        let t1 = c.add_trait("d1", 0.2);
        c.associate(SnpId(0), t0, 2.0, 0.3);
        c.associate(SnpId(1), t1, 1.5, 0.4);
        c
    }

    #[test]
    fn transmission_table_rows_normalize() {
        for f in [0.1, 0.5, 0.9] {
            let t = transmission_table(f);
            for row in t {
                assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            }
            // A ρρ parent can never produce an rr child.
            assert_eq!(t[2][0], 0.0);
            // An rr parent can never produce a ρρ child.
            assert_eq!(t[0][2], 0.0);
        }
    }

    #[test]
    fn parent_genotype_shifts_child_marginal() {
        let cat = small_catalog();
        // Parent released rr at SNP 0; child released nothing.
        let mut fam = Family::new();
        let parent = fam.member(Evidence::none().with_snp(SnpId(0), Genotype::HomRisk));
        let child = fam.member(Evidence::none());
        fam.relate(parent, child);
        let (r, idx) = kin_attack(&cat, &fam, BpConfig::default()).unwrap();

        // Baseline: the same child with an uninformative (unrelated) parent.
        let mut fam0 = Family::new();
        let _ = fam0.member(Evidence::none());
        let (r0, idx0) = kin_attack(&cat, &fam0, BpConfig::default()).unwrap();

        let c_s0 = idx.snp(child, SnpId(0)).unwrap();
        let b_s0 = idx0.snp(0, SnpId(0)).unwrap();
        assert!(
            r.snp_marginals[c_s0][0] > r0.snp_marginals[b_s0][0],
            "rr parent must raise child's P(rr): {:?} vs {:?}",
            r.snp_marginals[c_s0],
            r0.snp_marginals[b_s0]
        );
        // The unrelated locus is only perturbed marginally: the likelihood-
        // ratio kin factor reshapes the joint measure slightly even without
        // evidence, but no information flows, so the shift stays small.
        let c_s1 = idx.snp(child, SnpId(1)).unwrap();
        let b_s1 = idx0.snp(0, SnpId(1)).unwrap();
        for i in 0..3 {
            assert!(
                (r.snp_marginals[c_s1][i] - r0.snp_marginals[b_s1][i]).abs() < 0.05,
                "{:?} vs {:?}",
                r.snp_marginals[c_s1],
                r0.snp_marginals[b_s1]
            );
        }
    }

    #[test]
    fn child_evidence_propagates_to_parent_trait() {
        // Releasing the child's genome threatens the *parent's* phenotype
        // privacy — the kin-privacy threat of §5.1.
        let cat = small_catalog();
        let mut fam = Family::new();
        let parent = fam.member(Evidence::none());
        let child = fam.member(Evidence::none().with_snp(SnpId(0), Genotype::HomRisk));
        fam.relate(parent, child);
        let (r, idx) = kin_attack(&cat, &fam, BpConfig::default()).unwrap();
        let p_t0 = idx.trait_(parent, TraitId(0)).unwrap();
        let prior = cat.trait_info(TraitId(0)).prevalence;
        assert!(
            r.trait_marginals[p_t0][1] > prior,
            "child's rr raises P(parent has d0): {} vs prior {prior}",
            r.trait_marginals[p_t0][1]
        );
    }

    #[test]
    fn family_bp_matches_exhaustive_on_forest() {
        let cat = small_catalog();
        let mut fam = Family::new();
        let parent = fam.member(Evidence::none().with_snp(SnpId(0), Genotype::Het));
        let child = fam.member(Evidence::none().with_trait(TraitId(1), true));
        fam.relate(parent, child);
        let (g, _) = build_family_graph(&cat, &fam).unwrap();
        assert!(g.is_forest());
        let bp = BpConfig::default().run(&g);
        let ex = exhaustive_marginals(&g);
        for (a, b) in bp.snp_marginals.iter().zip(&ex.snp_marginals) {
            for i in 0..3 {
                assert!((a[i] - b[i]).abs() < 1e-7, "{a:?} vs {b:?}");
            }
        }
        for (a, b) in bp.trait_marginals.iter().zip(&ex.trait_marginals) {
            assert!((a[1] - b[1]).abs() < 1e-7, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn three_generation_chain_attenuates() {
        // Grandparent rr → parent → child: the signal weakens with each
        // meiosis but stays above baseline.
        let cat = small_catalog();
        let mut fam = Family::new();
        let gp = fam.member(Evidence::none().with_snp(SnpId(0), Genotype::HomRisk));
        let parent = fam.member(Evidence::none());
        let child = fam.member(Evidence::none());
        fam.relate(gp, parent);
        fam.relate(parent, child);
        let (r, idx) = kin_attack(&cat, &fam, BpConfig::default()).unwrap();
        let p_rr = r.snp_marginals[idx.snp(parent, SnpId(0)).unwrap()][0];
        let c_rr = r.snp_marginals[idx.snp(child, SnpId(0)).unwrap()][0];

        let mut lone = Family::new();
        let solo = lone.member(Evidence::none());
        let (r0, idx0) = kin_attack(&cat, &lone, BpConfig::default()).unwrap();
        let base_rr = r0.snp_marginals[idx0.snp(solo, SnpId(0)).unwrap()][0];

        assert!(p_rr > c_rr, "parent closer to evidence: {p_rr} vs {c_rr}");
        assert!(
            c_rr > base_rr,
            "grandchild still above baseline: {c_rr} vs {base_rr}"
        );
    }

    #[test]
    #[should_panic(expected = "cannot parent themselves")]
    fn self_relation_rejected() {
        let mut fam = Family::new();
        let a = fam.member(Evidence::none());
        fam.relate(a, a);
    }

    #[test]
    fn corrupted_family_rejected_with_named_record() {
        let cat = small_catalog();
        // Dangling relation pushed past `relate`'s checks (public field).
        let mut fam = Family::new();
        fam.member(Evidence::none());
        fam.parent_child.push((0, 7));
        let e = build_family_graph(&cat, &fam).unwrap_err();
        assert!(e.to_string().contains("relation 0"), "{e}");

        // Empty family.
        assert!(build_family_graph(&cat, &Family::new()).is_err());

        // Evidence referencing a locus outside the catalog.
        let mut fam = Family::new();
        fam.member(Evidence::none().with_snp(SnpId(42), Genotype::Het));
        let e = build_family_graph(&cat, &fam).unwrap_err();
        assert!(e.to_string().contains("member 0"), "{e}");

        // Unknown releaser index.
        let mut fam = Family::new();
        fam.member(Evidence::none());
        let e = kin_greedy_sanitize(&cat, &fam, 3, &[], 0.5, 1, BpConfig::default()).unwrap_err();
        assert!(e.to_string().contains("releaser 3"), "{e}");
    }

    #[test]
    fn kin_sanitize_protects_the_relative() {
        let cat = small_catalog();
        let mut fam = Family::new();
        let parent = fam.member(
            Evidence::none()
                .with_snp(SnpId(0), Genotype::HomRisk)
                .with_snp(SnpId(1), Genotype::HomRisk),
        );
        let child = fam.member(Evidence::none());
        fam.relate(parent, child);
        let targets = [
            KinTarget::Trait(child, TraitId(0)),
            KinTarget::Trait(child, TraitId(1)),
        ];
        let out = kin_greedy_sanitize(&cat, &fam, parent, &targets, 0.99, 4, BpConfig::default())
            .unwrap();
        assert!(
            out.satisfied,
            "withholding everything must protect the child: {out:?}"
        );
        for w in out.history.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "privacy trajectory monotone: {:?}",
                out.history
            );
        }
        assert!(!out.withheld.is_empty());
    }

    #[test]
    fn kin_sanitize_noop_when_target_already_private() {
        let cat = small_catalog();
        let mut fam = Family::new();
        let releaser = fam.member(Evidence::none().with_snp(SnpId(0), Genotype::Het));
        // No relation: the other member is untouched by the release.
        let bystander = fam.member(Evidence::none());
        let out = kin_greedy_sanitize(
            &cat,
            &fam,
            releaser,
            &[KinTarget::Trait(bystander, TraitId(0))],
            0.99,
            4,
            BpConfig::default(),
        )
        .unwrap();
        assert!(out.satisfied);
        assert!(
            out.withheld.is_empty(),
            "no kinship edge, nothing leaks: {out:?}"
        );
    }
}
