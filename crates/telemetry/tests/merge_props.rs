//! Property tests for the aggregate merge operators.
//!
//! Worker recorders merge into the coordinator in whatever order threads
//! finish, so every statistic the equivalence harness compares must be
//! independent of merge order. These properties pin that contract for
//! [`SpanStats::merge`] and [`Histogram::merge`]: merging A into B and B
//! into A agree on every order-independent projection (`count`, `min`,
//! `max`, totals, buckets, quantiles), and merging matches recording the
//! concatenated sample stream directly. `Histogram::last` is explicitly
//! order-*dependent* (it tracks the most recent sample) and is excluded —
//! the equivalence view zeroes it for the same reason.

//!
//! The live-metrics registry (`ppdp-metrics`) has the same obligation
//! one layer down: per-thread shards merge into a snapshot in shard
//! order, which is unrelated to the order values arrived, so the merged
//! histogram must not depend on how the sample stream was partitioned
//! across threads. The `registry_*` properties below pin that.

use ppdp_telemetry::{Histogram, SpanStats};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serialises properties that install the process-global metrics
/// registry (the test harness runs properties on parallel threads).
static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

/// Records `chunks` into a fresh registry — one OS thread per chunk,
/// all racing into the sharded histogram — and returns the merged view.
fn record_partitioned(chunks: Vec<Vec<f64>>) -> ppdp_metrics::HistSnapshot {
    let guard = REGISTRY_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let registry = ppdp_metrics::Registry::new();
    let prev = ppdp_metrics::install_global(registry.clone());
    #[allow(clippy::disallowed_methods)] // raw threads are the point: shard-per-thread racing
    let handles: Vec<_> = chunks
        .into_iter()
        .map(|chunk| {
            std::thread::spawn(move || {
                ppdp_metrics::register_thread();
                for v in chunk {
                    ppdp_metrics::observe("merge.props.hist", v);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("recorder thread panicked");
    }
    ppdp_metrics::uninstall_global();
    if let Some(prev) = prev {
        ppdp_metrics::install_global(prev);
    }
    drop(guard);
    registry
        .snapshot_shards_only()
        .histograms
        .get("merge.props.hist")
        .cloned()
        .expect("histogram was recorded")
}

/// Order-independent projection of a registry histogram: everything
/// except `sum`, which is compared approximately (float associativity).
fn registry_view(h: &ppdp_metrics::HistSnapshot) -> (u64, u64, u64, Vec<u64>) {
    (
        h.count,
        h.min.to_bits(),
        h.max.to_bits(),
        h.buckets.to_vec(),
    )
}

fn histogram_of(samples: &[f64]) -> Histogram {
    let mut h = Histogram::default();
    for &v in samples {
        h.record(v);
    }
    h
}

fn span_stats_of(samples: &[u64]) -> SpanStats {
    let mut s = SpanStats::default();
    for &v in samples {
        s.record(v);
    }
    s
}

/// The order-independent projection of a histogram: everything except
/// `sum` (compared approximately below) and `last` (order-dependent by
/// design).
fn histogram_view(h: &Histogram) -> (u64, u64, u64, Vec<u64>, [u64; 3]) {
    (
        h.count,
        h.min.to_bits(),
        h.max.to_bits(),
        h.buckets.clone(),
        [
            h.quantile(0.0).to_bits(),
            h.quantile(0.5).to_bits(),
            h.quantile(1.0).to_bits(),
        ],
    )
}

proptest! {
    #[test]
    fn histogram_merge_is_order_independent(
        a in prop::collection::vec(1e-6f64..1e6, 0..40),
        b in prop::collection::vec(1e-6f64..1e6, 0..40),
    ) {
        let (ha, hb) = (histogram_of(&a), histogram_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);

        // Both merge orders agree exactly on every order-independent stat.
        prop_assert_eq!(histogram_view(&ab), histogram_view(&ba));
        // `sum` adds the same two partial sums either way — bitwise equal.
        prop_assert_eq!(ab.sum.to_bits(), ba.sum.to_bits());

        // Merging equals recording the concatenated stream (sum only up to
        // float associativity).
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let direct = histogram_of(&all);
        prop_assert_eq!(histogram_view(&ab), histogram_view(&direct));
        let scale = direct.sum.abs().max(1.0);
        prop_assert!((ab.sum - direct.sum).abs() <= 1e-9 * scale);
    }

    #[test]
    fn histogram_merge_with_empty_is_identity(
        a in prop::collection::vec(1e-6f64..1e6, 0..40),
    ) {
        let h = histogram_of(&a);
        let mut left = Histogram::default();
        left.merge(&h);
        let mut right = h.clone();
        right.merge(&Histogram::default());
        prop_assert_eq!(&left, &h);
        prop_assert_eq!(&right, &h);
    }

    #[test]
    fn span_stats_merge_is_order_independent(
        a in prop::collection::vec(0u64..1_000_000_000, 0..40),
        b in prop::collection::vec(0u64..1_000_000_000, 0..40),
    ) {
        let (sa, sb) = (span_stats_of(&a), span_stats_of(&b));
        let mut ab = sa;
        ab.merge(&sb);
        let mut ba = sb;
        ba.merge(&sa);

        // Every SpanStats field is a sum, min or max — merge order can
        // never change any of them.
        prop_assert_eq!(ab, ba);

        // And merging equals recording the concatenated stream exactly
        // (u64 addition is associative).
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(ab, span_stats_of(&all));
    }

    #[test]
    fn span_stats_merge_with_empty_is_identity(
        a in prop::collection::vec(0u64..1_000_000_000, 0..40),
    ) {
        let s = span_stats_of(&a);
        let mut left = SpanStats::default();
        left.merge(&s);
        let mut right = s;
        right.merge(&SpanStats::default());
        prop_assert_eq!(left, s);
        prop_assert_eq!(right, s);
    }

    /// Registry shard merging is partition-invariant: splitting one
    /// sample stream across racing threads (in either chunk order)
    /// yields the same merged histogram as recording it on one thread.
    #[test]
    fn registry_histogram_merge_is_partition_invariant(
        samples in prop::collection::vec(1e-6f64..1e6, 1..48),
        cut_a in 0usize..48,
        cut_b in 0usize..48,
    ) {
        let split = |cut: usize| -> Vec<Vec<f64>> {
            let cut = cut % samples.len().max(1);
            vec![samples[..cut].to_vec(), samples[cut..].to_vec()]
        };
        let whole = record_partitioned(vec![samples.clone()]);
        let two = record_partitioned(split(cut_a));
        let mut reversed = split(cut_b);
        reversed.reverse();
        let other = record_partitioned(reversed);

        prop_assert_eq!(registry_view(&whole), registry_view(&two));
        prop_assert_eq!(registry_view(&whole), registry_view(&other));
        let scale = whole.sum.abs().max(1.0);
        prop_assert!((two.sum - whole.sum).abs() <= 1e-9 * scale);
        prop_assert!((other.sum - whole.sum).abs() <= 1e-9 * scale);
    }

    /// The registry's decade buckets agree with the telemetry
    /// `Histogram` layout sample-for-sample, so a run report and a live
    /// scrape of the same stream always tell the same story.
    #[test]
    fn registry_buckets_match_telemetry_histogram(
        samples in prop::collection::vec(1e-6f64..1e6, 1..48),
    ) {
        let live = record_partitioned(vec![samples.clone()]);
        let report = histogram_of(&samples);
        prop_assert_eq!(live.count, report.count);
        prop_assert_eq!(&live.buckets, &report.buckets);
    }
}
