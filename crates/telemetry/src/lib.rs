//! `ppdp-telemetry`: structured run reports, convergence and
//! privacy-budget instrumentation for the ppdp workspace.
//!
//! The crate provides hierarchical wall-clock [`span`]s, monotonic
//! [`counter`]s, [`value`] histograms and privacy-[`budget_draw`]
//! records, aggregated into a serde-serializable [`RunReport`].
//!
//! Recording is routed through [`Recorder`]s that can be installed
//! globally ([`install_global`]) or scoped to the current thread
//! ([`Recorder::enter`]). When no recorder is active, every
//! instrumentation call is a single relaxed atomic load — instrumented
//! hot loops cost ~nothing when telemetry is disabled.
//!
//! When a `ppdp-trace` collector is active, every primitive here also
//! forwards a structured event to it (span enter/exit with causal
//! parent keys, counters, histogram samples, budget draws with
//! call-site provenance, degradations), so the entire existing
//! instrumentation surface shows up in traces without extra wiring.
//!
//! Likewise, when a `ppdp-metrics` live registry is installed (see
//! [`ppdp_metrics::install_global`] / `PPDP_METRICS=1`), every primitive
//! tees into it: counters and histograms become live series, spans
//! become `span.<path>.seconds` histograms plus `span.<path>.calls`
//! counters with per-span allocation attribution, and ε-draws accumulate
//! into `budget.epsilon_spent`. The extra [`gauge`] and [`target`]
//! primitives are live-only (run reports have no last-write-wins
//! concept) and power mid-run progress/ETA derivation.
//!
//! ```
//! use ppdp_telemetry::Recorder;
//!
//! let rec = Recorder::new();
//! {
//!     let _scope = rec.enter();
//!     let _span = ppdp_telemetry::span("demo.outer");
//!     ppdp_telemetry::counter("demo.iterations", 3);
//!     ppdp_telemetry::value("demo.residual", 1e-6);
//! }
//! let report = rec.take();
//! assert_eq!(report.counter("demo.iterations"), 3);
//! assert!(report.span("demo.outer").is_some());
//! ```

mod report;

pub use report::{
    fmt_nanos, status_line, BudgetDraw, Histogram, RunReport, SpanStats, HISTOGRAM_BUCKETS,
};

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Number of currently active recorders (global + all scoped), used as
/// the lock-free fast path: instrumentation is a no-op while this is 0.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// The process-wide recorder, if one is installed.
static GLOBAL: Mutex<Option<Recorder>> = Mutex::new(None);

thread_local! {
    /// Stack of recorders scoped to this thread via [`Recorder::enter`].
    static SCOPED: RefCell<Vec<Recorder>> = const { RefCell::new(Vec::new()) };
    /// Stack of open span names on this thread, joined with `/` to form
    /// the hierarchical span path.
    static SPAN_PATH: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Recovers the inner value from a possibly poisoned mutex; a panic in
/// one instrumented region must not disable telemetry everywhere else.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A thread-safe sink for telemetry events, accumulating a [`RunReport`].
///
/// Cloning is cheap and clones share the same underlying report.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Arc<Mutex<RunReport>>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Makes this recorder active on the current thread until the
    /// returned guard is dropped. Scopes nest: events reach every
    /// recorder on the stack (and the global one, if installed).
    #[must_use = "recording stops when the returned scope guard drops"]
    pub fn enter(&self) -> ScopedRecorder {
        SCOPED.with(|s| s.borrow_mut().push(self.clone()));
        ACTIVE.fetch_add(1, Ordering::Relaxed);
        ScopedRecorder {
            _not_send: PhantomData,
        }
    }

    /// Returns a copy of everything recorded so far.
    pub fn snapshot(&self) -> RunReport {
        relock(&self.inner).clone()
    }

    /// Drains the recorder, returning the accumulated report and
    /// leaving it empty.
    pub fn take(&self) -> RunReport {
        std::mem::take(&mut *relock(&self.inner))
    }

    fn record_span(&self, path: &str, nanos: u64) {
        relock(&self.inner)
            .spans
            .entry(path.to_owned())
            .or_default()
            .record(nanos);
    }

    fn record_counter(&self, name: &str, n: u64) {
        *relock(&self.inner)
            .counters
            .entry(name.to_owned())
            .or_insert(0) += n;
    }

    fn record_value(&self, name: &str, v: f64) {
        relock(&self.inner)
            .histograms
            .entry(name.to_owned())
            .or_default()
            .record(v);
    }

    fn record_budget_draw(&self, draw: &BudgetDraw) {
        relock(&self.inner).budget.push(draw.clone());
    }

    fn same_sink(&self, other: &Recorder) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// Guard returned by [`Recorder::enter`]; pops the recorder off the
/// thread-local scope stack when dropped. Deliberately `!Send` — the
/// guard must drop on the thread that created it.
#[derive(Debug)]
pub struct ScopedRecorder {
    _not_send: PhantomData<*const ()>,
}

impl Drop for ScopedRecorder {
    fn drop(&mut self) {
        SCOPED.with(|s| s.borrow_mut().pop());
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A snapshot of one thread's telemetry context — its scoped-recorder
/// stack and open span path — for propagation into worker threads.
///
/// The execution layer (`ppdp-exec`) captures the coordinating thread's
/// context before fanning out and [`activate`](ThreadContext::activate)s
/// it in each worker, so counters recorded inside parallel regions reach
/// the same scoped recorders they would have reached sequentially.
/// Workers should record *additive counters only*: histogram `sum`/`last`
/// and budget-draw ordering are record-order-dependent, so kernels keep
/// those on the coordinating thread to stay deterministic.
#[derive(Debug, Clone, Default)]
pub struct ThreadContext {
    recorders: Vec<Recorder>,
    span_path: Vec<&'static str>,
}

impl ThreadContext {
    /// Captures the calling thread's scoped-recorder stack and span path.
    pub fn capture() -> Self {
        Self {
            recorders: SCOPED.with(|s| s.borrow().clone()),
            span_path: SPAN_PATH.with(|p| p.borrow().clone()),
        }
    }

    /// Re-activates the captured context on the current (worker) thread
    /// until the returned guard drops. Spans opened by the worker nest
    /// under the captured span path, and events reach every captured
    /// recorder (plus the global one, deduplicated as usual).
    #[must_use = "the context deactivates when the returned guard drops"]
    pub fn activate(&self) -> ThreadContextGuard {
        let prev_path =
            SPAN_PATH.with(|p| std::mem::replace(&mut *p.borrow_mut(), self.span_path.clone()));
        SCOPED.with(|s| s.borrow_mut().extend(self.recorders.iter().cloned()));
        ACTIVE.fetch_add(self.recorders.len(), Ordering::Relaxed);
        ThreadContextGuard {
            pushed: self.recorders.len(),
            prev_path,
            _not_send: PhantomData,
        }
    }
}

/// Guard returned by [`ThreadContext::activate`]; restores the worker
/// thread's previous telemetry context when dropped. `!Send` — it must
/// drop on the thread that activated the context.
#[derive(Debug)]
pub struct ThreadContextGuard {
    pushed: usize,
    prev_path: Vec<&'static str>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for ThreadContextGuard {
    fn drop(&mut self) {
        SCOPED.with(|s| {
            let mut stack = s.borrow_mut();
            let keep = stack.len().saturating_sub(self.pushed);
            stack.truncate(keep);
        });
        ACTIVE.fetch_sub(self.pushed, Ordering::Relaxed);
        SPAN_PATH.with(|p| *p.borrow_mut() = std::mem::take(&mut self.prev_path));
    }
}

/// Installs `rec` as the process-wide recorder, returning the previous
/// one if any. Events reach the global recorder from every thread.
pub fn install_global(rec: Recorder) -> Option<Recorder> {
    let mut slot = relock(&GLOBAL);
    let prev = slot.replace(rec);
    if prev.is_none() {
        ACTIVE.fetch_add(1, Ordering::Relaxed);
    }
    prev
}

/// Removes the process-wide recorder, returning it if one was installed.
pub fn uninstall_global() -> Option<Recorder> {
    let mut slot = relock(&GLOBAL);
    let prev = slot.take();
    if prev.is_some() {
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
    prev
}

/// `true` when at least one recorder (scoped anywhere or global) is
/// active. A single relaxed atomic load — the no-op fast path.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) > 0
}

/// Dispatches one event to every recorder visible from this thread:
/// the thread's scope stack plus the global recorder, with duplicates
/// (the same sink both scoped and global) delivered once.
fn for_each_recorder(f: impl Fn(&Recorder)) {
    SCOPED.with(|s| {
        let stack = s.borrow();
        for (i, rec) in stack.iter().enumerate() {
            if stack[..i].iter().any(|r| r.same_sink(rec)) {
                continue;
            }
            f(rec);
        }
        if let Some(global) = relock(&GLOBAL).as_ref() {
            if !stack.iter().any(|r| r.same_sink(global)) {
                f(global);
            }
        }
    });
}

/// Adds `n` to the monotonic counter `name`. No-op when disabled.
#[inline]
pub fn counter(name: &str, n: u64) {
    ppdp_trace::counter_event(name, n);
    ppdp_metrics::counter(name, n);
    if !enabled() {
        return;
    }
    for_each_recorder(|r| r.record_counter(name, n));
}

/// Records sample `v` into the histogram `name`. No-op when disabled.
#[inline]
pub fn value(name: &str, v: f64) {
    ppdp_trace::value_event(name, v);
    ppdp_metrics::observe(name, v);
    if !enabled() {
        return;
    }
    for_each_recorder(|r| r.record_value(name, v));
}

/// Sets the live gauge `name` to `v` (last write wins across threads).
///
/// Gauges exist only in the live `ppdp-metrics` layer — a [`RunReport`]
/// is an end-of-run aggregate with no meaningful "current value", so
/// this records nothing when no live registry is installed. Kernels use
/// it for round/sweep positions (`bp.round`, `gibbs.sweep`) and
/// remaining-budget readouts that operators watch mid-run.
#[inline]
pub fn gauge(name: &str, v: f64) {
    ppdp_metrics::gauge_set(name, v);
}

/// Declares the completion target for `name` (live-only, like [`gauge`]):
/// the metrics heartbeat derives `progress.<name>`, `rate.<name>_per_s`
/// and `eta_seconds.<name>` from the counter or gauge `<name>` relative
/// to this total.
#[inline]
pub fn target(name: &str, total: f64) {
    ppdp_metrics::set_target(name, total);
}

/// Records one privacy-budget draw. No-op when disabled.
///
/// `#[track_caller]` propagates the *requesting* call site (e.g. the
/// `BudgetLedger::spend` caller inside a publish pipeline) into the
/// trace event's `call_site` field for per-draw provenance.
#[inline]
#[track_caller]
pub fn budget_draw(mechanism: &str, label: &str, epsilon: f64, delta: f64, sensitivity: f64) {
    if ppdp_trace::enabled() {
        let loc = std::panic::Location::caller();
        ppdp_trace::budget_draw_event(
            mechanism,
            label,
            epsilon,
            delta,
            sensitivity,
            &format!("{}:{}", loc.file(), loc.line()),
        );
    }
    if ppdp_metrics::enabled() {
        ppdp_metrics::counter("budget.draws", 1);
        ppdp_metrics::counter_f64("budget.epsilon_spent", epsilon);
        ppdp_metrics::counter_f64(&format!("budget.epsilon_spent.{mechanism}"), epsilon);
    }
    if !enabled() {
        return;
    }
    let draw = BudgetDraw {
        mechanism: mechanism.to_owned(),
        label: label.to_owned(),
        epsilon,
        delta,
        sensitivity,
    };
    for_each_recorder(|r| r.record_budget_draw(&draw));
}

/// Records one graceful-degradation event: `subsystem` fell back to a
/// weaker-but-safe strategy for `reason` (e.g. `degradation("bp",
/// "prior_fallback")` when belief propagation gives up and reports prior
/// marginals). Shows up in [`RunReport::counters`] as `degraded.<subsystem>`
/// and `degraded.<subsystem>.<reason>`, so operators can alert on any
/// degraded run without knowing every reason string. No-op when disabled.
#[inline]
pub fn degradation(subsystem: &str, reason: &str) {
    ppdp_trace::degradation_event(subsystem, reason);
    if ppdp_metrics::enabled() {
        ppdp_metrics::counter(&format!("degraded.{subsystem}"), 1);
        ppdp_metrics::counter(&format!("degraded.{subsystem}.{reason}"), 1);
    }
    if !enabled() {
        return;
    }
    for_each_recorder(|r| {
        r.record_counter(&format!("degraded.{subsystem}"), 1);
        r.record_counter(&format!("degraded.{subsystem}.{reason}"), 1);
    });
}

/// Opens a wall-clock span named `name`, nested under any spans already
/// open on this thread (paths join with `/`). The span records its
/// duration when the returned guard drops. No-op when disabled.
#[inline]
#[must_use = "the span measures until the returned guard drops"]
pub fn span(name: &'static str) -> Span {
    let telemetry = enabled();
    let tracing = ppdp_trace::enabled();
    let metrics = ppdp_metrics::enabled();
    if !telemetry && !tracing && !metrics {
        return Span { open: None };
    }
    let path = SPAN_PATH.with(|p| {
        let mut stack = p.borrow_mut();
        stack.push(name);
        stack.join("/")
    });
    let trace_key = if tracing {
        ppdp_trace::span_enter(name)
    } else {
        None
    };
    let alloc_scope = if metrics {
        Some(ppdp_metrics::alloc::AllocScope::enter(&path))
    } else {
        None
    };
    Span {
        open: Some(SpanOpen {
            start: Instant::now(),
            path,
            trace_key,
            telemetry,
            metrics,
            alloc_scope,
        }),
    }
}

/// State of one open span execution; see [`Span`].
#[derive(Debug)]
struct SpanOpen {
    start: Instant,
    path: String,
    /// Trace identity of this execution, when a collector was active at
    /// entry (exit is forwarded to the same collector scope).
    trace_key: Option<ppdp_trace::TraceKey>,
    /// Whether telemetry recorders were active at entry.
    telemetry: bool,
    /// Whether a live metrics registry was installed at entry.
    metrics: bool,
    /// Attributes this thread's allocations to the span path while open
    /// (inert unless the counting allocator is installed).
    alloc_scope: Option<ppdp_metrics::alloc::AllocScope>,
}

/// RAII guard for one execution of a wall-clock span; see [`span`].
#[derive(Debug)]
pub struct Span {
    open: Option<SpanOpen>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(mut open) = self.open.take() {
            let nanos = u64::try_from(open.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            // Close attribution before the tee below so the tee's own
            // formatting allocations are charged to the parent span.
            drop(open.alloc_scope.take());
            SPAN_PATH.with(|p| {
                p.borrow_mut().pop();
            });
            if let Some(key) = &open.trace_key {
                ppdp_trace::span_exit(key, &open.path, nanos);
            }
            if open.metrics {
                ppdp_metrics::observe_span(&open.path, nanos);
            }
            if open.telemetry {
                for_each_recorder(|r| r.record_span(&open.path, nanos));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_paths_record_nothing() {
        // No scoped recorder on this thread; even if another test has a
        // recorder active, nothing here can observe our events — but the
        // cheap sanity check is that the calls simply run.
        counter("lib.disabled.counter", 1);
        value("lib.disabled.value", 1.0);
        budget_draw("laplace", "x", 0.1, 0.0, 1.0);
        let _s = span("lib.disabled.span");
    }

    #[test]
    fn degradation_events_roll_up_per_subsystem_and_reason() {
        let rec = Recorder::new();
        {
            let _scope = rec.enter();
            degradation("bp", "prior_fallback");
            degradation("bp", "prior_fallback");
            degradation("ica", "nan_reset");
        }
        let report = rec.take();
        assert_eq!(report.counter("degraded.bp"), 2);
        assert_eq!(report.counter("degraded.bp.prior_fallback"), 2);
        assert_eq!(report.counter("degraded.ica"), 1);
        assert_eq!(
            report.degradations(),
            3,
            "reason rows are not double-counted"
        );
    }

    #[test]
    fn scoped_recorder_captures_counters_and_values() {
        let rec = Recorder::new();
        {
            let _scope = rec.enter();
            assert!(enabled());
            counter("lib.scoped.iters", 2);
            counter("lib.scoped.iters", 3);
            value("lib.scoped.residual", 0.5);
            value("lib.scoped.residual", 0.25);
            budget_draw("laplace", "h", 0.5, 0.0, 1.0);
        }
        let report = rec.take();
        assert_eq!(report.counter("lib.scoped.iters"), 5);
        let h = report
            .histogram("lib.scoped.residual")
            .expect("histogram recorded");
        assert_eq!(h.count, 2);
        assert_eq!(h.last, 0.25);
        assert_eq!(report.budget.len(), 1);
        assert!((report.total_epsilon() - 0.5).abs() < 1e-12);
        // Drained: a second take is empty.
        assert!(rec.take().is_empty());
    }

    #[test]
    fn spans_nest_and_timings_are_monotone() {
        let rec = Recorder::new();
        {
            let _scope = rec.enter();
            let _outer = span("outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = span("inner");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let report = rec.take();
        let outer = report.span("outer").expect("outer span recorded");
        let inner = report.span("outer/inner").expect("nested path recorded");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(
            outer.total_nanos >= inner.total_nanos,
            "parent ({}) must contain child ({})",
            outer.total_nanos,
            inner.total_nanos
        );
        assert!(inner.total_nanos > 0, "sleep makes duration nonzero");
        assert!(outer.min_nanos <= outer.max_nanos);
    }

    #[test]
    fn repeated_spans_aggregate_under_one_path() {
        let rec = Recorder::new();
        {
            let _scope = rec.enter();
            for _ in 0..3 {
                let _s = span("repeat");
            }
        }
        let report = rec.take();
        let s = report.span("repeat").expect("span recorded");
        assert_eq!(s.count, 3);
        assert!(s.min_nanos <= s.max_nanos);
        assert!(s.total_nanos >= s.max_nanos);
    }

    #[test]
    fn nested_scopes_both_observe_events() {
        let outer = Recorder::new();
        let inner = Recorder::new();
        {
            let _o = outer.enter();
            {
                let _i = inner.enter();
                counter("lib.nested.both", 1);
            }
            counter("lib.nested.outer_only", 1);
        }
        let outer_report = outer.take();
        let inner_report = inner.take();
        assert_eq!(outer_report.counter("lib.nested.both"), 1);
        assert_eq!(inner_report.counter("lib.nested.both"), 1);
        assert_eq!(outer_report.counter("lib.nested.outer_only"), 1);
        assert_eq!(inner_report.counter("lib.nested.outer_only"), 0);
    }

    #[test]
    fn same_recorder_scoped_twice_records_once() {
        let rec = Recorder::new();
        {
            let _a = rec.enter();
            let _b = rec.enter();
            counter("lib.dedup.once", 1);
        }
        assert_eq!(rec.take().counter("lib.dedup.once"), 1);
    }

    #[test]
    fn thread_context_carries_scoped_recorders_to_workers() {
        let rec = Recorder::new();
        {
            let _scope = rec.enter();
            let _outer = span("ctx.outer");
            let ctx = ThreadContext::capture();
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        let _guard = ctx.activate();
                        counter("ctx.worker.items", 2);
                        let _inner = span("ctx.inner");
                    });
                }
            });
        }
        let report = rec.take();
        assert_eq!(report.counter("ctx.worker.items"), 8);
        // Worker spans nest under the captured path.
        let inner = report
            .span("ctx.outer/ctx.inner")
            .expect("worker span nests under captured path");
        assert_eq!(inner.count, 4);
    }

    #[test]
    fn thread_context_guard_restores_previous_context() {
        let rec = Recorder::new();
        let ctx = {
            let _scope = rec.enter();
            ThreadContext::capture()
        };
        {
            let _guard = ctx.activate();
            assert!(enabled());
            counter("ctx.restored.inside", 1);
        }
        counter("ctx.restored.outside", 1);
        let report = rec.take();
        assert_eq!(report.counter("ctx.restored.inside"), 1);
        assert_eq!(
            report.counter("ctx.restored.outside"),
            0,
            "guard drop must deactivate the captured recorders"
        );
    }

    #[test]
    fn primitives_forward_structured_events_to_trace_collectors() {
        use ppdp_trace::{Collector, TraceEvent};
        let rec = Recorder::new();
        let col = Collector::new();
        {
            let _rscope = rec.enter();
            let _tscope = col.enter();
            let outer = span("fwd.outer");
            counter("fwd.count", 3);
            value("fwd.residual", 0.5);
            budget_draw("laplace", "fwd[0]", 0.25, 0.0, 1.0);
            degradation("fwd", "test_reason");
            drop(outer);
        }
        let report = rec.take();
        assert_eq!(report.counter("fwd.count"), 3);
        let trace = col.take();
        let kinds: Vec<&str> = trace.records.iter().map(|r| r.event.kind()).collect();
        assert_eq!(
            kinds,
            [
                "span_enter",
                "counter",
                "value",
                "budget_draw",
                "degradation",
                "span_exit"
            ]
        );
        // Budget draws carry this file's call site.
        assert!(trace.records.iter().any(|r| matches!(
            &r.event,
            TraceEvent::BudgetDraw { call_site, epsilon, .. }
                if call_site.contains("lib.rs") && *epsilon == 0.25
        )));
        // The degradation attaches to the open span's key.
        let span_key = trace.records[0].key.clone();
        assert!(trace.records.iter().any(|r| matches!(
            &r.event,
            TraceEvent::Degradation { span, .. } if span.as_ref() == Some(&span_key)
        )));
        // Span exits carry the telemetry path.
        assert!(trace.records.iter().any(|r| matches!(
            &r.event,
            TraceEvent::SpanExit { path, .. } if path == "fwd.outer"
        )));
    }

    #[test]
    fn trace_only_spans_still_nest_without_recorders() {
        use ppdp_trace::{Collector, TraceEvent};
        let col = Collector::new();
        {
            let _tscope = col.enter();
            let outer = span("traceonly.outer");
            {
                let _inner = span("traceonly.inner");
            }
            drop(outer);
        }
        let trace = col.take();
        assert!(trace.records.iter().any(|r| matches!(
            &r.event,
            TraceEvent::SpanExit { path, .. } if path == "traceonly.outer/traceonly.inner"
        )));
    }

    #[test]
    fn primitives_tee_into_live_metrics_registry() {
        // The only test in this binary that installs the process-global
        // metrics registry, so no cross-test interference on its names.
        let registry = ppdp_metrics::Registry::new();
        let prev = ppdp_metrics::install_global(registry.clone());
        {
            let outer = span("tee.outer");
            counter("tee.count", 4);
            value("tee.residual", 0.25);
            gauge("tee.position", 7.0);
            target("tee.position", 10.0);
            budget_draw("laplace", "tee[0]", 0.5, 0.0, 1.0);
            degradation("tee", "test_reason");
            drop(outer);
        }
        let snap = registry.snapshot_shards_only();
        match prev {
            Some(p) => {
                ppdp_metrics::install_global(p);
            }
            None => {
                ppdp_metrics::uninstall_global();
            }
        }
        assert_eq!(snap.counters.get("tee.count"), Some(&4));
        let h = snap
            .histograms
            .get("tee.residual")
            .expect("value() tees a histogram");
        assert_eq!(h.count, 1);
        assert_eq!(snap.gauges.get("tee.position"), Some(&7.0));
        assert_eq!(snap.gauges.get("target.tee.position"), Some(&10.0));
        assert_eq!(snap.counters.get("budget.draws"), Some(&1));
        let eps = snap
            .fcounters
            .get("budget.epsilon_spent")
            .expect("epsilon tee");
        assert!((eps - 0.5).abs() < 1e-12);
        assert_eq!(snap.counters.get("degraded.tee"), Some(&1));
        assert_eq!(snap.counters.get("degraded.tee.test_reason"), Some(&1));
        // Spans tee even with no recorder or collector active.
        assert_eq!(snap.counters.get("span.tee.outer.calls"), Some(&1));
        assert!(snap.histograms.contains_key("span.tee.outer.seconds"));
    }

    #[test]
    fn global_recorder_sees_events_from_spawned_threads() {
        // Unique metric names: other tests run in parallel and may also
        // have the global slot occupied at some point — we only assert
        // on names no other test uses, and restore the previous global.
        let rec = Recorder::new();
        let prev = install_global(rec.clone());
        counter("lib.global.main_thread", 1);
        // A raw OS thread on purpose: this test verifies the *global*
        // recorder is visible outside any `ppdp-exec` pool, so it must not
        // go through the structured layer the lint below funnels us into.
        #[allow(clippy::disallowed_methods)]
        std::thread::spawn(|| counter("lib.global.worker_thread", 2))
            .join()
            .expect("worker thread");
        let report = rec.snapshot();
        match prev {
            Some(p) => {
                install_global(p);
            }
            None => {
                uninstall_global();
            }
        }
        assert_eq!(report.counter("lib.global.main_thread"), 1);
        assert_eq!(report.counter("lib.global.worker_thread"), 2);
    }
}
