//! The serializable output of an instrumented run: aggregated span
//! timings, monotonic counters, value histograms and the privacy-budget
//! ledger, exportable as JSON (machine-readable trajectory files) or as a
//! pretty text table (human eyes, progress lines).

use ppdp_trace::json::JsonValue;
use std::collections::BTreeMap;

/// Number of logarithmic buckets kept per [`Histogram`]: half-open decades
/// `10^(i-12) ≤ v < 10^(i-11)`, clamped at both ends, so finite positive
/// values from 1e-12 up to 1e12 land in distinct buckets.
pub const HISTOGRAM_BUCKETS: usize = 24;

/// Aggregated wall-clock statistics for one span path.
///
/// Spans are keyed by their slash-joined nesting path (e.g.
/// `"social.publish/attack_before"`), and repeated executions of the same
/// path aggregate into one entry, so hot loops stay O(1) in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStats {
    /// Number of times the span was entered and exited.
    pub count: u64,
    /// Total wall-clock nanoseconds across all executions.
    pub total_nanos: u64,
    /// Fastest single execution (0 when `count == 0`).
    pub min_nanos: u64,
    /// Slowest single execution.
    pub max_nanos: u64,
}

impl SpanStats {
    /// Folds one execution of `nanos` wall-clock time into the stats.
    pub fn record(&mut self, nanos: u64) {
        if self.count == 0 {
            self.min_nanos = nanos;
            self.max_nanos = nanos;
        } else {
            self.min_nanos = self.min_nanos.min(nanos);
            self.max_nanos = self.max_nanos.max(nanos);
        }
        self.count += 1;
        self.total_nanos += nanos;
    }

    /// Mean nanoseconds per execution (0 when never executed).
    pub fn mean_nanos(&self) -> u64 {
        self.total_nanos.checked_div(self.count).unwrap_or(0)
    }

    /// Merges another aggregate into this one.
    pub fn merge(&mut self, other: &SpanStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.total_nanos += other.total_nanos;
        self.min_nanos = self.min_nanos.min(other.min_nanos);
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }

    fn to_value(self) -> JsonValue {
        JsonValue::Object(vec![
            ("count".into(), JsonValue::Num(self.count as f64)),
            (
                "total_nanos".into(),
                JsonValue::Num(self.total_nanos as f64),
            ),
            ("min_nanos".into(), JsonValue::Num(self.min_nanos as f64)),
            ("max_nanos".into(), JsonValue::Num(self.max_nanos as f64)),
        ])
    }

    fn from_value(v: &JsonValue) -> Result<Self, String> {
        Ok(Self {
            count: u64_field(v, "count")?,
            total_nanos: u64_field(v, "total_nanos")?,
            min_nanos: u64_field(v, "min_nanos")?,
            max_nanos: u64_field(v, "max_nanos")?,
        })
    }
}

/// A lightweight value histogram: summary statistics plus logarithmic
/// (decade) bucket counts. Non-finite samples are ignored; zero or
/// negative samples land in the lowest bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (0 when `count == 0`).
    pub min: f64,
    /// Largest sample (0 when `count == 0`).
    pub max: f64,
    /// Most recent sample (0 when `count == 0`).
    pub last: f64,
    /// Decade bucket counts; see [`HISTOGRAM_BUCKETS`].
    pub buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            last: 0.0,
            buckets: vec![0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// Folds one sample into the histogram. Non-finite values are dropped.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        self.last = v;
        if self.buckets.len() != HISTOGRAM_BUCKETS {
            self.buckets.resize(HISTOGRAM_BUCKETS, 0);
        }
        self.buckets[bucket_index(v)] += 1;
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate `p`-quantile (`0 ≤ p ≤ 1`) from the decade buckets:
    /// the upper edge of the first bucket whose cumulative count covers
    /// `p`, clamped into `[min, max]` (so `quantile(0.0)`/`quantile(1.0)`
    /// never escape the observed range). Decade-coarse by construction,
    /// but — unlike any exact streaming quantile — completely
    /// independent of recording and merge order.
    pub fn quantile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 1.0);
        let target = ((p * self.count as f64).ceil()).max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= target {
                // Upper edge of decade bucket i (see `bucket_index`).
                let upper = 10f64.powi(i as i32 - 11);
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.last = other.last;
        if self.buckets.len() != HISTOGRAM_BUCKETS {
            self.buckets.resize(HISTOGRAM_BUCKETS, 0);
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    fn to_value(&self) -> JsonValue {
        let buckets = self
            .buckets
            .iter()
            .map(|&b| JsonValue::Num(b as f64))
            .collect();
        JsonValue::Object(vec![
            ("count".into(), JsonValue::Num(self.count as f64)),
            ("sum".into(), JsonValue::Num(self.sum)),
            ("min".into(), JsonValue::Num(self.min)),
            ("max".into(), JsonValue::Num(self.max)),
            ("last".into(), JsonValue::Num(self.last)),
            ("buckets".into(), JsonValue::Array(buckets)),
        ])
    }

    fn from_value(v: &JsonValue) -> Result<Self, String> {
        let buckets = v
            .get("buckets")
            .and_then(JsonValue::as_array)
            .ok_or("histogram: missing \"buckets\" array")?
            .iter()
            .map(|b| b.as_u64().ok_or("histogram: non-integer bucket count"))
            .collect::<Result<Vec<u64>, &str>>()?;
        Ok(Self {
            count: u64_field(v, "count")?,
            sum: f64_field(v, "sum")?,
            min: f64_field(v, "min")?,
            max: f64_field(v, "max")?,
            last: f64_field(v, "last")?,
            buckets,
        })
    }
}

/// Decade bucket for a sample: `10^(i-12) ≤ v < 10^(i-11)`, clamped.
fn bucket_index(v: f64) -> usize {
    if v <= 0.0 {
        return 0;
    }
    let i = v.log10().floor() + 12.0;
    i.clamp(0.0, (HISTOGRAM_BUCKETS - 1) as f64) as usize
}

/// One draw against a privacy budget: which mechanism consumed how much
/// `(ε, δ)` at what sensitivity, and what it released.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetDraw {
    /// Mechanism name (`"laplace"`, `"exponential"`, `"geometric"`, …).
    pub mechanism: String,
    /// What was released (a free-form label such as `"cpd[3]"`).
    pub label: String,
    /// ε consumed by this draw.
    pub epsilon: f64,
    /// δ consumed by this draw (0 for pure-ε mechanisms).
    pub delta: f64,
    /// Query sensitivity the noise was calibrated against.
    pub sensitivity: f64,
}

impl BudgetDraw {
    fn to_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("mechanism".into(), JsonValue::Str(self.mechanism.clone())),
            ("label".into(), JsonValue::Str(self.label.clone())),
            ("epsilon".into(), JsonValue::Num(self.epsilon)),
            ("delta".into(), JsonValue::Num(self.delta)),
            ("sensitivity".into(), JsonValue::Num(self.sensitivity)),
        ])
    }

    fn from_value(v: &JsonValue) -> Result<Self, String> {
        Ok(Self {
            mechanism: str_field(v, "mechanism")?,
            label: str_field(v, "label")?,
            epsilon: f64_field(v, "epsilon")?,
            delta: f64_field(v, "delta")?,
            sensitivity: f64_field(v, "sensitivity")?,
        })
    }
}

// ---- JSON field extraction helpers (shared by the report sections) ----

fn object_field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [(String, JsonValue)], String> {
    v.get(key)
        .and_then(JsonValue::as_object)
        .ok_or_else(|| format!("missing {key:?} object"))
}

fn u64_field(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing or non-integer {key:?}"))
}

fn f64_field(v: &JsonValue, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing or non-numeric {key:?}"))
}

fn str_field(v: &JsonValue, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing or non-string {key:?}"))
}

/// The full structured report of one instrumented run.
///
/// Produced by draining a [`crate::Recorder`]; serializable as JSON
/// (via the dependency-free `ppdp_trace::json` writer, so it works in
/// offline builds) for machine-readable perf/privacy trajectories, and
/// renderable as a text table via [`RunReport::to_text`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Aggregated span timings keyed by slash-joined nesting path.
    pub spans: BTreeMap<String, SpanStats>,
    /// Monotonic counters keyed by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Value histograms keyed by metric name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Every privacy-budget draw, in the order it was recorded.
    pub budget: Vec<BudgetDraw>,
    /// Parallel-over-sequential wall-clock speedup factors keyed by
    /// region name (e.g. `"bp.run@4"` → 3.1), populated by benches and
    /// perf harnesses rather than by recorders. Excluded from
    /// [`RunReport::equivalence_view`] like all timing-derived data.
    /// Absent in older serialized reports, so parsing defaults it.
    pub speedup: BTreeMap<String, f64>,
}

impl RunReport {
    /// `true` when nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.histograms.is_empty()
            && self.budget.is_empty()
            && self.speedup.is_empty()
    }

    /// Value of a counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Span stats for a path, if recorded.
    pub fn span(&self, path: &str) -> Option<&SpanStats> {
        self.spans.get(path)
    }

    /// Histogram for a metric, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Total graceful-degradation events across all subsystems (the sum of
    /// every top-level `degraded.<subsystem>` counter recorded via
    /// `ppdp_telemetry::degradation`). Non-zero means some result in this
    /// run was produced by a fallback path and should be treated as
    /// lower-fidelity.
    pub fn degradations(&self) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| {
                // Top-level entries only: "degraded.bp", not "degraded.bp.reason".
                k.strip_prefix("degraded.")
                    .is_some_and(|rest| !rest.contains('.'))
            })
            .map(|(_, v)| *v)
            .sum()
    }

    /// Records one parallel-over-sequential speedup measurement.
    pub fn record_speedup(&mut self, region: &str, factor: f64) {
        self.speedup.insert(region.to_owned(), factor);
    }

    /// Effective worker-thread count of the run (the `exec.threads`
    /// counter recorded by publishers), 1 when never recorded.
    pub fn exec_threads(&self) -> u64 {
        self.counter("exec.threads").max(1)
    }

    /// The deterministic projection of the report used by the
    /// sequential-vs-parallel equivalence harness.
    ///
    /// Drops everything that legitimately differs across thread counts
    /// while keeping everything that must not:
    ///
    /// - span *timings* are zeroed (wall clock varies) but span *counts*
    ///   are kept — the same phases must run the same number of times;
    /// - histogram `sum` and `last` are zeroed: f64 addition is not
    ///   associative and workers may interleave recordings, so only
    ///   `count`/`min`/`max`/`buckets` are order-independent;
    /// - `exec.*` metrics (thread counts, per-phase wall-clock) and the
    ///   [`speedup`](RunReport::speedup) map are dropped entirely;
    /// - counters and the budget ledger pass through untouched — they
    ///   are additive or recorded on the coordinating thread in item
    ///   order, so any difference is a determinism bug.
    pub fn equivalence_view(&self) -> RunReport {
        let mut view = RunReport::default();
        for (path, stats) in &self.spans {
            if path.split('/').any(|seg| seg.starts_with("exec.")) {
                continue;
            }
            view.spans.insert(
                path.clone(),
                SpanStats {
                    count: stats.count,
                    total_nanos: 0,
                    min_nanos: 0,
                    max_nanos: 0,
                },
            );
        }
        for (name, v) in &self.counters {
            if name.starts_with("exec.") {
                continue;
            }
            view.counters.insert(name.clone(), *v);
        }
        for (name, h) in &self.histograms {
            if name.starts_with("exec.") {
                continue;
            }
            view.histograms.insert(
                name.clone(),
                Histogram {
                    count: h.count,
                    sum: 0.0,
                    min: h.min,
                    max: h.max,
                    last: 0.0,
                    buckets: h.buckets.clone(),
                },
            );
        }
        view.budget = self.budget.clone();
        view
    }

    /// Total ε across all budget draws (sequential composition).
    pub fn total_epsilon(&self) -> f64 {
        self.budget.iter().map(|d| d.epsilon).sum()
    }

    /// Total δ across all budget draws.
    pub fn total_delta(&self) -> f64 {
        self.budget.iter().map(|d| d.delta).sum()
    }

    /// ε totals grouped by mechanism name, for quick per-mechanism
    /// attribution of a run's privacy spend (the audit layer's
    /// accountant offers the same cut over its richer draw records).
    pub fn epsilon_by_mechanism(&self) -> BTreeMap<String, f64> {
        let mut out: BTreeMap<String, f64> = BTreeMap::new();
        for d in &self.budget {
            *out.entry(d.mechanism.clone()).or_insert(0.0) += d.epsilon;
        }
        out
    }

    /// ε totals grouped by release label.
    pub fn epsilon_by_label(&self) -> BTreeMap<String, f64> {
        let mut out: BTreeMap<String, f64> = BTreeMap::new();
        for d in &self.budget {
            *out.entry(d.label.clone()).or_insert(0.0) += d.epsilon;
        }
        out
    }

    /// Folds another report into this one (spans/counters/histograms merge
    /// by key, budget draws append).
    pub fn merge(&mut self, other: &RunReport) {
        for (k, v) in &other.spans {
            self.spans.entry(k.clone()).or_default().merge(v);
        }
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
        self.budget.extend(other.budget.iter().cloned());
        for (k, v) in &other.speedup {
            self.speedup.insert(k.clone(), *v);
        }
    }

    /// Compact single-line JSON. Keys appear in sorted (`BTreeMap`
    /// iteration) order, so equal reports serialize byte-identically.
    /// Hand-rolled through `ppdp_trace::json`, so it cannot fail and
    /// works in builds where no external JSON crate is available.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Human-diffable pretty JSON (same content as [`RunReport::to_json`]).
    pub fn to_json_pretty(&self) -> String {
        self.to_value().to_json_pretty()
    }

    /// Parses a report back from JSON (compact or pretty). The
    /// [`speedup`](RunReport::speedup) section is optional; all other
    /// sections must be present with the serialized shape.
    ///
    /// # Errors
    /// A human-readable description of the first malformed construct.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let v = JsonValue::parse(s)?;
        Self::from_value(&v)
    }

    fn to_value(&self) -> JsonValue {
        let spans = self
            .spans
            .iter()
            .map(|(k, s)| (k.clone(), s.to_value()))
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), JsonValue::Num(*v as f64)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.to_value()))
            .collect();
        let budget = self.budget.iter().map(BudgetDraw::to_value).collect();
        let speedup = self
            .speedup
            .iter()
            .map(|(k, f)| (k.clone(), JsonValue::Num(*f)))
            .collect();
        JsonValue::Object(vec![
            ("spans".into(), JsonValue::Object(spans)),
            ("counters".into(), JsonValue::Object(counters)),
            ("histograms".into(), JsonValue::Object(histograms)),
            ("budget".into(), JsonValue::Array(budget)),
            ("speedup".into(), JsonValue::Object(speedup)),
        ])
    }

    fn from_value(v: &JsonValue) -> Result<Self, String> {
        let mut report = RunReport::default();
        for (key, stats) in object_field(v, "spans")? {
            report
                .spans
                .insert(key.clone(), SpanStats::from_value(stats)?);
        }
        for (key, count) in object_field(v, "counters")? {
            let count = count
                .as_u64()
                .ok_or_else(|| format!("counter {key:?}: expected an unsigned integer"))?;
            report.counters.insert(key.clone(), count);
        }
        for (key, hist) in object_field(v, "histograms")? {
            report
                .histograms
                .insert(key.clone(), Histogram::from_value(hist)?);
        }
        let budget = v
            .get("budget")
            .and_then(JsonValue::as_array)
            .ok_or("missing \"budget\" array")?;
        for draw in budget {
            report.budget.push(BudgetDraw::from_value(draw)?);
        }
        // Absent in reports serialized before the speedup section existed.
        if let Some(speedup) = v.get("speedup") {
            for (key, factor) in speedup.as_object().ok_or("\"speedup\" is not an object")? {
                let factor = factor
                    .as_f64()
                    .ok_or_else(|| format!("speedup {key:?}: expected a number"))?;
                report.speedup.insert(key.clone(), factor);
            }
        }
        Ok(report)
    }

    /// Renders the report as an aligned text table (the shared renderer
    /// used for progress/summary lines across the workspace binaries).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("telemetry: (empty report)\n");
            return out;
        }
        if !self.spans.is_empty() {
            out.push_str(&format!(
                "{:<44} {:>8} {:>12} {:>12} {:>12}\n",
                "span", "count", "total", "mean", "max"
            ));
            for (path, s) in &self.spans {
                out.push_str(&format!(
                    "  {:<42} {:>8} {:>12} {:>12} {:>12}\n",
                    path,
                    s.count,
                    fmt_nanos(s.total_nanos),
                    fmt_nanos(s.mean_nanos()),
                    fmt_nanos(s.max_nanos)
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("{:<44} {:>12}\n", "counter", "value"));
            for (name, v) in &self.counters {
                out.push_str(&format!("  {:<42} {:>12}\n", name, v));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str(&format!(
                "{:<44} {:>8} {:>12} {:>12} {:>12}\n",
                "histogram", "count", "mean", "min", "max"
            ));
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {:<42} {:>8} {:>12.4e} {:>12.4e} {:>12.4e}\n",
                    name,
                    h.count,
                    h.mean(),
                    h.min,
                    h.max
                ));
            }
        }
        if !self.speedup.is_empty() {
            out.push_str(&format!("{:<44} {:>12}\n", "speedup", "factor"));
            for (region, factor) in &self.speedup {
                out.push_str(&format!("  {:<42} {:>11.2}x\n", region, factor));
            }
        }
        if !self.budget.is_empty() {
            out.push_str(&format!(
                "{:<44} {:>10} {:>10} {:>12}\n",
                "budget draw", "epsilon", "delta", "sensitivity"
            ));
            for d in &self.budget {
                out.push_str(&format!(
                    "  {:<42} {:>10.4} {:>10.4} {:>12.4}\n",
                    format!("{} {}", d.mechanism, d.label),
                    d.epsilon,
                    d.delta,
                    d.sensitivity
                ));
            }
            out.push_str(&format!(
                "  {:<42} {:>10.4} {:>10.4}\n",
                "total",
                self.total_epsilon(),
                self.total_delta()
            ));
        }
        out
    }
}

/// Formats a nanosecond duration human-readably (`"417ns"`, `"3.21ms"`,
/// `"1.50s"`).
pub fn fmt_nanos(nanos: u64) -> String {
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.2}us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2}s", nanos as f64 / 1e9)
    }
}

/// One status line in the shared telemetry text style, for binaries that
/// route their progress output through the telemetry renderer.
pub fn status_line(tag: &str, msg: &str) -> String {
    format!("[{tag:>5}] {msg}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_stats_aggregate_and_merge() {
        let mut s = SpanStats::default();
        s.record(10);
        s.record(30);
        assert_eq!(s.count, 2);
        assert_eq!(s.total_nanos, 40);
        assert_eq!(s.min_nanos, 10);
        assert_eq!(s.max_nanos, 30);
        assert_eq!(s.mean_nanos(), 20);
        let mut t = SpanStats::default();
        t.record(5);
        t.merge(&s);
        assert_eq!(t.count, 3);
        assert_eq!(t.min_nanos, 5);
        assert_eq!(t.max_nanos, 30);
    }

    #[test]
    fn histogram_aggregates_stats_and_buckets() {
        let mut h = Histogram::default();
        for v in [0.001, 0.01, 0.1, 1.0, 10.0] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert!((h.sum - 11.111).abs() < 1e-9);
        assert_eq!(h.min, 0.001);
        assert_eq!(h.max, 10.0);
        assert_eq!(h.last, 10.0);
        let total: u64 = h.buckets.iter().sum();
        assert_eq!(total, h.count, "every sample lands in exactly one bucket");
        // Five different decades → five distinct buckets.
        assert_eq!(h.buckets.iter().filter(|&&b| b > 0).count(), 5);
        // Non-finite samples are ignored.
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count, 5);
    }

    #[test]
    fn histogram_clamps_extremes_into_edge_buckets() {
        let mut h = Histogram::default();
        h.record(0.0);
        h.record(-3.0);
        h.record(1e99);
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn report_merge_and_queries() {
        let mut a = RunReport::default();
        a.counters.insert("x".into(), 2);
        a.spans.entry("s".into()).or_default().record(100);
        a.budget.push(BudgetDraw {
            mechanism: "laplace".into(),
            label: "h".into(),
            epsilon: 0.5,
            delta: 0.0,
            sensitivity: 1.0,
        });
        let mut b = RunReport::default();
        b.counters.insert("x".into(), 3);
        b.counters.insert("y".into(), 1);
        b.budget.push(BudgetDraw {
            mechanism: "laplace".into(),
            label: "h2".into(),
            epsilon: 0.25,
            delta: 0.0,
            sensitivity: 1.0,
        });
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("y"), 1);
        assert_eq!(a.counter("missing"), 0);
        assert!((a.total_epsilon() - 0.75).abs() < 1e-12);
        assert!(!a.is_empty());
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut r = RunReport::default();
        r.counters.insert("bp.iterations".into(), 42);
        r.spans.entry("run/fit".into()).or_default().record(12_345);
        r.histograms
            .entry("residual".into())
            .or_default()
            .record(1e-6);
        r.budget.push(BudgetDraw {
            mechanism: "laplace".into(),
            label: "cpd[0]".into(),
            epsilon: 0.125,
            delta: 0.0,
            sensitivity: 1.0,
        });
        let back = RunReport::from_json(&r.to_json()).expect("round trip");
        assert_eq!(r, back);
        let back_pretty = RunReport::from_json(&r.to_json_pretty()).expect("round trip");
        assert_eq!(r, back_pretty);
    }

    #[test]
    fn from_json_defaults_missing_speedup_and_rejects_malformed_input() {
        // Reports serialized before the speedup section existed.
        let legacy = r#"{"spans":{},"counters":{"c":1},"histograms":{},"budget":[]}"#;
        let report = RunReport::from_json(legacy).expect("legacy shape parses");
        assert_eq!(report.counter("c"), 1);
        assert!(report.speedup.is_empty());
        // Malformed documents come back as errors, not panics.
        for bad in [
            "{ not json",
            "[]",
            r#"{"spans":{}}"#,
            r#"{"spans":{},"counters":{"c":-1},"histograms":{},"budget":[]}"#,
            r#"{"spans":{},"counters":{},"histograms":{},"budget":[{"mechanism":"m"}]}"#,
        ] {
            assert!(RunReport::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn equivalence_view_is_timing_free_but_keeps_structure() {
        let mut r = RunReport::default();
        r.counters.insert("bp.iterations".into(), 7);
        r.counters.insert("exec.threads".into(), 4);
        r.spans.entry("run/fit".into()).or_default().record(999);
        r.spans
            .entry("run/exec.phase".into())
            .or_default()
            .record(5);
        let h = r.histograms.entry("residual".into()).or_default();
        h.record(0.5);
        h.record(0.25);
        r.histograms
            .entry("exec.phase_ms.fit".into())
            .or_default()
            .record(12.0);
        r.record_speedup("bp.run@4", 3.0);
        let view = r.equivalence_view();
        assert_eq!(view.counter("bp.iterations"), 7);
        assert_eq!(view.counter("exec.threads"), 0, "exec.* dropped");
        let fit = view.span("run/fit").expect("span count kept");
        assert_eq!((fit.count, fit.total_nanos), (1, 0), "timing zeroed");
        assert!(view.span("run/exec.phase").is_none());
        let hist = view.histogram("residual").expect("histogram kept");
        assert_eq!(hist.count, 2);
        assert_eq!(hist.sum, 0.0, "order-dependent sum zeroed");
        assert_eq!(hist.last, 0.0, "order-dependent last zeroed");
        assert_eq!((hist.min, hist.max), (0.25, 0.5));
        assert!(view.histogram("exec.phase_ms.fit").is_none());
        assert!(view.speedup.is_empty());
        assert_eq!(r.exec_threads(), 4);
        assert_eq!(RunReport::default().exec_threads(), 1);
        // The view is a fixpoint: projecting twice changes nothing.
        assert_eq!(view.equivalence_view(), view);
    }

    #[test]
    fn text_rendering_mentions_every_section() {
        let mut r = RunReport::default();
        r.counters.insert("c".into(), 1);
        r.spans.entry("s".into()).or_default().record(1_500_000);
        r.histograms.entry("h".into()).or_default().record(2.0);
        r.budget.push(BudgetDraw {
            mechanism: "laplace".into(),
            label: "x".into(),
            epsilon: 1.0,
            delta: 0.0,
            sensitivity: 1.0,
        });
        let text = r.to_text();
        for needle in [
            "span",
            "counter",
            "histogram",
            "budget draw",
            "total",
            "1.50ms",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        assert!(RunReport::default().to_text().contains("empty report"));
    }

    #[test]
    fn histogram_quantiles_are_order_independent_and_bounded() {
        let mut h = Histogram::default();
        for v in [0.001, 0.01, 0.1, 1.0, 10.0] {
            h.record(v);
        }
        let mut rev = Histogram::default();
        for v in [10.0, 1.0, 0.1, 0.01, 0.001] {
            rev.record(v);
        }
        for p in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(h.quantile(p), rev.quantile(p), "p={p}");
            assert!(h.quantile(p) >= h.min && h.quantile(p) <= h.max);
        }
        // Decade resolution: each quantile is a bucket's upper edge,
        // clamped into the observed range.
        assert_eq!(h.quantile(1.0), 10.0);
        assert_eq!(h.quantile(0.0), 0.01);
        assert_eq!(h.quantile(0.5), 1.0);
        assert_eq!(Histogram::default().quantile(0.5), 0.0);
    }

    /// Pins the JSON-determinism contract: every map in a `RunReport` is
    /// a `BTreeMap`, so serialization (which walks iteration order) and
    /// the text renderer emit keys in sorted order regardless of
    /// insertion order. Golden comparisons and `ppdp-report diff` rely
    /// on this.
    #[test]
    fn report_maps_iterate_in_sorted_key_order() {
        let mut r = RunReport::default();
        for name in ["zeta", "alpha", "mid", "beta"] {
            r.counters.insert(name.into(), 1);
            r.spans.entry(name.into()).or_default().record(1);
            r.histograms.entry(name.into()).or_default().record(1.0);
            r.record_speedup(name, 2.0);
        }
        let sorted = ["alpha", "beta", "mid", "zeta"];
        let counter_keys: Vec<&str> = r.counters.keys().map(String::as_str).collect();
        let span_keys: Vec<&str> = r.spans.keys().map(String::as_str).collect();
        let hist_keys: Vec<&str> = r.histograms.keys().map(String::as_str).collect();
        let speedup_keys: Vec<&str> = r.speedup.keys().map(String::as_str).collect();
        assert_eq!(counter_keys, sorted);
        assert_eq!(span_keys, sorted);
        assert_eq!(hist_keys, sorted);
        assert_eq!(speedup_keys, sorted);
        // The text table (rendered from the same iteration order) lists
        // alpha before zeta in every section.
        let text = r.to_text();
        assert!(text.find("alpha").unwrap() < text.find("zeta").unwrap());
    }

    /// Serialized key order matches iteration order (sorted).
    #[test]
    fn json_encodes_maps_in_sorted_key_order() {
        let mut r = RunReport::default();
        r.counters.insert("zeta".into(), 1);
        r.counters.insert("alpha".into(), 2);
        let json = r.to_json();
        let alpha = json.find("\"alpha\"").expect("alpha serialized");
        let zeta = json.find("\"zeta\"").expect("zeta serialized");
        assert!(alpha < zeta, "sorted key order in JSON: {json}");
    }

    #[test]
    fn nanos_formatting_picks_sane_units() {
        assert_eq!(fmt_nanos(417), "417ns");
        assert_eq!(fmt_nanos(1_500), "1.50us");
        assert_eq!(fmt_nanos(3_210_000), "3.21ms");
        assert_eq!(fmt_nanos(1_500_000_000), "1.50s");
    }
}
