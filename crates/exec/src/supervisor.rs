//! Cooperative run supervision: cancellation tokens, wall-clock deadlines
//! and bounded retry — the control half of the crash-safety story.
//!
//! The durability layer (`ppdp-durable`, `ppdp-dp::durable`) makes state
//! survive a *hard* kill; this module makes *soft* termination orderly. A
//! [`RunSupervisor`] threads a [`CancelToken`] and an optional deadline
//! through long-running work:
//!
//! * [`RunSupervisor::guard`] — the per-stage check: errors with
//!   [`PpdpError::Cancelled`] or [`PpdpError::DeadlineExceeded`] once
//!   either condition fires, so a pipeline stops at the next stage
//!   boundary, checkpoints, and exits instead of being SIGKILLed mid-write.
//! * [`RunSupervisor::try_par_map`] — a fallible [`ExecPolicy::par_map`]:
//!   items return `Result`, cancellation is observed *between items* on
//!   every worker, and the first error in **item-index order** wins
//!   (deterministic across policies, like everything in this crate).
//! * [`RunSupervisor::retry_with_backoff`] — bounded retry with
//!   exponential backoff for transient failures (`non_convergence`,
//!   `numerical`, `io`), mirroring the damping-ladder degradation path:
//!   each retry emits `supervisor.retry`, and exhaustion emits the
//!   `degraded.supervisor.retry_exhausted` telemetry event plus a
//!   `supervisor` trace event before surfacing the last error.
//!
//! Cancellation is *cooperative*: nothing is interrupted mid-item, so a
//! cancelled run's partial artifacts are always stage-consistent — exactly
//! the states the checkpoint layer knows how to resume.

use crate::ExecPolicy;
use ppdp_errors::{PpdpError, Result};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable cancellation flag. Clones observe the same flag; any clone
/// (or a signal handler holding one) can cancel every holder.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the flag. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether any holder has cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// The raw flag, for wiring into a C signal handler that can only
    /// touch an `AtomicBool`.
    pub fn raw_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }
}

/// Supervises one run: cancellation, deadline, retry policy.
#[derive(Debug, Clone)]
pub struct RunSupervisor {
    token: CancelToken,
    started: Instant,
    deadline: Option<Duration>,
    /// Base sleep of the exponential backoff ladder (doubles per retry).
    backoff_base: Duration,
}

impl Default for RunSupervisor {
    fn default() -> Self {
        Self::new()
    }
}

impl RunSupervisor {
    /// A supervisor with no deadline and a fresh token; the retry ladder
    /// starts at 10 ms.
    pub fn new() -> Self {
        RunSupervisor {
            token: CancelToken::new(),
            started: Instant::now(),
            deadline: None,
            backoff_base: Duration::from_millis(10),
        }
    }

    /// Use an existing token (e.g. one whose raw flag a SIGTERM handler
    /// flips).
    pub fn with_token(mut self, token: CancelToken) -> Self {
        self.token = token;
        self
    }

    /// Bound the run's wall clock, measured from this call.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.started = Instant::now();
        self.deadline = Some(deadline);
        self
    }

    /// Override the base backoff delay (tests use ~1 ms).
    pub fn with_backoff_base(mut self, base: Duration) -> Self {
        self.backoff_base = base;
        self
    }

    /// The supervised token (clone it into signal handlers / other
    /// threads).
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Wall clock consumed so far.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// The per-stage check: `Ok` while the run may continue.
    ///
    /// # Errors
    /// [`PpdpError::Cancelled`] once the token has tripped,
    /// [`PpdpError::DeadlineExceeded`] once the wall-clock budget is
    /// consumed. Both emit a `supervisor.*` counter and trace event the
    /// first time they surface from this call.
    pub fn guard(&self, label: &str) -> Result<()> {
        if self.token.is_cancelled() {
            ppdp_telemetry::counter("supervisor.cancelled", 1);
            ppdp_trace::supervisor_event("cancelled", label, 0);
            return Err(PpdpError::cancelled(format!(
                "cancellation token tripped at {label}"
            )));
        }
        if let Some(deadline) = self.deadline {
            let elapsed = self.started.elapsed();
            if elapsed > deadline {
                ppdp_telemetry::counter("supervisor.deadline_exceeded", 1);
                ppdp_trace::supervisor_event("deadline", label, elapsed.as_millis() as u64);
                return Err(PpdpError::DeadlineExceeded {
                    elapsed_ms: elapsed.as_millis() as u64,
                    deadline_ms: deadline.as_millis() as u64,
                });
            }
        }
        Ok(())
    }

    /// Fallible, cancellable [`ExecPolicy::par_map`].
    ///
    /// Every worker re-checks the token before each item; once tripped,
    /// remaining items are skipped (their slots error). On any failure the
    /// error with the **lowest item index** is returned, so the reported
    /// cause is identical under `Sequential` and every `Parallel` width.
    ///
    /// # Errors
    /// [`PpdpError::Cancelled`]/[`PpdpError::DeadlineExceeded`] from the
    /// entry guard or mid-map cancellation, else the first item error.
    pub fn try_par_map<R, F>(
        &self,
        policy: ExecPolicy,
        label: &str,
        n: usize,
        f: F,
    ) -> Result<Vec<R>>
    where
        R: Send,
        F: Fn(usize) -> Result<R> + Sync,
    {
        self.guard(label)?;
        let slots: Vec<Result<R>> = policy.par_map(n, |i| {
            // Between-item cancellation point: cheap (one atomic load) and
            // cooperative — the in-flight item always completes.
            self.guard(label)?;
            f(i)
        });
        let mut out = Vec::with_capacity(n);
        for slot in slots {
            out.push(slot?);
        }
        Ok(out)
    }

    /// Runs `op` up to `attempts` times, sleeping `base · 2^k` between
    /// tries, retrying only errors a retry could plausibly cure
    /// (`non_convergence`, `numerical`, `io`). The attempt index is passed
    /// to `op` so callers can escalate — e.g. climb the BP damping ladder
    /// or relax a tolerance, the PR-2 degradation path.
    ///
    /// # Errors
    /// The first non-transient error immediately; otherwise the last
    /// transient error after `attempts` tries, having emitted the
    /// `degraded.supervisor.retry_exhausted` telemetry event.
    pub fn retry_with_backoff<T>(
        &self,
        label: &str,
        attempts: u32,
        mut op: impl FnMut(u32) -> Result<T>,
    ) -> Result<T> {
        let attempts = attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            self.guard(label)?;
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if is_transient(&e) => {
                    ppdp_telemetry::counter("supervisor.retry", 1);
                    ppdp_trace::supervisor_event("retry", label, u64::from(attempt) + 1);
                    last = Some(e);
                    if attempt + 1 < attempts {
                        std::thread::sleep(self.backoff_base * 2u32.pow(attempt.min(16)));
                    }
                }
                Err(e) => return Err(e),
            }
        }
        ppdp_telemetry::degradation("supervisor", "retry_exhausted");
        ppdp_trace::supervisor_event("retry_exhausted", label, u64::from(attempts));
        // `last` is always Some here: the loop ran ≥ 1 time and every exit
        // path other than a transient error returned early.
        last.map_or_else(
            || Err(PpdpError::cancelled(format!("retry loop at {label}"))),
            Err,
        )
    }
}

/// Whether a retry could plausibly cure this error class.
fn is_transient(e: &PpdpError) -> bool {
    matches!(e.kind(), "non_convergence" | "numerical" | "io")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_passes_then_trips_on_cancel() {
        let sup = RunSupervisor::new();
        assert!(sup.guard("stage").is_ok());
        sup.token().cancel();
        let err = sup.guard("stage").unwrap_err();
        assert_eq!(err.kind(), "cancelled");
        assert!(err.to_string().contains("stage"), "{err}");
    }

    #[test]
    fn deadline_trips_after_elapsing() {
        let sup = RunSupervisor::new().with_deadline(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        let err = sup.guard("slow").unwrap_err();
        assert_eq!(err.kind(), "deadline_exceeded");
        let PpdpError::DeadlineExceeded {
            elapsed_ms,
            deadline_ms,
        } = err
        else {
            panic!("wrong variant {err:?}");
        };
        assert!(elapsed_ms >= deadline_ms);
    }

    #[test]
    fn try_par_map_is_deterministic_across_policies() {
        let sup = RunSupervisor::new();
        let f = |i: usize| -> Result<u64> { Ok((i as u64) * 3 + 1) };
        let seq = sup
            .try_par_map(ExecPolicy::Sequential, "map", 37, f)
            .unwrap();
        for threads in [2, 4, 8] {
            let par = sup
                .try_par_map(ExecPolicy::parallel(threads), "map", 37, f)
                .unwrap();
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn try_par_map_reports_lowest_index_error() {
        let sup = RunSupervisor::new();
        for policy in [ExecPolicy::Sequential, ExecPolicy::parallel(4)] {
            let err = sup
                .try_par_map(policy, "map", 16, |i| -> Result<usize> {
                    if i == 11 || i == 3 {
                        Err(PpdpError::numerical(format!("item {i}")))
                    } else {
                        Ok(i)
                    }
                })
                .unwrap_err();
            assert!(
                err.to_string().contains("item 3"),
                "{policy:?}: first-by-index error wins, got {err}"
            );
        }
    }

    #[test]
    fn try_par_map_stops_after_cancellation() {
        use std::sync::atomic::AtomicUsize;
        let sup = RunSupervisor::new();
        let ran = AtomicUsize::new(0);
        let token = sup.token().clone();
        let err = sup
            .try_par_map(ExecPolicy::Sequential, "map", 1000, |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i == 4 {
                    token.cancel();
                }
                Ok(i)
            })
            .unwrap_err();
        assert_eq!(err.kind(), "cancelled");
        let executed = ran.load(Ordering::Relaxed);
        assert!(
            executed <= 6,
            "items after the cancellation point must be skipped, ran {executed}"
        );
    }

    #[test]
    fn retry_succeeds_after_transient_failures() {
        let rec = ppdp_telemetry::Recorder::new();
        let got = {
            let _scope = rec.enter();
            let sup = RunSupervisor::new().with_backoff_base(Duration::from_micros(100));
            sup.retry_with_backoff("bp", 4, |attempt| {
                if attempt < 2 {
                    Err(PpdpError::numerical("wobbly"))
                } else {
                    Ok(attempt)
                }
            })
            .unwrap()
        };
        assert_eq!(got, 2, "op sees the attempt index");
        let report = rec.take();
        assert_eq!(report.counter("supervisor.retry"), 2);
        assert_eq!(report.counter("degraded.supervisor"), 0);
    }

    #[test]
    fn retry_exhaustion_degrades_and_surfaces_last_error() {
        let rec = ppdp_telemetry::Recorder::new();
        let err = {
            let _scope = rec.enter();
            let sup = RunSupervisor::new().with_backoff_base(Duration::from_micros(1));
            sup.retry_with_backoff("bp", 3, |attempt| -> Result<()> {
                Err(PpdpError::NonConvergence {
                    algorithm: "bp",
                    iterations: attempt as usize,
                    residual: 1.0,
                })
            })
            .unwrap_err()
        };
        assert_eq!(err.kind(), "non_convergence");
        let report = rec.take();
        assert_eq!(report.counter("supervisor.retry"), 3);
        assert_eq!(report.counter("degraded.supervisor.retry_exhausted"), 1);
    }

    #[test]
    fn retry_does_not_mask_permanent_errors() {
        let sup = RunSupervisor::new();
        let mut calls = 0;
        let err = sup
            .retry_with_backoff("ledger", 5, |_| -> Result<()> {
                calls += 1;
                Err(PpdpError::BudgetExhausted {
                    requested: 1.0,
                    remaining: 0.0,
                })
            })
            .unwrap_err();
        assert_eq!(err.kind(), "budget_exhausted");
        assert_eq!(calls, 1, "permanent errors are not retried");
    }

    #[test]
    fn supervisor_trace_events_are_captured() {
        let col = ppdp_trace::Collector::new();
        {
            let _scope = col.enter();
            let sup = RunSupervisor::new().with_backoff_base(Duration::from_micros(1));
            let _ = sup.retry_with_backoff("unit", 2, |_| -> Result<()> {
                Err(PpdpError::numerical("x"))
            });
        }
        let trace = col.take();
        let actions: Vec<String> = trace
            .records
            .iter()
            .filter_map(|r| match &r.event {
                ppdp_trace::TraceEvent::Supervisor { action, label, .. } => {
                    assert_eq!(label, "unit");
                    Some(action.clone())
                }
                _ => None,
            })
            .collect();
        assert_eq!(actions, vec!["retry", "retry", "retry_exhausted"]);
    }
}
