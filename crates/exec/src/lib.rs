//! `ppdp-exec`: the workspace's deterministic parallel execution layer.
//!
//! Every parallel region in the workspace goes through [`ExecPolicy`]
//! (direct `std::thread::spawn` in library code is denied by the clippy
//! gate in `ci.sh`). The layer makes two guarantees:
//!
//! 1. **Bitwise determinism.** [`ExecPolicy::par_map`] evaluates a pure
//!    closure per item index and assembles the results in item-index
//!    order, so the output `Vec` is identical for `Sequential`,
//!    `Parallel { threads: 1 }`, `Parallel { threads: 8 }`, … as long as
//!    the closure itself is a pure function of the index. Randomized
//!    kernels derive one RNG per item via [`split_seed`] (a SplitMix64
//!    mix of the run seed and the stable item index) instead of sharing
//!    a sequential stream, which is what makes per-item work
//!    order-independent in the first place.
//! 2. **Telemetry transparency.** Worker closures run with the
//!    coordinating thread's telemetry context re-activated (see
//!    [`ppdp_telemetry::ThreadContext`]), so scoped recorders observe
//!    the same counter totals regardless of the thread count. Kernels
//!    keep order-dependent telemetry (histograms, budget draws, spans)
//!    on the coordinating thread; workers record only additive counters.
//!
//! ```
//! use ppdp_exec::ExecPolicy;
//!
//! let seq = ExecPolicy::Sequential.par_map(8, |i| i * i);
//! let par = ExecPolicy::Parallel { threads: 4 }.par_map(8, |i| i * i);
//! assert_eq!(seq, par);
//! ```

use ppdp_telemetry::ThreadContext;

pub mod supervisor;

pub use supervisor::{CancelToken, RunSupervisor};

/// How a kernel should execute its independent per-item work.
///
/// The policy never changes *what* is computed — only how many OS
/// threads evaluate the item closures. `Default` is [`Sequential`],
/// so every existing call site keeps its single-threaded behavior
/// unless a publisher explicitly opts in.
///
/// [`Sequential`]: ExecPolicy::Sequential
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecPolicy {
    /// Evaluate items one after another on the calling thread.
    #[default]
    Sequential,
    /// Fan items out over `threads` scoped worker threads.
    Parallel {
        /// Worker-thread count; `0` means "use all available cores".
        threads: usize,
    },
}

impl ExecPolicy {
    /// Shorthand for `Parallel { threads }`.
    pub fn parallel(threads: usize) -> Self {
        Self::Parallel { threads }
    }

    /// Reads the policy from the environment: `PPDP_THREADS` first, then
    /// `RAYON_NUM_THREADS` (honored for ecosystem compatibility even
    /// though the layer is built on scoped std threads). Unset or
    /// unparsable values, and values `<= 1`, mean [`Sequential`].
    ///
    /// [`Sequential`]: ExecPolicy::Sequential
    pub fn from_env() -> Self {
        for var in ["PPDP_THREADS", "RAYON_NUM_THREADS"] {
            if let Ok(raw) = std::env::var(var) {
                if let Ok(n) = raw.trim().parse::<usize>() {
                    return if n <= 1 {
                        Self::Sequential
                    } else {
                        Self::Parallel { threads: n }
                    };
                }
            }
        }
        Self::Sequential
    }

    /// Effective worker count: 1 for [`ExecPolicy::Sequential`], the
    /// machine's available parallelism for `Parallel { threads: 0 }`.
    pub fn threads(&self) -> usize {
        match *self {
            Self::Sequential => 1,
            Self::Parallel { threads: 0 } => {
                std::thread::available_parallelism().map_or(1, |n| n.get())
            }
            Self::Parallel { threads } => threads,
        }
    }

    /// `true` when more than one worker thread would be used.
    pub fn is_parallel(&self) -> bool {
        self.threads() > 1
    }

    /// Evaluates `f(0), f(1), …, f(n - 1)` and returns the results in
    /// index order.
    ///
    /// Under [`ExecPolicy::Sequential`] (or when `n < 2`) this is a plain
    /// loop on the calling thread. Under `Parallel` the index range is
    /// split into contiguous chunks, one scoped worker per chunk, and the
    /// per-chunk results are concatenated in chunk order — so the output
    /// is positionally identical to the sequential evaluation. Each
    /// worker runs with the caller's telemetry context activated.
    ///
    /// A panic in `f` is re-raised on the calling thread after all
    /// workers have been joined (no detached threads, no hung joins).
    pub fn par_map<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let threads = self.threads().min(n);
        // Captured under EVERY policy (consuming exactly one trace
        // sequence number), and each item evaluation is wrapped in an
        // item scope — this is what keys item `i`'s trace events
        // `[…region, i, seq]` identically whether the item ran on the
        // coordinator, a worker, or sequentially. Free when tracing is
        // disabled.
        let region = ppdp_trace::RegionCtx::capture();
        if threads <= 1 {
            return (0..n)
                .map(|i| {
                    let _item = region.item(i);
                    f(i)
                })
                .collect();
        }
        let ctx = ThreadContext::capture();
        let chunk = n.div_ceil(threads);
        let mut out: Vec<R> = Vec::with_capacity(n);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (chunk..n)
                .step_by(chunk)
                .map(|start| {
                    let end = (start + chunk).min(n);
                    let (ctx, f, region) = (&ctx, &f, &region);
                    scope.spawn(move || {
                        // Resolve the metrics shard up front so the first
                        // instrumented item doesn't pay the registration
                        // lock inside the hot loop.
                        ppdp_metrics::register_thread();
                        ppdp_metrics::counter("exec.workers_spawned", 1);
                        let _telemetry = ctx.activate();
                        let _lane = region.worker();
                        (start..end)
                            .map(|i| {
                                let _item = region.item(i);
                                f(i)
                            })
                            .collect::<Vec<R>>()
                    })
                })
                .collect();
            // The coordinator evaluates the first chunk itself instead of
            // idling at the join barrier — one fewer spawn per call, and
            // its telemetry context is already active.
            out.extend((0..chunk).map(|i| {
                let _item = region.item(i);
                f(i)
            }));
            for handle in handles {
                match handle.join() {
                    Ok(part) => out.extend(part),
                    Err(cause) => panic = Some(cause),
                }
            }
        });
        if let Some(cause) = panic {
            std::panic::resume_unwind(cause);
        }
        out
    }

    /// Fills `out` in place by evaluating `f(i, &mut out[i])` for every
    /// index, scheduling the slice in cache-sized blocks of `block`
    /// elements.
    ///
    /// This is the in-place sibling of [`ExecPolicy::par_map`] for flat
    /// message arenas: the caller owns the destination buffer (so hot
    /// kernels reuse allocations across rounds instead of collecting a
    /// fresh `Vec` per sweep), and blocks are dealt round-robin — worker
    /// `w` of `T` owns blocks `w, w + T, w + 2T, …` — so every round of a
    /// fixed-point iteration assigns the *same* block to the same worker
    /// lane. That keeps a block's cache lines warm in one core's private
    /// cache across sweeps instead of migrating with a coarse
    /// chunk-boundary that shifts as `n` changes.
    ///
    /// Determinism is structural, exactly as for `par_map`: slot `i` is
    /// written only by `f(i, …)`, blocks are disjoint sub-slices, and no
    /// result ordering exists to get wrong. A panic in `f` is re-raised on
    /// the calling thread after all workers are joined. Each item runs
    /// inside the same `region.item(i)` trace scope as the sequential
    /// path, so trace equivalence views match across policies.
    pub fn par_fill<T, F>(&self, out: &mut [T], block: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let n = out.len();
        let block = block.max(1);
        // Never spawn more workers than there are blocks to deal.
        let threads = self.threads().min(n.div_ceil(block));
        let region = ppdp_trace::RegionCtx::capture();
        if threads <= 1 {
            for (i, slot) in out.iter_mut().enumerate() {
                let _item = region.item(i);
                f(i, slot);
            }
            return;
        }
        let ctx = ThreadContext::capture();
        // Deal the blocks round-robin into per-worker buckets. The borrow
        // checker sees disjoint `&mut [T]` sub-slices via `chunks_mut`, so
        // no unsafe indexing is needed.
        let mut buckets: Vec<Vec<(usize, &mut [T])>> = Vec::with_capacity(threads);
        buckets.resize_with(threads, Vec::new);
        for (b, chunk) in out.chunks_mut(block).enumerate() {
            buckets[b % threads].push((b * block, chunk));
        }
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        std::thread::scope(|scope| {
            let mut buckets = buckets.into_iter();
            // The coordinator keeps lane 0 for itself (same rationale as
            // par_map: one fewer spawn, telemetry context already active).
            let mine = buckets.next().unwrap_or_default();
            let handles: Vec<_> = buckets
                .map(|bucket| {
                    let (ctx, f, region) = (&ctx, &f, &region);
                    scope.spawn(move || {
                        ppdp_metrics::register_thread();
                        ppdp_metrics::counter("exec.workers_spawned", 1);
                        let _telemetry = ctx.activate();
                        let _lane = region.worker();
                        for (start, chunk) in bucket {
                            for (off, slot) in chunk.iter_mut().enumerate() {
                                let i = start + off;
                                let _item = region.item(i);
                                f(i, slot);
                            }
                        }
                    })
                })
                .collect();
            for (start, chunk) in mine {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    let i = start + off;
                    let _item = region.item(i);
                    f(i, slot);
                }
            }
            for handle in handles {
                if let Err(cause) = handle.join() {
                    panic = Some(cause);
                }
            }
        });
        if let Some(cause) = panic {
            std::panic::resume_unwind(cause);
        }
    }

    /// Two-plane sibling of [`ExecPolicy::par_fill`] for structure-of-
    /// arrays message arenas: fills `a[i]` and `b[i]` together by
    /// evaluating `f(i, &mut a[i], &mut b[i])`, scheduling both slices in
    /// the same cache-sized blocks of `block` elements.
    ///
    /// Kernels that split a message record across two planes (e.g. a hot
    /// SIMD-friendly plane and a cold residual/bookkeeping plane) need to
    /// write both planes in one pass; zipping the per-block sub-slices
    /// here keeps that a single round-robin schedule instead of two
    /// passes with twice the loop and trace overhead. Blocks are dealt
    /// round-robin exactly as in `par_fill`, item `i` runs inside the
    /// same `region.item(i)` trace scope under every policy, and a panic
    /// in `f` is re-raised on the calling thread after all workers join.
    ///
    /// # Panics
    /// Panics if the two slices differ in length.
    pub fn par_zip_fill<A, B, F>(&self, a: &mut [A], b: &mut [B], block: usize, f: F)
    where
        A: Send,
        B: Send,
        F: Fn(usize, &mut A, &mut B) + Sync,
    {
        assert_eq!(a.len(), b.len(), "par_zip_fill plane length mismatch");
        let n = a.len();
        let block = block.max(1);
        let threads = self.threads().min(n.div_ceil(block));
        let region = ppdp_trace::RegionCtx::capture();
        if threads <= 1 {
            for (i, (sa, sb)) in a.iter_mut().zip(b.iter_mut()).enumerate() {
                let _item = region.item(i);
                f(i, sa, sb);
            }
            return;
        }
        let ctx = ThreadContext::capture();
        // Same round-robin deal as `par_fill`, with each bucket entry
        // carrying the zipped pair of disjoint sub-slices.
        type Bucket2<'s, A, B> = Vec<(usize, &'s mut [A], &'s mut [B])>;
        let mut buckets: Vec<Bucket2<'_, A, B>> = Vec::with_capacity(threads);
        buckets.resize_with(threads, Vec::new);
        for (bi, (ca, cb)) in a.chunks_mut(block).zip(b.chunks_mut(block)).enumerate() {
            buckets[bi % threads].push((bi * block, ca, cb));
        }
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        std::thread::scope(|scope| {
            let mut buckets = buckets.into_iter();
            let mine = buckets.next().unwrap_or_default();
            let handles: Vec<_> = buckets
                .map(|bucket| {
                    let (ctx, f, region) = (&ctx, &f, &region);
                    scope.spawn(move || {
                        ppdp_metrics::register_thread();
                        ppdp_metrics::counter("exec.workers_spawned", 1);
                        let _telemetry = ctx.activate();
                        let _lane = region.worker();
                        for (start, ca, cb) in bucket {
                            for (off, (sa, sb)) in ca.iter_mut().zip(cb.iter_mut()).enumerate() {
                                let i = start + off;
                                let _item = region.item(i);
                                f(i, sa, sb);
                            }
                        }
                    })
                })
                .collect();
            for (start, ca, cb) in mine {
                for (off, (sa, sb)) in ca.iter_mut().zip(cb.iter_mut()).enumerate() {
                    let i = start + off;
                    let _item = region.item(i);
                    f(i, sa, sb);
                }
            }
            for handle in handles {
                if let Err(cause) = handle.join() {
                    panic = Some(cause);
                }
            }
        });
        if let Some(cause) = panic {
            std::panic::resume_unwind(cause);
        }
    }

    /// Three-plane sibling of [`ExecPolicy::par_zip_fill`]: fills
    /// `a[i]`, `b[i]` and `c[i]` together in one blocked schedule. Used
    /// by kernels whose message record spans three planes (a hot gather
    /// plane, a cold bookkeeping half, and a probability-space shadow
    /// that spares the next sweep its `exp` calls).
    ///
    /// # Panics
    /// Panics if the slices differ in length.
    pub fn par_zip_fill3<A, B, C, F>(
        &self,
        a: &mut [A],
        b: &mut [B],
        c: &mut [C],
        block: usize,
        f: F,
    ) where
        A: Send,
        B: Send,
        C: Send,
        F: Fn(usize, &mut A, &mut B, &mut C) + Sync,
    {
        assert_eq!(a.len(), b.len(), "par_zip_fill3 plane length mismatch");
        assert_eq!(a.len(), c.len(), "par_zip_fill3 plane length mismatch");
        let n = a.len();
        let block = block.max(1);
        let threads = self.threads().min(n.div_ceil(block));
        let region = ppdp_trace::RegionCtx::capture();
        if threads <= 1 {
            for (i, ((sa, sb), sc)) in a.iter_mut().zip(b.iter_mut()).zip(c.iter_mut()).enumerate()
            {
                let _item = region.item(i);
                f(i, sa, sb, sc);
            }
            return;
        }
        let ctx = ThreadContext::capture();
        // Same round-robin deal as `par_fill`, with each bucket entry
        // carrying the zipped triple of disjoint sub-slices.
        type Bucket<'s, A, B, C> = Vec<(usize, &'s mut [A], &'s mut [B], &'s mut [C])>;
        let mut buckets: Vec<Bucket<'_, A, B, C>> = Vec::with_capacity(threads);
        buckets.resize_with(threads, Vec::new);
        for (bi, ((ca, cb), cc)) in a
            .chunks_mut(block)
            .zip(b.chunks_mut(block))
            .zip(c.chunks_mut(block))
            .enumerate()
        {
            buckets[bi % threads].push((bi * block, ca, cb, cc));
        }
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        std::thread::scope(|scope| {
            let mut buckets = buckets.into_iter();
            let mine = buckets.next().unwrap_or_default();
            let handles: Vec<_> = buckets
                .map(|bucket| {
                    let (ctx, f, region) = (&ctx, &f, &region);
                    scope.spawn(move || {
                        ppdp_metrics::register_thread();
                        ppdp_metrics::counter("exec.workers_spawned", 1);
                        let _telemetry = ctx.activate();
                        let _lane = region.worker();
                        for (start, ca, cb, cc) in bucket {
                            for (off, ((sa, sb), sc)) in ca
                                .iter_mut()
                                .zip(cb.iter_mut())
                                .zip(cc.iter_mut())
                                .enumerate()
                            {
                                let i = start + off;
                                let _item = region.item(i);
                                f(i, sa, sb, sc);
                            }
                        }
                    })
                })
                .collect();
            for (start, ca, cb, cc) in mine {
                for (off, ((sa, sb), sc)) in ca
                    .iter_mut()
                    .zip(cb.iter_mut())
                    .zip(cc.iter_mut())
                    .enumerate()
                {
                    let i = start + off;
                    let _item = region.item(i);
                    f(i, sa, sb, sc);
                }
            }
            for handle in handles {
                if let Err(cause) = handle.join() {
                    panic = Some(cause);
                }
            }
        });
        if let Some(cause) = panic {
            std::panic::resume_unwind(cause);
        }
    }

    /// Records the policy's effective thread count into telemetry under
    /// `exec.threads` (excluded from equivalence comparisons — it is
    /// *supposed* to differ between policies).
    pub fn record_threads(&self) {
        ppdp_telemetry::counter("exec.threads", self.threads() as u64);
        // Live view: a gauge, so scrapes show the *current* policy rather
        // than a sum over every region that ever recorded.
        ppdp_telemetry::gauge("exec.threads", self.threads() as f64);
    }
}

/// Derives an independent 64-bit seed for item `index` of a run seeded
/// with `seed`, via a SplitMix64-style avalanche of `seed ⊕ φ·(index+1)`.
///
/// Both the sequential and parallel paths of every randomized kernel
/// seed item `i`'s RNG with `split_seed(seed, i)`, which is what makes
/// per-item randomness independent of evaluation order (and therefore of
/// the thread count). The `index + 1` offset keeps `split_seed(s, 0)`
/// from collapsing to a plain mix of `s`.
pub fn split_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sequential() {
        assert_eq!(ExecPolicy::default(), ExecPolicy::Sequential);
        assert_eq!(ExecPolicy::Sequential.threads(), 1);
        assert!(!ExecPolicy::Sequential.is_parallel());
        assert!(ExecPolicy::parallel(4).is_parallel());
        assert_eq!(ExecPolicy::parallel(4).threads(), 4);
    }

    #[test]
    fn zero_threads_means_all_cores() {
        assert!(ExecPolicy::parallel(0).threads() >= 1);
    }

    #[test]
    fn par_map_matches_sequential_in_order_and_value() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9) ^ 0xABCD;
        let seq: Vec<u64> = (0..103).map(f).collect();
        for threads in [1, 2, 3, 8, 64] {
            let par = ExecPolicy::parallel(threads).par_map(103, f);
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_degenerate_sizes() {
        let p = ExecPolicy::parallel(8);
        assert!(p.par_map(0, |i| i).is_empty());
        assert_eq!(p.par_map(1, |i| i + 7), vec![7]);
        assert_eq!(p.par_map(2, |i| i), vec![0, 1]);
    }

    #[test]
    fn par_map_propagates_scoped_telemetry() {
        let rec = ppdp_telemetry::Recorder::new();
        {
            let _scope = rec.enter();
            let _ = ExecPolicy::parallel(4).par_map(32, |i| {
                ppdp_telemetry::counter("exec.test.items", 1);
                i
            });
        }
        assert_eq!(rec.take().counter("exec.test.items"), 32);
    }

    #[test]
    fn par_map_panic_resurfaces_on_caller() {
        let caught = std::panic::catch_unwind(|| {
            ExecPolicy::parallel(4).par_map(16, |i| {
                assert!(i != 11, "boom");
                i
            })
        });
        assert!(caught.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn par_fill_matches_sequential_for_any_thread_and_block_size() {
        let f = |i: usize, slot: &mut u64| *slot = (i as u64).wrapping_mul(0x517C_C1B7) ^ 0x5A5A;
        let mut seq = vec![0u64; 257];
        ExecPolicy::Sequential.par_fill(&mut seq, 16, f);
        for threads in [1, 2, 3, 8] {
            for block in [1, 7, 16, 300] {
                let mut par = vec![0u64; 257];
                ExecPolicy::parallel(threads).par_fill(&mut par, block, f);
                assert_eq!(seq, par, "threads={threads} block={block}");
            }
        }
    }

    #[test]
    fn par_fill_handles_degenerate_sizes() {
        let p = ExecPolicy::parallel(8);
        let mut empty: Vec<usize> = vec![];
        p.par_fill(&mut empty, 4, |_, _| unreachable!());
        let mut one = vec![0usize];
        p.par_fill(&mut one, 4, |i, s| *s = i + 9);
        assert_eq!(one, vec![9]);
    }

    #[test]
    fn par_fill_propagates_scoped_telemetry() {
        let rec = ppdp_telemetry::Recorder::new();
        {
            let _scope = rec.enter();
            let mut out = vec![0usize; 32];
            ExecPolicy::parallel(4).par_fill(&mut out, 3, |i, s| {
                ppdp_telemetry::counter("exec.test.fill_items", 1);
                *s = i;
            });
        }
        assert_eq!(rec.take().counter("exec.test.fill_items"), 32);
    }

    #[test]
    fn par_fill_panic_resurfaces_on_caller() {
        let caught = std::panic::catch_unwind(|| {
            let mut out = vec![0usize; 16];
            ExecPolicy::parallel(4).par_fill(&mut out, 2, |i, s| {
                assert!(i != 11, "boom");
                *s = i;
            });
        });
        assert!(caught.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn par_zip_fill_matches_sequential_for_any_thread_and_block_size() {
        let f = |i: usize, a: &mut u64, b: &mut f64| {
            *a = (i as u64).wrapping_mul(0x517C_C1B7) ^ 0xA5A5;
            *b = i as f64 * 1.5 - 3.0;
        };
        let (mut sa, mut sb) = (vec![0u64; 257], vec![0.0f64; 257]);
        ExecPolicy::Sequential.par_zip_fill(&mut sa, &mut sb, 16, f);
        for threads in [1, 2, 3, 8] {
            for block in [1, 7, 16, 300] {
                let (mut pa, mut pb) = (vec![0u64; 257], vec![0.0f64; 257]);
                ExecPolicy::parallel(threads).par_zip_fill(&mut pa, &mut pb, block, f);
                assert_eq!(sa, pa, "threads={threads} block={block}");
                assert_eq!(sb, pb, "threads={threads} block={block}");
            }
        }
    }

    #[test]
    fn par_zip_fill3_matches_sequential_for_any_thread_and_block_size() {
        let f = |i: usize, a: &mut u64, b: &mut f64, c: &mut i32| {
            *a = (i as u64).wrapping_mul(0x9E37_79B9) ^ 0x5A5A;
            *b = i as f64 * -0.25 + 2.0;
            *c = i as i32 - 128;
        };
        let (mut sa, mut sb, mut sc) = (vec![0u64; 257], vec![0.0f64; 257], vec![0i32; 257]);
        ExecPolicy::Sequential.par_zip_fill3(&mut sa, &mut sb, &mut sc, 16, f);
        for threads in [1, 2, 3, 8] {
            for block in [1, 7, 16, 300] {
                let (mut pa, mut pb, mut pc) =
                    (vec![0u64; 257], vec![0.0f64; 257], vec![0i32; 257]);
                ExecPolicy::parallel(threads).par_zip_fill3(&mut pa, &mut pb, &mut pc, block, f);
                assert_eq!(sa, pa, "threads={threads} block={block}");
                assert_eq!(sb, pb, "threads={threads} block={block}");
                assert_eq!(sc, pc, "threads={threads} block={block}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "plane length mismatch")]
    fn par_zip_fill3_rejects_mismatched_planes() {
        let (mut a, mut b, mut c) = (vec![0usize; 3], vec![0usize; 3], vec![0usize; 4]);
        ExecPolicy::Sequential.par_zip_fill3(&mut a, &mut b, &mut c, 2, |_, _, _, _| {});
    }

    #[test]
    fn par_zip_fill_handles_degenerate_sizes() {
        let p = ExecPolicy::parallel(8);
        let (mut ea, mut eb): (Vec<usize>, Vec<usize>) = (vec![], vec![]);
        p.par_zip_fill(&mut ea, &mut eb, 4, |_, _, _| unreachable!());
        let (mut oa, mut ob) = (vec![0usize], vec![0usize]);
        p.par_zip_fill(&mut oa, &mut ob, 4, |i, a, b| {
            *a = i + 9;
            *b = i + 11;
        });
        assert_eq!((oa, ob), (vec![9], vec![11]));
    }

    #[test]
    #[should_panic(expected = "plane length mismatch")]
    fn par_zip_fill_rejects_mismatched_planes() {
        let (mut a, mut b) = (vec![0usize; 3], vec![0usize; 4]);
        ExecPolicy::Sequential.par_zip_fill(&mut a, &mut b, 2, |_, _, _| {});
    }

    #[test]
    fn par_zip_fill_traces_merge_identically_across_policies() {
        let run = |policy: ExecPolicy| {
            let col = ppdp_trace::Collector::new();
            {
                let _scope = col.enter();
                let (mut a, mut b) = (vec![0.0f64; 17], vec![0u64; 17]);
                policy.par_zip_fill(&mut a, &mut b, 4, |i, sa, sb| {
                    ppdp_telemetry::counter("trace.zip_fill_item", i as u64);
                    *sa = i as f64 * 0.5;
                    *sb = i as u64;
                });
            }
            col.take().equivalence_view()
        };
        let seq = run(ExecPolicy::Sequential);
        for threads in [1, 2, 4, 8] {
            let par = run(ExecPolicy::parallel(threads));
            assert_eq!(seq, par, "threads={threads}");
        }
        assert!(!seq.records.is_empty());
    }

    #[test]
    fn par_fill_traces_merge_identically_across_policies() {
        let run = |policy: ExecPolicy| {
            let col = ppdp_trace::Collector::new();
            {
                let _scope = col.enter();
                let mut out = vec![0.0f64; 17];
                policy.par_fill(&mut out, 4, |i, s| {
                    ppdp_telemetry::counter("trace.fill_item", i as u64);
                    *s = i as f64 * 0.5;
                });
            }
            col.take().equivalence_view()
        };
        let seq = run(ExecPolicy::Sequential);
        for threads in [1, 2, 4, 8] {
            let par = run(ExecPolicy::parallel(threads));
            assert_eq!(seq, par, "threads={threads}");
        }
        assert!(!seq.records.is_empty());
    }

    #[test]
    fn par_map_traces_merge_identically_across_policies() {
        let run = |policy: ExecPolicy| {
            let col = ppdp_trace::Collector::new();
            {
                let _scope = col.enter();
                ppdp_telemetry::counter("trace.before", 1);
                let _ = policy.par_map(17, |i| {
                    ppdp_telemetry::counter("trace.item", i as u64);
                    ppdp_telemetry::value("trace.item.value", i as f64 * 0.5);
                    i
                });
                ppdp_telemetry::counter("trace.after", 1);
            }
            col.take().equivalence_view()
        };
        let seq = run(ExecPolicy::Sequential);
        for threads in [1, 2, 4, 8] {
            let par = run(ExecPolicy::parallel(threads));
            assert_eq!(seq, par, "threads={threads}");
        }
        assert!(!seq.records.is_empty());
    }

    #[test]
    fn split_seed_is_stable_and_spreads() {
        assert_eq!(split_seed(42, 0), split_seed(42, 0), "deterministic");
        let seeds: std::collections::HashSet<u64> = (0..1000).map(|i| split_seed(7, i)).collect();
        assert_eq!(seeds.len(), 1000, "no collisions over a small range");
        assert_ne!(split_seed(1, 5), split_seed(2, 5), "seed matters");
    }

    #[test]
    fn from_env_parses_thread_counts() {
        // Serialize env mutation within this test only; other tests in
        // this binary do not read these variables.
        std::env::set_var("PPDP_THREADS", "6");
        assert_eq!(ExecPolicy::from_env(), ExecPolicy::parallel(6));
        std::env::set_var("PPDP_THREADS", "1");
        assert_eq!(ExecPolicy::from_env(), ExecPolicy::Sequential);
        std::env::remove_var("PPDP_THREADS");
        std::env::set_var("RAYON_NUM_THREADS", "3");
        assert_eq!(ExecPolicy::from_env(), ExecPolicy::parallel(3));
        std::env::remove_var("RAYON_NUM_THREADS");
    }
}
