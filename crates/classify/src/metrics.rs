//! Extended evaluation metrics: confusion matrices, per-class accuracy,
//! macro-F1 and k-fold cross-validation for the local classifiers. §3.7
//! reports plain accuracy; these finer metrics explain the volatility the
//! chapter observes on skewed datasets (a majority-collapsed classifier
//! has high accuracy but zero minority recall).

use crate::dataset::{LabeledGraph, TrainSet};
use crate::{argmax, LocalClassifier, LocalKind};

/// A confusion matrix: `counts[truth][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Builds the matrix from aligned truth/prediction label slices.
    ///
    /// # Panics
    /// Panics if lengths differ or a label exceeds `n_classes`.
    pub fn from_labels(truth: &[u16], predicted: &[u16], n_classes: usize) -> Self {
        assert_eq!(truth.len(), predicted.len(), "length mismatch");
        let mut counts = vec![vec![0usize; n_classes]; n_classes];
        for (&t, &p) in truth.iter().zip(predicted) {
            assert!(
                (t as usize) < n_classes && (p as usize) < n_classes,
                "label range"
            );
            counts[t as usize][p as usize] += 1;
        }
        Self { counts }
    }

    /// Builds the matrix from an attack's per-user distributions, scored on
    /// the unknown users of `lg`.
    pub fn from_attack(lg: &LabeledGraph<'_>, dists: &[Vec<f64>]) -> Self {
        let (mut truth, mut predicted) = (Vec::new(), Vec::new());
        for u in lg.unknown_users() {
            if let Some(y) = lg.true_label(u) {
                truth.push(y);
                predicted.push(argmax(&dists[u.0]));
            }
        }
        Self::from_labels(&truth, &predicted, lg.n_classes())
    }

    /// `counts[truth][predicted]`.
    pub fn count(&self, truth: u16, predicted: u16) -> usize {
        self.counts[truth as usize][predicted as usize]
    }

    /// Total evaluated objects.
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }

    /// Overall accuracy (1.0 on an empty matrix).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        let diag: usize = (0..self.counts.len()).map(|i| self.counts[i][i]).sum();
        diag as f64 / total as f64
    }

    /// Recall of class `y` (`None` when the class never occurs).
    pub fn recall(&self, y: u16) -> Option<f64> {
        let row: usize = self.counts[y as usize].iter().sum();
        (row > 0).then(|| self.counts[y as usize][y as usize] as f64 / row as f64)
    }

    /// Precision of class `y` (`None` when it is never predicted).
    pub fn precision(&self, y: u16) -> Option<f64> {
        let col: usize = self.counts.iter().map(|r| r[y as usize]).sum();
        (col > 0).then(|| self.counts[y as usize][y as usize] as f64 / col as f64)
    }

    /// Macro-averaged F1 over classes that occur in the truth.
    pub fn macro_f1(&self) -> f64 {
        let mut total = 0.0;
        let mut classes = 0usize;
        for y in 0..self.counts.len() {
            let Some(r) = self.recall(y as u16) else {
                continue;
            };
            let p = self.precision(y as u16).unwrap_or(0.0);
            classes += 1;
            if p + r > 0.0 {
                total += 2.0 * p * r / (p + r);
            }
        }
        if classes == 0 {
            0.0
        } else {
            total / classes as f64
        }
    }
}

/// Deterministic k-fold cross-validation accuracy of a local classifier
/// over a training set (folds are contiguous index stripes, so shuffle the
/// set beforehand if order matters).
///
/// # Panics
/// Panics unless `2 ≤ k ≤ ts.rows.len()`.
pub fn cross_validate(ts: &TrainSet, kind: LocalKind, k: usize) -> f64 {
    let n = ts.rows.len();
    assert!(k >= 2 && k <= n, "need 2 ≤ k ≤ n folds");
    let mut correct = 0usize;
    for fold in 0..k {
        let lo = fold * n / k;
        let hi = (fold + 1) * n / k;
        let train = TrainSet {
            rows: ts.rows[..lo]
                .iter()
                .chain(&ts.rows[hi..])
                .cloned()
                .collect(),
            labels: ts.labels[..lo]
                .iter()
                .chain(&ts.labels[hi..])
                .copied()
                .collect(),
            n_classes: ts.n_classes,
        };
        let clf: Box<dyn LocalClassifier> = match kind {
            LocalKind::Bayes => Box::new(crate::naive_bayes::NaiveBayes::train(&train)),
            LocalKind::Knn(kk) => Box::new(crate::knn::Knn::train(&train, kk)),
            LocalKind::Rst => Box::new(crate::eval::RstLocal::train(&train)),
        };
        for i in lo..hi {
            if clf.predict(&ts.rows[i]) == ts.labels[i] {
                correct += 1;
            }
        }
    }
    correct as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> ConfusionMatrix {
        // truth:     0 0 0 1 1 2
        // predicted: 0 0 1 1 1 0
        ConfusionMatrix::from_labels(&[0, 0, 0, 1, 1, 2], &[0, 0, 1, 1, 1, 0], 3)
    }

    #[test]
    fn counts_and_accuracy() {
        let m = matrix();
        assert_eq!(m.count(0, 0), 2);
        assert_eq!(m.count(0, 1), 1);
        assert_eq!(m.count(2, 0), 1);
        assert_eq!(m.total(), 6);
        assert!((m.accuracy() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn per_class_metrics() {
        let m = matrix();
        assert!((m.recall(0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.recall(1), Some(1.0));
        assert_eq!(m.recall(2), Some(0.0));
        assert!((m.precision(0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.precision(1).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.precision(2), None, "class 2 never predicted");
    }

    #[test]
    fn macro_f1_averages_over_present_classes() {
        let m = matrix();
        let f0 = 2.0 * (2.0 / 3.0) * (2.0 / 3.0) / (4.0 / 3.0);
        let f1 = 2.0 * (2.0 / 3.0) * 1.0 / (5.0 / 3.0);
        let expected = (f0 + f1 + 0.0) / 3.0;
        assert!((m.macro_f1() - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_vacuously_perfect() {
        let m = ConfusionMatrix::from_labels(&[], &[], 2);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.macro_f1(), 0.0);
    }

    #[test]
    fn cross_validation_learns_clean_signal() {
        // 40 rows, feature 0 determines the label perfectly.
        let ts = TrainSet {
            rows: (0..40)
                .map(|i| vec![Some((i % 2) as u16), Some((i % 5) as u16)])
                .collect(),
            labels: (0..40).map(|i| (i % 2) as u16).collect(),
            n_classes: 2,
        };
        for kind in [LocalKind::Bayes, LocalKind::Knn(3), LocalKind::Rst] {
            let acc = cross_validate(&ts, kind, 4);
            assert!(acc > 0.9, "{kind:?} should learn the copy feature: {acc}");
        }
    }

    #[test]
    #[should_panic(expected = "folds")]
    fn silly_fold_count_rejected() {
        let ts = TrainSet {
            rows: vec![vec![Some(0)]],
            labels: vec![0],
            n_classes: 1,
        };
        cross_validate(&ts, LocalKind::Bayes, 2);
    }
}
