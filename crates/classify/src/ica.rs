//! The Iterative Classification Algorithm (ICA, Algorithm 1): bootstrap
//! unknown labels with an attribute-based classifier `M_A`, then repeatedly
//! re-classify with the combined attribute+link model `M_AR` of Eq. (3.5),
//! `α·P_A{y} + β·P_L{y}`, until the label distributions converge.

use crate::dataset::LabeledGraph;
use crate::relational::{relational_dist, RelationalState};
use crate::LocalClassifier;
use ppdp_errors::{ensure, Result};
use ppdp_exec::ExecPolicy;

/// Below this many unknown users the per-node scoring is too cheap to be
/// worth spawning worker threads for; the run silently stays sequential.
/// Scheduling-only: the scored values are identical either way.
const PAR_MIN_UNKNOWNS: usize = 16;

/// ICA parameters: the α/β evidence mix of Eq. (3.5) plus iteration control.
#[derive(Debug, Clone, Copy)]
pub struct IcaConfig {
    /// Weight of the attribute-based distribution `P_A`.
    pub alpha: f64,
    /// Weight of the link-based distribution `P_L`.
    pub beta: f64,
    /// Maximum refinement iterations (step 4 of Algorithm 1).
    pub max_iters: usize,
    /// Convergence tolerance on the max per-class probability change.
    pub tol: f64,
    /// Execution policy for the per-node bootstrap and sweep scoring.
    /// Results are bitwise identical across policies and thread counts.
    pub exec: ExecPolicy,
}

impl Default for IcaConfig {
    fn default() -> Self {
        Self {
            alpha: 0.5,
            beta: 0.5,
            max_iters: 10,
            tol: 1e-6,
            exec: ExecPolicy::Sequential,
        }
    }
}

impl IcaConfig {
    /// Config with a given α/β mix and default iteration control.
    ///
    /// # Panics
    /// Panics unless `alpha, beta ≥ 0` and `alpha + beta > 0`.
    pub fn with_mix(alpha: f64, beta: f64) -> Self {
        assert!(
            alpha >= 0.0 && beta >= 0.0 && alpha + beta > 0.0,
            "bad α/β mix"
        );
        Self {
            alpha,
            beta,
            ..Self::default()
        }
    }

    /// Boundary validation for configs built as struct literals (which
    /// bypass [`IcaConfig::with_mix`]'s assertion).
    pub fn validate(&self) -> Result<()> {
        ensure(
            self.alpha.is_finite() && self.beta.is_finite(),
            format!(
                "α/β mix must be finite, got α = {}, β = {}",
                self.alpha, self.beta
            ),
        )?;
        ensure(
            self.alpha >= 0.0 && self.beta >= 0.0 && self.alpha + self.beta > 0.0,
            format!(
                "bad α/β mix: need α, β ≥ 0 and α + β > 0, got α = {}, β = {}",
                self.alpha, self.beta
            ),
        )?;
        ensure(
            self.tol.is_finite() && self.tol >= 0.0,
            format!(
                "convergence tolerance must be finite and ≥ 0, got {}",
                self.tol
            ),
        )
    }
}

/// Full outcome of an ICA run: the distributions plus the convergence
/// data ([`ica_predict`] keeps the distributions-only signature).
#[derive(Debug, Clone, PartialEq)]
pub struct IcaOutcome {
    /// Final class distribution per user (known users pinned one-hot).
    pub dists: Vec<Vec<f64>>,
    /// Refinement sweeps actually performed.
    pub iterations: usize,
    /// Max per-class probability change in the last sweep
    /// ([`f64::INFINITY`] when no sweep ran).
    pub final_delta: f64,
    /// Whether the sweep deltas dropped below `cfg.tol` within the budget.
    pub converged: bool,
    /// Total argmax-label changes across all sweeps.
    pub label_flips: usize,
    /// True when a distribution was numerically corrupt (NaN/Inf/negative
    /// mass or underflow to zero) and had to be repaired defensively.
    pub degraded: bool,
}

/// Runs ICA and returns the final class distribution of every user (known
/// users stay pinned one-hot). Convenience wrapper over [`ica_run`] for
/// callers that only need the distributions.
///
/// # Errors
/// Returns [`ppdp_errors::PpdpError::InvalidInput`] for a degenerate α/β
/// mix or a classifier whose class count disagrees with the graph's.
pub fn ica_predict(
    lg: &LabeledGraph<'_>,
    local: &dyn LocalClassifier,
    cfg: IcaConfig,
) -> Result<Vec<Vec<f64>>> {
    Ok(ica_run(lg, local, cfg)?.dists)
}

/// Runs ICA and returns distributions plus convergence data. Updates are
/// synchronous per iteration so the result is deterministic.
///
/// Numerically corrupt distributions (NaN/Inf/negative mass, underflow to
/// zero) never propagate: a corrupt attribute bootstrap falls back to the
/// uniform distribution and a corrupt combined distribution falls back to
/// the attribute-only one (the Naive-Bayes degradation of the robustness
/// plan). Repairs are counted under `ica.renormalized` and flagged on
/// [`IcaOutcome::degraded`] plus a `degraded.ica` telemetry event.
///
/// # Errors
/// Returns [`ppdp_errors::PpdpError::InvalidInput`] for a degenerate α/β
/// mix, a non-finite tolerance or a classifier whose class count disagrees
/// with the graph's.
pub fn ica_run(
    lg: &LabeledGraph<'_>,
    local: &dyn LocalClassifier,
    cfg: IcaConfig,
) -> Result<IcaOutcome> {
    cfg.validate()?;
    ensure(
        local.n_classes() == lg.n_classes(),
        format!(
            "local classifier predicts {} classes but the graph has {}",
            local.n_classes(),
            lg.n_classes()
        ),
    )?;
    let _span = ppdp_telemetry::span("ica.run");
    let unknown = lg.unknown_users();
    let mut state = RelationalState::new(lg);
    let uniform = vec![1.0 / lg.n_classes() as f64; lg.n_classes()];
    let mut repairs = 0usize;
    let exec = if unknown.len() >= PAR_MIN_UNKNOWNS {
        cfg.exec
    } else {
        ExecPolicy::Sequential
    };

    // Bootstrap (steps 1-3): attribute-only distributions for V^U. A
    // corrupt local prediction degrades to the uninformative uniform.
    let pa: Vec<Vec<f64>> = fold_flag(
        exec.par_map(unknown.len(), |i| {
            checked_dist_flag(local.predict_dist(&lg.masked_row(unknown[i])), &uniform)
        }),
        &mut repairs,
    );
    for (&u, d) in unknown.iter().zip(&pa) {
        state.set(u, d.clone());
    }

    let mut iterations = 0;
    let mut final_delta = f64::INFINITY;
    let mut converged = false;
    let mut label_flips = 0usize;
    // Flags stalled/oscillating/diverging sweep-delta trajectories as
    // `watchdog.ica.*` counters and trace events; purely observational.
    let mut watchdog =
        ppdp_trace::ConvergenceWatchdog::new(ppdp_trace::WatchdogConfig::with_tol(cfg.tol));
    // Refinement (steps 4-10): combine P_A with the relational P_L.
    // Scoring reads only the previous synchronous state, so the per-node
    // evaluations are independent and safe to fan out.
    for _ in 0..cfg.max_iters {
        iterations += 1;
        let next: Vec<Vec<f64>> = fold_flag(
            exec.par_map(unknown.len(), |i| {
                let a_dist = &pa[i];
                match relational_dist(lg, &state, unknown[i]) {
                    // A corrupt combined distribution degrades to the
                    // attribute-only bootstrap (itself already repaired).
                    Some(l_dist) => {
                        checked_dist_flag(mix(a_dist, &l_dist, cfg.alpha, cfg.beta), a_dist)
                    }
                    None => (a_dist.clone(), false),
                }
            }),
            &mut repairs,
        );
        let mut delta = 0.0f64;
        let mut flips = 0usize;
        for (&u, d) in unknown.iter().zip(next) {
            if crate::argmax(&state.dist[u.0]) != crate::argmax(&d) {
                flips += 1;
            }
            for (old, new) in state.dist[u.0].iter().zip(&d) {
                delta = delta.max((old - new).abs());
            }
            state.set(u, d);
        }
        label_flips += flips;
        final_delta = delta;
        ppdp_telemetry::value("ica.sweep_flips", flips as f64);
        ppdp_telemetry::value("ica.sweep_delta", delta);
        ppdp_trace::ica_sweep(iterations as u64, delta, flips as u64);
        if let Some(verdict) = watchdog.observe(delta) {
            ppdp_telemetry::counter(&format!("watchdog.ica.{}", verdict.as_str()), 1);
            ppdp_trace::watchdog_event("ica", verdict.as_str(), watchdog.iteration());
        }
        if delta < cfg.tol {
            converged = true;
            break;
        }
    }
    ppdp_telemetry::counter("ica.sweeps", iterations as u64);
    ppdp_telemetry::counter(
        if converged {
            "ica.converged"
        } else {
            "ica.nonconverged"
        },
        1,
    );
    let degraded = repairs > 0;
    if degraded {
        ppdp_telemetry::degradation("ica", "dist_repair");
    }
    Ok(IcaOutcome {
        dists: state.dist,
        iterations,
        final_delta,
        converged,
        label_flips,
        degraded,
    })
}

fn mix(a: &[f64], l: &[f64], alpha: f64, beta: f64) -> Vec<f64> {
    // One allocation, normalized in place: `r / z` lane-wise is the same
    // float op the historical two-vector version performed, so mixed
    // distributions are bit-identical.
    let mut raw: Vec<f64> = a.iter().zip(l).map(|(x, y)| alpha * x + beta * y).collect();
    let z: f64 = raw.iter().sum();
    if z > 0.0 {
        for r in &mut raw {
            *r /= z;
        }
        raw
    } else {
        raw.fill(1.0 / a.len() as f64);
        raw
    }
}

/// Renormalizes `d`, or returns `fallback` plus a repaired flag when `d`
/// carries NaN/Inf/negative components or its mass underflowed to zero.
/// The `ica.renormalized` counter is additive, so recording it from a
/// worker thread is order-independent; the flag lets the coordinator fold
/// the repair count deterministically.
fn checked_dist_flag(mut d: Vec<f64>, fallback: &[f64]) -> (Vec<f64>, bool) {
    let corrupt = d.iter().any(|x| !x.is_finite() || *x < 0.0);
    let z: f64 = d.iter().sum();
    if corrupt || !z.is_finite() || z <= 0.0 {
        ppdp_telemetry::counter("ica.renormalized", 1);
        return (fallback.to_vec(), true);
    }
    // Normalize in place — same `x / z` per lane as the historical
    // collect, minus one allocation per scored user per round.
    for x in &mut d {
        *x /= z;
    }
    (d, false)
}

/// Strips the repair flags from per-item results, summing them into
/// `repairs`; preserves item order.
fn fold_flag(items: Vec<(Vec<f64>, bool)>, repairs: &mut usize) -> Vec<Vec<f64>> {
    items
        .into_iter()
        .map(|(d, repaired)| {
            *repairs += usize::from(repaired);
            d
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive_bayes::NaiveBayes;
    use ppdp_graph::{CategoryId, GraphBuilder, Schema, SocialGraph, UserId};

    /// Two homophilous cliques with an informative attribute; one unknown
    /// user per clique.
    fn two_cliques() -> SocialGraph {
        let mut b = GraphBuilder::new(Schema::uniform(3, 2));
        // clique A: label 0, attr0 = 0
        let a: Vec<_> = (0..4).map(|i| b.user_with(&[0, i % 2, 0])).collect();
        // clique B: label 1, attr0 = 1
        let c: Vec<_> = (0..4).map(|i| b.user_with(&[1, i % 2, 1])).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.edge(a[i], a[j]);
                b.edge(c[i], c[j]);
            }
        }
        b.edge(a[0], c[0]); // one bridge
        b.build()
    }

    #[test]
    fn ica_recovers_clique_labels() {
        let g = two_cliques();
        let mut known = vec![true; 8];
        known[3] = false; // one unknown in clique A
        known[7] = false; // one unknown in clique B
        let lg = LabeledGraph::new(&g, CategoryId(2), known);
        let nb = NaiveBayes::train(&lg.train_set());
        let dists = ica_predict(&lg, &nb, IcaConfig::default()).unwrap();
        assert!(dists[3][0] > 0.85, "clique-A member: {:?}", dists[3]);
        assert!(dists[7][1] > 0.85, "clique-B member: {:?}", dists[7]);
    }

    #[test]
    fn known_users_stay_pinned() {
        let g = two_cliques();
        let lg = LabeledGraph::new(&g, CategoryId(2), vec![true; 8]);
        let nb = NaiveBayes::train(&lg.train_set());
        let dists = ica_predict(&lg, &nb, IcaConfig::default()).unwrap();
        assert_eq!(dists[0], vec![1.0, 0.0]);
        assert_eq!(dists[4], vec![0.0, 1.0]);
    }

    #[test]
    fn pure_attribute_mix_matches_bootstrap() {
        let g = two_cliques();
        let mut known = vec![true; 8];
        known[3] = false;
        let lg = LabeledGraph::new(&g, CategoryId(2), known);
        let nb = NaiveBayes::train(&lg.train_set());
        let ica = ica_predict(&lg, &nb, IcaConfig::with_mix(1.0, 0.0)).unwrap();
        let direct = nb.predict_dist(&lg.masked_row(UserId(3)));
        for (a, b) in ica[3].iter().zip(&direct) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn converges_within_iteration_cap() {
        let g = two_cliques();
        let mut known = vec![true; 8];
        known[3] = false;
        known[7] = false;
        let lg = LabeledGraph::new(&g, CategoryId(2), known);
        let nb = NaiveBayes::train(&lg.train_set());
        let short = ica_predict(
            &lg,
            &nb,
            IcaConfig {
                max_iters: 50,
                ..Default::default()
            },
        )
        .unwrap();
        let long = ica_predict(
            &lg,
            &nb,
            IcaConfig {
                max_iters: 500,
                ..Default::default()
            },
        )
        .unwrap();
        for (a, b) in short.iter().zip(&long) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-4, "fixed point reached early");
            }
        }
    }

    #[test]
    #[should_panic(expected = "bad α/β mix")]
    fn degenerate_mix_rejected() {
        IcaConfig::with_mix(0.0, 0.0);
    }

    #[test]
    fn degenerate_config_is_a_typed_error_at_the_boundary() {
        let g = two_cliques();
        let mut known = vec![true; 8];
        known[3] = false;
        let lg = LabeledGraph::new(&g, CategoryId(2), known);
        let nb = NaiveBayes::train(&lg.train_set());
        // Struct literals bypass `with_mix`'s assert; the run boundary
        // still rejects them with a typed error, never a panic.
        for (alpha, beta) in [
            (0.0, 0.0),
            (-1.0, 0.5),
            (f64::NAN, 0.5),
            (f64::INFINITY, 0.5),
        ] {
            let cfg = IcaConfig {
                alpha,
                beta,
                ..Default::default()
            };
            let err = ica_run(&lg, &nb, cfg).unwrap_err();
            assert_eq!(err.kind(), "invalid_input", "α={alpha}, β={beta}: {err}");
        }
        let bad_tol = IcaConfig {
            tol: f64::NAN,
            ..Default::default()
        };
        assert_eq!(
            ica_run(&lg, &nb, bad_tol).unwrap_err().kind(),
            "invalid_input"
        );
    }

    /// A local classifier that returns poisoned distributions.
    struct PoisonLocal {
        n: usize,
        value: f64,
    }

    impl crate::LocalClassifier for PoisonLocal {
        fn n_classes(&self) -> usize {
            self.n
        }
        fn predict_dist(&self, _row: &[Option<u16>]) -> Vec<f64> {
            vec![self.value; self.n]
        }
    }

    #[test]
    fn poisoned_local_classifier_degrades_instead_of_propagating_nan() {
        let g = two_cliques();
        let mut known = vec![true; 8];
        known[3] = false;
        known[7] = false;
        let lg = LabeledGraph::new(&g, CategoryId(2), known);
        for value in [f64::NAN, f64::INFINITY, -1.0, 0.0] {
            let poison = PoisonLocal { n: 2, value };
            let rec = ppdp_telemetry::Recorder::new();
            let out = {
                let _scope = rec.enter();
                ica_run(&lg, &poison, IcaConfig::default()).unwrap()
            };
            assert!(out.degraded, "value {value} must flag degradation");
            for d in &out.dists {
                let z: f64 = d.iter().sum();
                assert!(
                    d.iter().all(|p| p.is_finite() && *p >= 0.0) && (z - 1.0).abs() < 1e-9,
                    "value {value} leaked a corrupt dist: {d:?}"
                );
            }
            let report = rec.take();
            assert!(report.counter("ica.renormalized") > 0);
            assert_eq!(report.counter("degraded.ica"), 1);
            assert_eq!(report.counter("degraded.ica.dist_repair"), 1);
            assert_eq!(report.degradations(), 1);
        }
    }

    #[test]
    fn class_count_mismatch_is_rejected() {
        let g = two_cliques();
        let mut known = vec![true; 8];
        known[3] = false;
        let lg = LabeledGraph::new(&g, CategoryId(2), known);
        let poison = PoisonLocal { n: 5, value: 0.2 };
        let err = ica_run(&lg, &poison, IcaConfig::default()).unwrap_err();
        assert_eq!(err.kind(), "invalid_input");
        assert!(err.to_string().contains("5"), "{err}");
    }

    #[test]
    fn ica_run_exposes_convergence_data() {
        let g = two_cliques();
        let mut known = vec![true; 8];
        known[3] = false;
        known[7] = false;
        let lg = LabeledGraph::new(&g, CategoryId(2), known);
        let nb = NaiveBayes::train(&lg.train_set());
        let cfg = IcaConfig {
            max_iters: 200,
            ..Default::default()
        };
        let out = ica_run(&lg, &nb, cfg).unwrap();
        assert!(out.converged, "easy graph must converge: {out:?}");
        assert!(!out.degraded, "healthy run must not flag degradation");
        assert!(out.iterations >= 1 && out.iterations <= 200);
        assert!(out.final_delta < cfg.tol);
        assert_eq!(
            out.dists,
            ica_predict(&lg, &nb, cfg).unwrap(),
            "wrapper returns same dists"
        );
        // A one-sweep budget cannot reach the 1e-6 fixed point here.
        let starved = ica_run(
            &lg,
            &nb,
            IcaConfig {
                max_iters: 1,
                ..cfg
            },
        )
        .unwrap();
        assert!(!starved.converged);
        assert_eq!(starved.iterations, 1);
        assert!(starved.final_delta.is_finite());
    }

    /// A chain of homophilous cliques, one unknown user per clique: wide
    /// enough (`n_cliques ≥ PAR_MIN_UNKNOWNS`) to cross the parallelism
    /// threshold.
    fn clique_chain(n_cliques: usize) -> (SocialGraph, Vec<bool>) {
        let mut b = GraphBuilder::new(Schema::uniform(3, 2));
        let mut prev: Option<UserId> = None;
        for c in 0..n_cliques {
            let label = (c % 2) as u16;
            let members: Vec<_> = (0..4)
                .map(|i| b.user_with(&[label, (i % 2) as u16, label]))
                .collect();
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.edge(members[i], members[j]);
                }
            }
            if let Some(p) = prev {
                b.edge(p, members[0]); // bridge between cliques
            }
            prev = Some(members[0]);
        }
        let mut known = vec![true; 4 * n_cliques];
        for c in 0..n_cliques {
            known[4 * c + 3] = false;
        }
        (b.build(), known)
    }

    #[test]
    fn parallel_policy_reproduces_sequential_run_bitwise() {
        let (g, known) = clique_chain(20);
        let lg = LabeledGraph::new(&g, CategoryId(2), known);
        let nb = NaiveBayes::train(&lg.train_set());
        let sequential = ica_run(&lg, &nb, IcaConfig::default()).unwrap();
        for threads in [1, 2, 8] {
            let cfg = IcaConfig {
                exec: ppdp_exec::ExecPolicy::parallel(threads),
                ..Default::default()
            };
            let parallel = ica_run(&lg, &nb, cfg).unwrap();
            assert_eq!(sequential, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_policy_matches_sequential_telemetry_counters() {
        let (g, known) = clique_chain(20);
        let lg = LabeledGraph::new(&g, CategoryId(2), known);
        let run = |exec: ppdp_exec::ExecPolicy| {
            let poison = PoisonLocal { n: 2, value: -1.0 };
            let rec = ppdp_telemetry::Recorder::new();
            let out = {
                let _scope = rec.enter();
                ica_run(
                    &lg,
                    &poison,
                    IcaConfig {
                        exec,
                        ..Default::default()
                    },
                )
                .unwrap()
            };
            (out, rec.take().equivalence_view())
        };
        let (seq_out, seq_view) = run(ppdp_exec::ExecPolicy::Sequential);
        let (par_out, par_view) = run(ppdp_exec::ExecPolicy::parallel(4));
        assert_eq!(seq_out, par_out);
        assert!(seq_out.degraded, "poison must trigger worker-side repairs");
        assert_eq!(seq_view, par_view);
        assert!(par_view.counter("ica.renormalized") > 0);
    }

    #[test]
    fn ica_run_records_telemetry() {
        let g = two_cliques();
        let mut known = vec![true; 8];
        known[3] = false;
        let lg = LabeledGraph::new(&g, CategoryId(2), known);
        let nb = NaiveBayes::train(&lg.train_set());
        let rec = ppdp_telemetry::Recorder::new();
        let out = {
            let _scope = rec.enter();
            ica_run(&lg, &nb, IcaConfig::default()).unwrap()
        };
        let report = rec.take();
        assert_eq!(report.counter("ica.sweeps"), out.iterations as u64);
        assert_eq!(report.counter("ica.converged"), 1);
        assert_eq!(report.counter("ica.renormalized"), 0);
        assert_eq!(report.degradations(), 0);
        let flips = report
            .histogram("ica.sweep_flips")
            .expect("per-sweep flips recorded");
        assert_eq!(flips.count, out.iterations as u64);
        assert!((flips.sum - out.label_flips as f64).abs() < 1e-9);
        assert!(report.span("ica.run").is_some());
    }
}
