//! Labelled-graph views: a [`ppdp_graph::SocialGraph`] plus a designated
//! sensitive (label) category and a known/unknown split `V = V^K ∪ V^U`
//! (Problem statement §3.2.3).

use ppdp_graph::{CategoryId, SocialGraph, UserId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A training set for attribute-based classifiers: per-object attribute rows
/// (the label column is blanked) with labels drawn from `0..n_classes`.
#[derive(Debug, Clone)]
pub struct TrainSet {
    /// Attribute rows; the label column is always `None` so classifiers
    /// cannot peek at the decision attribute.
    pub rows: Vec<Vec<Option<u16>>>,
    /// Ground-truth labels, aligned with `rows`.
    pub labels: Vec<u16>,
    /// Number of classes.
    pub n_classes: usize,
}

/// A social graph with a designated sensitive category acting as the class
/// label and a known/unknown label split.
#[derive(Debug, Clone)]
pub struct LabeledGraph<'g> {
    /// The underlying social graph (attacker's view; the label column holds
    /// ground truth and is masked by the accessors below).
    pub graph: &'g SocialGraph,
    /// Sensitive category `h_r ∈ H_s` whose values are the class labels.
    pub label_cat: CategoryId,
    /// `known[u]` ⇔ `u ∈ V^K` (label visible to the attacker).
    pub known: Vec<bool>,
}

impl<'g> LabeledGraph<'g> {
    /// Builds a labelled view.
    ///
    /// # Panics
    /// Panics if `known` does not match the user count.
    pub fn new(graph: &'g SocialGraph, label_cat: CategoryId, known: Vec<bool>) -> Self {
        assert_eq!(known.len(), graph.user_count(), "known mask size mismatch");
        Self {
            graph,
            label_cat,
            known,
        }
    }

    /// Builds a view where a random fraction `frac_known` of *labelled*
    /// users form `V^K` (deterministic for a given `seed`).
    pub fn with_random_split(
        graph: &'g SocialGraph,
        label_cat: CategoryId,
        frac_known: f64,
        seed: u64,
    ) -> Self {
        let labelled: Vec<UserId> = graph
            .users()
            .filter(|&u| graph.value(u, label_cat).is_some())
            .collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut shuffled = labelled;
        shuffled.shuffle(&mut rng);
        let take = ((shuffled.len() as f64) * frac_known).round() as usize;
        let mut known = vec![false; graph.user_count()];
        for &u in &shuffled[..take.min(shuffled.len())] {
            known[u.0] = true;
        }
        Self::new(graph, label_cat, known)
    }

    /// Number of classes = arity of the label category.
    pub fn n_classes(&self) -> usize {
        self.graph.schema().arity(self.label_cat) as usize
    }

    /// Ground-truth label of `u`, if published.
    pub fn true_label(&self, u: UserId) -> Option<u16> {
        self.graph.value(u, self.label_cat)
    }

    /// The attribute row of `u` with the label column masked out — what an
    /// attribute-based classifier is allowed to see.
    pub fn masked_row(&self, u: UserId) -> Vec<Option<u16>> {
        let mut row = self.graph.attr_row(u).to_vec();
        row[self.label_cat.0] = None;
        row
    }

    /// Users in `V^K` (labels known to the attacker).
    pub fn known_users(&self) -> Vec<UserId> {
        self.graph.users().filter(|u| self.known[u.0]).collect()
    }

    /// Users in `V^U` that do have ground truth (evaluation targets).
    pub fn unknown_users(&self) -> Vec<UserId> {
        self.graph
            .users()
            .filter(|&u| !self.known[u.0] && self.true_label(u).is_some())
            .collect()
    }

    /// Builds the training set from `V^K`.
    pub fn train_set(&self) -> TrainSet {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for u in self.known_users() {
            if let Some(y) = self.true_label(u) {
                rows.push(self.masked_row(u));
                labels.push(y);
            }
        }
        TrainSet {
            rows,
            labels,
            n_classes: self.n_classes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdp_graph::{GraphBuilder, Schema};

    fn graph() -> SocialGraph {
        let mut b = GraphBuilder::new(Schema::uniform(3, 2));
        for i in 0..6u16 {
            b.user_with(&[i % 2, (i / 2) % 2, i % 2]); // col 2 = label, corr. with col 0
        }
        b.build()
    }

    #[test]
    fn masked_row_hides_label() {
        let g = graph();
        let lg = LabeledGraph::new(&g, CategoryId(2), vec![true; 6]);
        let row = lg.masked_row(UserId(1));
        assert_eq!(row[2], None);
        assert_eq!(row[0], Some(1));
    }

    #[test]
    fn random_split_is_deterministic_and_sized() {
        let g = graph();
        let a = LabeledGraph::with_random_split(&g, CategoryId(2), 0.5, 7);
        let b = LabeledGraph::with_random_split(&g, CategoryId(2), 0.5, 7);
        assert_eq!(a.known, b.known);
        assert_eq!(a.known_users().len(), 3);
        assert_eq!(a.unknown_users().len(), 3);
    }

    #[test]
    fn train_set_matches_known_users() {
        let g = graph();
        let lg = LabeledGraph::with_random_split(&g, CategoryId(2), 0.5, 7);
        let ts = lg.train_set();
        assert_eq!(ts.rows.len(), 3);
        assert_eq!(ts.n_classes, 2);
        assert!(ts.rows.iter().all(|r| r[2].is_none()));
    }

    #[test]
    fn unlabeled_users_excluded_from_eval() {
        let mut g = graph();
        g.clear_value(UserId(5), CategoryId(2));
        let lg = LabeledGraph::new(&g, CategoryId(2), vec![false; 6]);
        assert_eq!(lg.unknown_users().len(), 5);
    }
}
