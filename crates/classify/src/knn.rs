//! K-nearest-neighbour classifier with overlap (matching-categories)
//! distance — the third attribute-based classifier of §3.7.2.

use crate::dataset::TrainSet;
use crate::LocalClassifier;

/// Trained KNN model over categorical rows. Distance between two rows is
/// the number of columns that do **not** match, where a match requires both
/// values published and equal — so hiding attributes genuinely increases
/// distance, which is what the sanitization experiments rely on.
#[derive(Debug, Clone)]
pub struct Knn {
    k: usize,
    rows: Vec<Vec<Option<u16>>>,
    labels: Vec<u16>,
    n_classes: usize,
}

impl Knn {
    /// Stores the training set for lazy classification.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn train(ts: &TrainSet, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            rows: ts.rows.clone(),
            labels: ts.labels.clone(),
            n_classes: ts.n_classes,
        }
    }

    /// Overlap distance: columns where the two rows fail to match.
    pub fn distance(a: &[Option<u16>], b: &[Option<u16>]) -> usize {
        a.iter()
            .zip(b)
            .filter(|(x, y)| !(x.is_some() && x == y))
            .count()
    }
}

impl LocalClassifier for Knn {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_dist(&self, row: &[Option<u16>]) -> Vec<f64> {
        if self.rows.is_empty() {
            return vec![1.0 / self.n_classes as f64; self.n_classes];
        }
        // Select the k smallest distances without a full sort: selection via
        // partial sort of (distance, index) pairs keeps ties deterministic.
        let mut scored: Vec<(usize, usize)> = self
            .rows
            .iter()
            .enumerate()
            .map(|(i, r)| (Self::distance(row, r), i))
            .collect();
        let k = self.k.min(scored.len());
        scored.select_nth_unstable(k - 1);
        scored.truncate(k);
        scored.sort_unstable();
        let mut votes = vec![0usize; self.n_classes];
        for &(_, i) in &scored {
            votes[self.labels[i] as usize] += 1;
        }
        let total: usize = votes.iter().sum();
        votes.iter().map(|&v| v as f64 / total as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts() -> TrainSet {
        TrainSet {
            rows: vec![
                vec![Some(0), Some(0)],
                vec![Some(0), Some(1)],
                vec![Some(1), Some(1)],
                vec![Some(1), Some(0)],
            ],
            labels: vec![0, 0, 1, 1],
            n_classes: 2,
        }
    }

    #[test]
    fn distance_counts_mismatches_and_missing() {
        assert_eq!(Knn::distance(&[Some(1), Some(2)], &[Some(1), Some(2)]), 0);
        assert_eq!(Knn::distance(&[Some(1), Some(2)], &[Some(1), Some(3)]), 1);
        // Missing never matches, even against missing.
        assert_eq!(Knn::distance(&[None, Some(2)], &[None, Some(2)]), 1);
        assert_eq!(Knn::distance(&[None, None], &[Some(0), None]), 2);
    }

    #[test]
    fn nearest_neighbour_wins() {
        let knn = Knn::train(&ts(), 1);
        assert_eq!(knn.predict(&[Some(0), Some(0)]), 0);
        assert_eq!(knn.predict(&[Some(1), Some(1)]), 1);
    }

    #[test]
    fn k3_majority_vote() {
        let knn = Knn::train(&ts(), 3);
        let d = knn.predict_dist(&[Some(0), Some(0)]);
        // Neighbours at distance 0,1,1: rows 0 (y=0), 1 (y=0), 3 (y=1).
        assert!((d[0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn k_larger_than_train_set_uses_all() {
        let knn = Knn::train(&ts(), 99);
        let d = knn.predict_dist(&[Some(0), Some(0)]);
        assert!((d[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_train_set_is_uniform() {
        let knn = Knn::train(
            &TrainSet {
                rows: vec![],
                labels: vec![],
                n_classes: 4,
            },
            3,
        );
        let d = knn.predict_dist(&[Some(0)]);
        assert!(d.iter().all(|&p| (p - 0.25).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        Knn::train(&ts(), 0);
    }
}
