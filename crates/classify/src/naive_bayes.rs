//! Categorical Naive Bayes with Laplace smoothing — the classical local
//! classifier the dissertation's prior work used in each ICA iteration
//! (§3.1) and one of the three attribute-based classifiers of §3.7.2.

use crate::dataset::TrainSet;
use crate::LocalClassifier;
use std::collections::HashMap;

/// Trained categorical Naive Bayes model. Missing attribute values are
/// skipped at both training and prediction time (standard treatment for
/// incomplete social data).
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    n_classes: usize,
    /// `class_counts[y]` = training objects with label `y`.
    class_counts: Vec<usize>,
    /// `value_counts[c][(v, y)]` = objects with value `v` in column `c` and
    /// label `y`.
    value_counts: Vec<HashMap<(u16, u16), usize>>,
    /// `seen_values[c]` = number of distinct observed values in column `c`
    /// (the Laplace smoothing denominator term).
    seen_values: Vec<usize>,
    /// Smoothing pseudo-count (Laplace α; default 1).
    alpha: f64,
}

impl NaiveBayes {
    /// Trains on `ts` with Laplace smoothing `alpha = 1`.
    pub fn train(ts: &TrainSet) -> Self {
        Self::train_with_alpha(ts, 1.0)
    }

    /// Trains with an explicit smoothing pseudo-count.
    ///
    /// # Panics
    /// Panics if `alpha <= 0` or the training set is malformed.
    pub fn train_with_alpha(ts: &TrainSet, alpha: f64) -> Self {
        assert!(alpha > 0.0, "smoothing must be positive");
        let width = ts.rows.first().map_or(0, Vec::len);
        let mut class_counts = vec![0usize; ts.n_classes];
        let mut value_counts = vec![HashMap::new(); width];
        let mut distinct: Vec<std::collections::HashSet<u16>> =
            vec![std::collections::HashSet::new(); width];
        for (row, &y) in ts.rows.iter().zip(&ts.labels) {
            assert!((y as usize) < ts.n_classes, "label out of range");
            class_counts[y as usize] += 1;
            for (c, v) in row.iter().enumerate() {
                if let Some(v) = v {
                    *value_counts[c].entry((*v, y)).or_insert(0) += 1;
                    distinct[c].insert(*v);
                }
            }
        }
        Self {
            n_classes: ts.n_classes,
            class_counts,
            value_counts,
            seen_values: distinct.iter().map(|s| s.len().max(1)).collect(),
            alpha,
        }
    }

    fn log_likelihood(&self, row: &[Option<u16>], y: u16) -> f64 {
        let n_y = self.class_counts[y as usize] as f64;
        let total: usize = self.class_counts.iter().sum();
        // log prior with smoothing.
        let mut ll =
            ((n_y + self.alpha) / (total as f64 + self.alpha * self.n_classes as f64)).ln();
        for (c, v) in row.iter().enumerate() {
            if c >= self.value_counts.len() {
                break;
            }
            if let Some(v) = v {
                let cnt = *self.value_counts[c].get(&(*v, y)).unwrap_or(&0) as f64;
                let denom = n_y + self.alpha * self.seen_values[c] as f64;
                ll += ((cnt + self.alpha) / denom).ln();
            }
        }
        ll
    }
}

impl LocalClassifier for NaiveBayes {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_dist(&self, row: &[Option<u16>]) -> Vec<f64> {
        let lls: Vec<f64> = (0..self.n_classes)
            .map(|y| self.log_likelihood(row, y as u16))
            .collect();
        softmax_from_log(&lls)
    }
}

/// Converts log-scores into a normalized distribution, guarding overflow by
/// subtracting the maximum.
pub(crate) fn softmax_from_log(lls: &[f64]) -> Vec<f64> {
    let max = lls.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = lls.iter().map(|&l| (l - max).exp()).collect();
    let z: f64 = exps.iter().sum();
    exps.iter().map(|&e| e / z).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts() -> TrainSet {
        // Column 0 predicts the label perfectly; column 1 is noise.
        TrainSet {
            rows: vec![
                vec![Some(0), Some(0)],
                vec![Some(0), Some(1)],
                vec![Some(1), Some(0)],
                vec![Some(1), Some(1)],
            ],
            labels: vec![0, 0, 1, 1],
            n_classes: 2,
        }
    }

    #[test]
    fn learns_perfect_feature() {
        let nb = NaiveBayes::train(&ts());
        assert_eq!(nb.predict(&[Some(0), None]), 0);
        assert_eq!(nb.predict(&[Some(1), None]), 1);
        let d = nb.predict_dist(&[Some(0), None]);
        assert!(d[0] > 0.7, "confident on the informative feature: {d:?}");
    }

    #[test]
    fn missing_everything_returns_prior() {
        let mut t = ts();
        t.labels = vec![0, 0, 0, 1]; // skewed prior
        let nb = NaiveBayes::train(&t);
        let d = nb.predict_dist(&[None, None]);
        assert!(d[0] > d[1]);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unseen_value_smoothed_not_zero() {
        let nb = NaiveBayes::train(&ts());
        let d = nb.predict_dist(&[Some(7), Some(7)]);
        assert!(d.iter().all(|&p| p > 0.0));
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distribution_normalized() {
        let nb = NaiveBayes::train(&ts());
        for row in [[Some(0), Some(1)], [Some(1), Some(0)], [None, Some(0)]] {
            let d = nb.predict_dist(&row);
            assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "smoothing")]
    fn zero_alpha_rejected() {
        NaiveBayes::train_with_alpha(&ts(), 0.0);
    }

    #[test]
    fn softmax_handles_extreme_logs() {
        let d = softmax_from_log(&[-1000.0, -1001.0]);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(d[0] > d[1]);
    }
}
