//! Gibbs-sampling collective classification — the second collective
//! algorithm §3.4 names alongside ICA ("such as the Iterative
//! Classification Algorithm (ICA) [73] and Gibbs sampling (Gibbs) [74]").
//!
//! Each unknown user's label is resampled from the combined
//! attribute+relational conditional `α·P_A + β·P_L` given the current hard
//! labels of everyone else; after a burn-in period, per-user label
//! frequencies across the retained samples estimate the marginal
//! distributions. Seeded and fully deterministic.

use crate::dataset::LabeledGraph;
use crate::relational::{masked_weight, one_hot};
use crate::LocalClassifier;
use ppdp_durable::{CheckpointKey, CheckpointStore, Codec};
use ppdp_errors::{ensure, Result};
use ppdp_exec::{split_seed, ExecPolicy};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Sweep schedule inside one chain.
///
/// The schedule is part of the sampler's definition, not an execution
/// detail: `Scan` and `Tiled` are *different* (equally valid) Gibbs
/// samplers, each bitwise-reproducible across execution policies for a
/// fixed config. Changing `tile` changes the walk, exactly like changing
/// the seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GibbsSweep {
    /// Historical in-place scan: one RNG walks every unknown user in
    /// order, each resample immediately visible to later users in the
    /// same sweep. Inherently sequential within a chain (parallelism
    /// comes from running chains concurrently).
    #[default]
    Scan,
    /// Cache-blocked Jacobi sweep: the unknown users are partitioned into
    /// fixed `tile`-sized ranges; every tile reads the *previous* sweep's
    /// labels (double-buffered) and draws from its own RNG seeded
    /// `split_seed(split_seed(chain_seed, round), tile_index)`, so tiles
    /// are order-independent and run through [`ExecPolicy::par_map`] with
    /// bitwise-identical results for Sequential vs Parallel{1,2,8}.
    Tiled {
        /// Unknown users per tile (≥ 1); sized so a tile's labels,
        /// weights and conditionals stay L2-resident.
        tile: usize,
    },
}

/// Gibbs-sampler parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GibbsConfig {
    /// Weight of the attribute-based conditional.
    pub alpha: f64,
    /// Weight of the link-based conditional.
    pub beta: f64,
    /// Samples discarded before counting.
    pub burn_in: usize,
    /// Samples retained for the frequency estimate.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
    /// Independent Markov chains whose retained samples are pooled. Chain
    /// `c` runs on the seed `split_seed(seed, c)` (plain `seed` when
    /// `chains == 1`), so the pooled estimate depends only on the config —
    /// never on the execution policy or thread count.
    pub chains: usize,
    /// Execution policy for running the independent chains (and, under
    /// [`GibbsSweep::Tiled`], the tiles inside each chain).
    pub exec: ExecPolicy,
    /// Within-chain sweep schedule; see [`GibbsSweep`].
    pub sweep: GibbsSweep,
    /// Precompute every unknown user's neighbour [`masked_weight`] row
    /// once per run (the default) instead of recomputing per edge per
    /// sweep. A pure optimization: the cached values are bitwise the ones
    /// the recomputation produces, so outcomes and checkpoint keys are
    /// identical either way. `false` exists for baseline measurement (the
    /// scale bench's `scalar` rows reproduce the pre-caching kernel).
    pub weight_cache: bool,
}

impl Default for GibbsConfig {
    fn default() -> Self {
        Self {
            alpha: 0.5,
            beta: 0.5,
            burn_in: 50,
            samples: 200,
            seed: 7,
            chains: 1,
            exec: ExecPolicy::Sequential,
            sweep: GibbsSweep::Scan,
            weight_cache: true,
        }
    }
}

/// Full outcome of a Gibbs run: the distributions plus chain statistics
/// ([`gibbs_predict`] keeps the distributions-only signature).
#[derive(Debug, Clone, PartialEq)]
pub struct GibbsOutcome {
    /// Final class distribution per user (known users pinned one-hot).
    pub dists: Vec<Vec<f64>>,
    /// Resampling sweeps performed, `chains × (burn_in + samples)`.
    pub sweeps: usize,
    /// Total hard-label changes across all sweeps of all chains — the
    /// chains' mixing activity (0 means every chain froze immediately).
    pub label_flips: usize,
    /// True when a conditional was numerically corrupt (NaN/Inf/negative
    /// mass or underflow to zero) and a uniform resample was used instead.
    pub degraded: bool,
}

/// Runs Gibbs-sampling collective classification and returns per-user
/// label distributions (known users stay pinned one-hot). Convenience
/// wrapper over [`gibbs_run`].
///
/// # Errors
/// Returns [`ppdp_errors::PpdpError::InvalidInput`] for a degenerate
/// config (see [`gibbs_run`]).
pub fn gibbs_predict(
    lg: &LabeledGraph<'_>,
    local: &dyn LocalClassifier,
    cfg: GibbsConfig,
) -> Result<Vec<Vec<f64>>> {
    Ok(gibbs_run(lg, local, cfg)?.dists)
}

/// Runs Gibbs-sampling collective classification and returns distributions
/// plus chain statistics. Seeded and fully deterministic.
///
/// A numerically corrupt conditional (NaN/Inf/negative mass, zero total)
/// never aborts the chain: that step resamples uniformly instead, counted
/// under `gibbs.renormalized` and flagged on [`GibbsOutcome::degraded`]
/// plus a `degraded.gibbs` telemetry event.
///
/// # Errors
/// Returns [`ppdp_errors::PpdpError::InvalidInput`] when no samples are
/// retained, the α/β mix is degenerate or the classifier's class count
/// disagrees with the graph's.
pub fn gibbs_run(
    lg: &LabeledGraph<'_>,
    local: &dyn LocalClassifier,
    cfg: GibbsConfig,
) -> Result<GibbsOutcome> {
    validate(lg, local, &cfg)?;
    let _span = ppdp_telemetry::span("gibbs.run");
    let unknown = lg.unknown_users();

    // Cache the attribute conditionals (they never change).
    let pa: Vec<Vec<f64>> = unknown
        .iter()
        .map(|&u| local.predict_dist(&lg.masked_row(u)))
        .collect();
    let wc = if cfg.weight_cache {
        WeightCache::build(lg, &unknown, cfg.exec)
    } else {
        WeightCache::Passthrough
    };

    let seeds = chain_seeds(&cfg);
    // Live progress across all chains: each chain bumps the
    // `gibbs.sweeps_done` live counter per sweep, and the metrics
    // heartbeat derives progress/ETA against this declared total.
    ppdp_telemetry::target(
        "gibbs.sweeps_done",
        (cfg.chains * (cfg.burn_in + cfg.samples)) as f64,
    );
    let chain_outs = run_chains(lg, &cfg, &unknown, &pa, &wc, &seeds, 0, seeds.len());
    Ok(pool_chains(lg, &cfg, &chain_outs))
}

/// Runs the chain range `[start, end)`. `Scan` chains spread across the
/// execution policy; `Tiled` chains run in order on the coordinator so the
/// policy's threads work the tiles *inside* each chain instead (nesting
/// `par_map` would oversubscribe without changing any result).
#[allow(clippy::too_many_arguments)]
fn run_chains(
    lg: &LabeledGraph<'_>,
    cfg: &GibbsConfig,
    unknown: &[ppdp_graph::UserId],
    pa: &[Vec<f64>],
    wc: &WeightCache,
    seeds: &[u64],
    start: usize,
    end: usize,
) -> Vec<ChainOut> {
    match cfg.sweep {
        GibbsSweep::Scan => cfg.exec.par_map(end - start, |i| {
            run_chain(lg, cfg, unknown, pa, wc, seeds[start + i])
        }),
        GibbsSweep::Tiled { .. } => (start..end)
            .map(|c| run_chain(lg, cfg, unknown, pa, wc, seeds[c]))
            .collect(),
    }
}

/// CSR arena of [`masked_weight`] values for every unknown user's
/// neighbour list, row `i` aligned element-for-element with
/// `lg.graph.neighbors(unknown[i])`.
///
/// `masked_weight` is a pure function of the published attribute table, so
/// the weights are identical for every sweep of every chain — the sampler
/// historically recomputed them per edge *per sweep*, an O(degree ×
/// attributes) inner cost that dominated the 10⁶-node rows. Building the
/// cache once and streaming `f64` lanes from a flat arena leaves the sweep
/// loop with a pure gather, and because the cached values are bitwise the
/// same ones the recomputation produced, every walk is unchanged.
///
/// [`WeightCache::Passthrough`] keeps the historical per-edge-per-sweep
/// recomputation alive as a measurable baseline
/// ([`GibbsConfig::weight_cache`] = `false`): `row_into` computes the same
/// weights into the caller's scratch, so the two modes are bitwise
/// interchangeable and differ only in where the O(degree × attributes)
/// cost is paid.
enum WeightCache {
    Cached { off: Vec<usize>, w: Vec<f64> },
    Passthrough,
}

impl WeightCache {
    fn build(lg: &LabeledGraph<'_>, unknown: &[ppdp_graph::UserId], exec: ExecPolicy) -> Self {
        let _span = ppdp_telemetry::span("gibbs.weight_cache");
        // Rows are independent pure computations collected in index order,
        // so a parallel build is bitwise-identical to a sequential one.
        let rows: Vec<Vec<f64>> = exec.par_map(unknown.len(), |i| {
            let u = unknown[i];
            lg.graph
                .neighbors(u)
                .iter()
                .map(|&j| masked_weight(lg, u, j))
                .collect()
        });
        let mut off = Vec::with_capacity(unknown.len() + 1);
        off.push(0usize);
        let total: usize = rows.iter().map(Vec::len).sum();
        let mut w = Vec::with_capacity(total);
        for row in &rows {
            w.extend_from_slice(row);
            off.push(w.len());
        }
        ppdp_metrics::counter("gibbs.cached_weights", w.len() as u64);
        Self::Cached { off, w }
    }

    /// The `masked_weight` row for `unknown[i]` — a gather from the arena
    /// when cached, a fresh per-edge recomputation into `scratch` when
    /// passing through. Both return the identical `f64` lanes.
    #[inline]
    fn row_into<'a>(
        &'a self,
        lg: &LabeledGraph<'_>,
        u: ppdp_graph::UserId,
        i: usize,
        scratch: &'a mut Vec<f64>,
    ) -> &'a [f64] {
        match self {
            Self::Cached { off, w } => &w[off[i]..off[i + 1]],
            Self::Passthrough => {
                scratch.clear();
                scratch.extend(
                    lg.graph
                        .neighbors(u)
                        .iter()
                        .map(|&j| masked_weight(lg, u, j)),
                );
                scratch
            }
        }
    }
}

fn validate(lg: &LabeledGraph<'_>, local: &dyn LocalClassifier, cfg: &GibbsConfig) -> Result<()> {
    ensure(cfg.samples > 0, "need at least one retained sample")?;
    ensure(cfg.chains > 0, "need at least one chain")?;
    ensure(
        cfg.alpha.is_finite()
            && cfg.beta.is_finite()
            && cfg.alpha >= 0.0
            && cfg.beta >= 0.0
            && cfg.alpha + cfg.beta > 0.0,
        format!(
            "bad α/β mix: need α, β ≥ 0 and α + β > 0, got α = {}, β = {}",
            cfg.alpha, cfg.beta
        ),
    )?;
    if let GibbsSweep::Tiled { tile } = cfg.sweep {
        ensure(tile > 0, "tiled sweep needs a tile size of at least one")?;
    }
    ensure(
        local.n_classes() == lg.n_classes(),
        format!(
            "local classifier predicts {} classes but the graph has {}",
            local.n_classes(),
            lg.n_classes()
        ),
    )
}

/// Chain seeds depend only on the config: a single chain keeps the
/// historical `cfg.seed` walk, multiple chains decorrelate via
/// `split_seed`. The execution policy never touches the seeds.
fn chain_seeds(cfg: &GibbsConfig) -> Vec<u64> {
    if cfg.chains == 1 {
        vec![cfg.seed]
    } else {
        (0..cfg.chains as u64)
            .map(|c| split_seed(cfg.seed, c))
            .collect()
    }
}

fn pool_chains(lg: &LabeledGraph<'_>, cfg: &GibbsConfig, chain_outs: &[ChainOut]) -> GibbsOutcome {
    let n_classes = lg.n_classes();
    // Pool the chains in chain order (not completion order): retained
    // counts and flip totals are additive; the per-sweep flip histogram is
    // recorded here on the coordinator so even its order-dependent fields
    // (`last`) match the sequential run exactly.
    let mut counts: Vec<Vec<usize>> = vec![vec![0; n_classes]; lg.graph.user_count()];
    let mut label_flips = 0usize;
    let mut repairs = 0usize;
    for (chain_idx, chain) in chain_outs.iter().enumerate() {
        for (total, per_chain) in counts.iter_mut().zip(&chain.counts) {
            for (t, c) in total.iter_mut().zip(per_chain) {
                *t += c;
            }
        }
        label_flips += chain.label_flips;
        repairs += chain.repairs;
        // Sampler flip counts plateau at the chain's mixing rate rather
        // than decaying, so only the divergence check is meaningful here.
        let mut watchdog =
            ppdp_trace::ConvergenceWatchdog::new(ppdp_trace::WatchdogConfig::divergence_only(0.0));
        for (sweep, &flips) in chain.sweep_flips.iter().enumerate() {
            ppdp_telemetry::value("gibbs.sweep_flips", flips as f64);
            ppdp_trace::gibbs_sweep(chain_idx as u64, sweep as u64, flips as u64);
            if let Some(verdict) = watchdog.observe(flips as f64) {
                ppdp_telemetry::counter(&format!("watchdog.gibbs.{}", verdict.as_str()), 1);
                ppdp_trace::watchdog_event("gibbs", verdict.as_str(), watchdog.iteration());
            }
        }
    }
    let sweeps = cfg.chains * (cfg.burn_in + cfg.samples);
    ppdp_telemetry::counter("gibbs.sweeps", sweeps as u64);

    let dists = lg
        .graph
        .users()
        .map(|u| {
            if lg.known[u.0] {
                if let Some(y) = lg.true_label(u) {
                    return one_hot(y, n_classes);
                }
            }
            let total: usize = counts[u.0].iter().sum();
            if total == 0 {
                vec![1.0 / n_classes as f64; n_classes]
            } else {
                counts[u.0]
                    .iter()
                    .map(|&c| c as f64 / total as f64)
                    .collect()
            }
        })
        .collect();
    let degraded = repairs > 0;
    if degraded {
        ppdp_telemetry::degradation("gibbs", "uniform_sample");
    }
    GibbsOutcome {
        dists,
        sweeps,
        label_flips,
        degraded,
    }
}

/// Checkpointed state of a partially completed multi-chain Gibbs run: the
/// full [`ChainOut`] contribution of every *completed* chain, in chain
/// order. Chains are independent given their seeds, so a resumed run
/// simply skips the completed prefix and re-runs the rest — pooling is
/// in chain order either way, making the resumed outcome bitwise-identical
/// to an uninterrupted run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GibbsCheckpoint {
    counts: Vec<Vec<Vec<usize>>>,
    label_flips: Vec<usize>,
    repairs: Vec<usize>,
    sweep_flips: Vec<Vec<usize>>,
}

impl GibbsCheckpoint {
    /// Number of completed chains recorded.
    pub fn chains_done(&self) -> usize {
        self.counts.len()
    }

    fn push(&mut self, chain: &ChainOut) {
        self.counts.push(chain.counts.clone());
        self.label_flips.push(chain.label_flips);
        self.repairs.push(chain.repairs);
        self.sweep_flips.push(chain.sweep_flips.clone());
    }

    fn restore(&self) -> Vec<ChainOut> {
        (0..self.chains_done())
            .map(|c| ChainOut {
                counts: self.counts[c].clone(),
                label_flips: self.label_flips[c],
                repairs: self.repairs[c],
                sweep_flips: self.sweep_flips[c].clone(),
            })
            .collect()
    }

    /// Internal consistency: parallel vectors aligned, counts shaped for
    /// this graph. A failed check means a foreign/corrupt snapshot; the
    /// loader falls back to a cold start.
    fn is_consistent(&self, lg: &LabeledGraph<'_>, cfg: &GibbsConfig) -> bool {
        let n = self.chains_done();
        n <= cfg.chains
            && self.label_flips.len() == n
            && self.repairs.len() == n
            && self.sweep_flips.len() == n
            && self.counts.iter().all(|per_chain| {
                per_chain.len() == lg.graph.user_count()
                    && per_chain.iter().all(|row| row.len() == lg.n_classes())
            })
            && self
                .sweep_flips
                .iter()
                .all(|f| f.len() == cfg.burn_in + cfg.samples)
    }
}

impl Codec for GibbsCheckpoint {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.counts.encode_into(out);
        self.label_flips.encode_into(out);
        self.repairs.encode_into(out);
        self.sweep_flips.encode_into(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self> {
        Ok(GibbsCheckpoint {
            counts: Codec::decode(input)?,
            label_flips: Codec::decode(input)?,
            repairs: Codec::decode(input)?,
            sweep_flips: Codec::decode(input)?,
        })
    }
}

/// The checkpoint key a [`gibbs_run_resumable`] run files its state under.
/// The digest covers the graph (structure, attributes, known mask, target
/// category) and every sampling parameter; the exec fingerprint is `"any"`
/// because chain outputs are policy-invariant. The *local classifier* is
/// not digestible through its trait object — callers running different
/// classifiers over the same graph must use distinct `run_label`s.
pub fn gibbs_checkpoint_key(
    run_label: &str,
    lg: &LabeledGraph<'_>,
    cfg: &GibbsConfig,
) -> CheckpointKey {
    let input = format!(
        "{:?}|{:?}|{:?}|{}|{}|{}|{}|{}|{:?}",
        lg.graph,
        lg.known,
        lg.label_cat,
        cfg.alpha.to_bits(),
        cfg.beta.to_bits(),
        cfg.burn_in,
        cfg.samples,
        cfg.chains,
        cfg.sweep,
    );
    CheckpointKey::new(
        format!("gibbs/{run_label}"),
        cfg.seed,
        "any",
        input.as_bytes(),
    )
}

/// [`gibbs_run`] with chain-level checkpointing: chains run in batches of
/// the policy's thread count, and after each batch the completed chains'
/// contributions are checkpointed (atomic tmp + fsync + rename). A rerun
/// after a kill restores the completed chains — re-emitting their
/// `gibbs.renormalized` telemetry so scoped recorders see the same totals
/// — and samples only the rest. The outcome is bitwise-identical to an
/// uninterrupted [`gibbs_run`] with the same config.
///
/// # Errors
/// As [`gibbs_run`], plus [`ppdp_errors::PpdpError::Io`] when a
/// checkpoint cannot be written.
pub fn gibbs_run_resumable(
    lg: &LabeledGraph<'_>,
    local: &dyn LocalClassifier,
    cfg: GibbsConfig,
    store: &CheckpointStore,
    run_label: &str,
) -> Result<GibbsOutcome> {
    validate(lg, local, &cfg)?;
    let _span = ppdp_telemetry::span("gibbs.run");
    let unknown = lg.unknown_users();
    let pa: Vec<Vec<f64>> = unknown
        .iter()
        .map(|&u| local.predict_dist(&lg.masked_row(u)))
        .collect();
    let wc = if cfg.weight_cache {
        WeightCache::build(lg, &unknown, cfg.exec)
    } else {
        WeightCache::Passthrough
    };
    let seeds = chain_seeds(&cfg);

    let key = gibbs_checkpoint_key(run_label, lg, &cfg);
    let mut ckpt = store
        .load::<GibbsCheckpoint>(&key)
        .filter(|c| c.is_consistent(lg, &cfg))
        .unwrap_or_default();
    let mut chain_outs = ckpt.restore();
    if !chain_outs.is_empty() {
        // Restored chains already paid their in-chain telemetry in the
        // killed process; re-emit the additive counters so a scoped
        // recorder around this run sees uninterrupted totals.
        let repairs: u64 = chain_outs.iter().map(|c| c.repairs as u64).sum();
        if repairs > 0 {
            ppdp_telemetry::counter("gibbs.renormalized", repairs);
        }
        ppdp_telemetry::counter("gibbs.checkpoint.resumed_chains", chain_outs.len() as u64);
        ppdp_trace::supervisor_event("checkpoint_resume", run_label, chain_outs.len() as u64);
    }

    ppdp_telemetry::target(
        "gibbs.sweeps_done",
        (cfg.chains * (cfg.burn_in + cfg.samples)) as f64,
    );
    let batch = cfg.exec.threads().max(1);
    while chain_outs.len() < seeds.len() {
        let start = chain_outs.len();
        let end = (start + batch).min(seeds.len());
        let outs = run_chains(lg, &cfg, &unknown, &pa, &wc, &seeds, start, end);
        for out in &outs {
            ckpt.push(out);
        }
        chain_outs.extend(outs);
        // The save is the durability point: a kill after it replays every
        // chain up to and including this batch.
        store.save(&key, &ckpt)?;
        ppdp_telemetry::counter("gibbs.checkpoint.saved", 1);
        ppdp_trace::supervisor_event("checkpoint_save", run_label, chain_outs.len() as u64);
    }
    Ok(pool_chains(lg, &cfg, &chain_outs))
}

/// Everything one chain contributes to the pooled estimate; merged by the
/// coordinator in chain order so results are policy-independent.
struct ChainOut {
    counts: Vec<Vec<usize>>,
    label_flips: usize,
    repairs: usize,
    sweep_flips: Vec<usize>,
}

/// Runs one Markov chain on its own seeded RNG. Pure except for the
/// additive `gibbs.renormalized` counter inside [`sample_from`], so it is
/// safe to call from worker threads.
fn run_chain(
    lg: &LabeledGraph<'_>,
    cfg: &GibbsConfig,
    unknown: &[ppdp_graph::UserId],
    pa: &[Vec<f64>],
    wc: &WeightCache,
    seed: u64,
) -> ChainOut {
    match cfg.sweep {
        GibbsSweep::Scan => run_chain_scan(lg, cfg, unknown, pa, wc, seed),
        GibbsSweep::Tiled { tile } => run_chain_tiled(lg, cfg, unknown, pa, wc, seed, tile),
    }
}

/// Bootstrap hard labels: known users fixed, unknowns drawn from P_A.
fn bootstrap_labels<R: Rng>(
    lg: &LabeledGraph<'_>,
    unknown: &[ppdp_graph::UserId],
    pa: &[Vec<f64>],
    rng: &mut R,
    repairs: &mut usize,
) -> Vec<u16> {
    let mut label: Vec<u16> = lg
        .graph
        .users()
        .map(|u| lg.true_label(u).filter(|_| lg.known[u.0]).unwrap_or(0))
        .collect();
    for (&u, d) in unknown.iter().zip(pa) {
        label[u.0] = sample_from(rng, d, repairs);
    }
    label
}

/// Combined conditional `α·P_A + β·P_L` for one user, written into the
/// caller's scratch. `wrow` holds the cached `masked_weight` values for
/// `ns` in neighbour order, so the accumulation performs the same
/// additions in the same order as the historical per-edge recomputation —
/// bitwise-identical, minus the O(attributes) work per edge.
#[inline]
fn conditional_into(
    cond: &mut [f64],
    cfg: &GibbsConfig,
    label: &[u16],
    ns: &[ppdp_graph::UserId],
    wrow: &[f64],
    a_dist: &[f64],
) {
    let n_classes = cond.len();
    if ns.is_empty() {
        cond.copy_from_slice(a_dist);
    } else {
        cond.fill(0.0);
        let mut total_w = 0.0;
        for (&j, &w) in ns.iter().zip(wrow) {
            cond[label[j.0] as usize] += w;
            total_w += w;
        }
        if total_w <= 0.0 {
            cond.fill(0.0);
            for &j in ns {
                cond[label[j.0] as usize] += 1.0;
            }
            total_w = ns.len() as f64;
        }
        for (c, a) in cond.iter_mut().zip(a_dist) {
            *c = cfg.alpha * a + cfg.beta * (*c / total_w);
        }
    }
    let z: f64 = cond.iter().sum();
    if z > 0.0 {
        for c in cond.iter_mut() {
            *c /= z;
        }
    } else {
        cond.fill(1.0 / n_classes as f64);
    }
}

fn run_chain_scan(
    lg: &LabeledGraph<'_>,
    cfg: &GibbsConfig,
    unknown: &[ppdp_graph::UserId],
    pa: &[Vec<f64>],
    wc: &WeightCache,
    seed: u64,
) -> ChainOut {
    let n_classes = lg.n_classes();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut repairs = 0usize;
    let mut label = bootstrap_labels(lg, unknown, pa, &mut rng, &mut repairs);

    let mut counts: Vec<Vec<usize>> = vec![vec![0; n_classes]; lg.graph.user_count()];
    let mut label_flips = 0usize;
    let mut sweep_flips = Vec::with_capacity(cfg.burn_in + cfg.samples);
    // Conditional-distribution scratch, hoisted out of the sweep loop:
    // `fill`/`copy_from_slice` write exactly the values the historical
    // per-user `vec![…]` allocations held, so chains are bit-identical
    // while the inner loop stops allocating (≈ users × sweeps fewer
    // allocations per chain).
    let mut cond = vec![0.0f64; n_classes];
    let mut wrow = Vec::new();
    for round in 0..(cfg.burn_in + cfg.samples) {
        let mut flips = 0usize;
        for (i, (&u, a_dist)) in unknown.iter().zip(pa).enumerate() {
            // Relational conditional from the *current hard labels* of the
            // neighbours (the Gibbs flavour of Eq. 4.3).
            let ns = lg.graph.neighbors(u);
            let w = wc.row_into(lg, u, i, &mut wrow);
            conditional_into(&mut cond, cfg, &label, ns, w, a_dist);
            let resampled = sample_from(&mut rng, &cond, &mut repairs);
            if resampled != label[u.0] {
                flips += 1;
            }
            label[u.0] = resampled;
        }
        label_flips += flips;
        sweep_flips.push(flips);
        // Live-only (registry counters are additive and the gauge's final
        // write is `burn_in + samples` from every chain, so final
        // snapshots stay identical across execution policies).
        ppdp_metrics::counter("gibbs.sweeps_done", 1);
        ppdp_metrics::gauge_set("gibbs.sweep", (round + 1) as f64);
        if round >= cfg.burn_in {
            for &u in unknown {
                counts[u.0][label[u.0] as usize] += 1;
            }
        }
    }
    ChainOut {
        counts,
        label_flips,
        repairs,
        sweep_flips,
    }
}

/// What one tile of one Jacobi sweep contributes, applied by the
/// coordinator in tile order.
struct TileOut {
    new_labels: Vec<u16>,
    flips: usize,
    repairs: usize,
}

fn run_chain_tiled(
    lg: &LabeledGraph<'_>,
    cfg: &GibbsConfig,
    unknown: &[ppdp_graph::UserId],
    pa: &[Vec<f64>],
    wc: &WeightCache,
    seed: u64,
    tile: usize,
) -> ChainOut {
    let n_classes = lg.n_classes();
    let tile = tile.max(1);
    let n_tiles = unknown.len().div_ceil(tile);
    let mut repairs = 0usize;
    // The bootstrap RNG is only used for the initial draw; every sweep's
    // randomness comes from per-(round, tile) split seeds, so the walk is
    // a pure function of (config, seed) regardless of execution policy.
    let mut boot_rng = ChaCha8Rng::seed_from_u64(seed);
    let mut label = bootstrap_labels(lg, unknown, pa, &mut boot_rng, &mut repairs);
    let mut next = label.clone();

    let mut counts: Vec<Vec<usize>> = vec![vec![0; n_classes]; lg.graph.user_count()];
    let mut label_flips = 0usize;
    let mut sweep_flips = Vec::with_capacity(cfg.burn_in + cfg.samples);
    for round in 0..(cfg.burn_in + cfg.samples) {
        let label_prev = &label;
        let tile_outs: Vec<TileOut> = cfg.exec.par_map(n_tiles, |t| {
            let lo = t * tile;
            let hi = (lo + tile).min(unknown.len());
            let mut rng =
                ChaCha8Rng::seed_from_u64(split_seed(split_seed(seed, round as u64), t as u64));
            let mut cond = vec![0.0f64; n_classes];
            let mut wrow = Vec::new();
            let mut new_labels = Vec::with_capacity(hi - lo);
            let mut flips = 0usize;
            let mut tile_repairs = 0usize;
            for i in lo..hi {
                let u = unknown[i];
                let ns = lg.graph.neighbors(u);
                let w = wc.row_into(lg, u, i, &mut wrow);
                conditional_into(&mut cond, cfg, label_prev, ns, w, &pa[i]);
                let resampled = sample_from(&mut rng, &cond, &mut tile_repairs);
                if resampled != label_prev[u.0] {
                    flips += 1;
                }
                new_labels.push(resampled);
            }
            TileOut {
                new_labels,
                flips,
                repairs: tile_repairs,
            }
        });
        // Apply in tile order on the coordinator: `next` keeps the known
        // users' pinned labels and receives every unknown user's draw, so
        // the swap below makes it the next round's read buffer.
        let mut flips = 0usize;
        for (t, out) in tile_outs.iter().enumerate() {
            let lo = t * tile;
            for (k, &l) in out.new_labels.iter().enumerate() {
                next[unknown[lo + k].0] = l;
            }
            flips += out.flips;
            repairs += out.repairs;
        }
        std::mem::swap(&mut label, &mut next);
        label_flips += flips;
        sweep_flips.push(flips);
        ppdp_metrics::counter("gibbs.tiles_swept", n_tiles as u64);
        ppdp_metrics::counter("gibbs.sweeps_done", 1);
        ppdp_metrics::gauge_set("gibbs.sweep", (round + 1) as f64);
        if round >= cfg.burn_in {
            for &u in unknown {
                counts[u.0][label[u.0] as usize] += 1;
            }
        }
    }
    ChainOut {
        counts,
        label_flips,
        repairs,
        sweep_flips,
    }
}

/// Inverse-CDF sampling with a numerical guard: a corrupt distribution
/// (NaN/Inf/negative component or non-positive total mass) falls back to a
/// uniform draw instead of biasing the walk toward index 0.
fn sample_from<R: Rng>(rng: &mut R, dist: &[f64], repairs: &mut usize) -> u16 {
    let z: f64 = dist.iter().sum();
    if !z.is_finite() || z <= 0.0 || dist.iter().any(|p| !p.is_finite() || *p < 0.0) {
        *repairs += 1;
        ppdp_telemetry::counter("gibbs.renormalized", 1);
        return rng.gen_range(0..dist.len().max(1)) as u16;
    }
    let mut pick = rng.gen::<f64>() * z;
    for (i, &p) in dist.iter().enumerate() {
        pick -= p;
        if pick <= 0.0 {
            return i as u16;
        }
    }
    (dist.len() - 1) as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive_bayes::NaiveBayes;
    use ppdp_graph::{CategoryId, GraphBuilder, Schema, SocialGraph};

    fn two_cliques() -> SocialGraph {
        let mut b = GraphBuilder::new(Schema::uniform(3, 2));
        let a: Vec<_> = (0..4).map(|i| b.user_with(&[0, i % 2, 0])).collect();
        let c: Vec<_> = (0..4).map(|i| b.user_with(&[1, i % 2, 1])).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.edge(a[i], a[j]);
                b.edge(c[i], c[j]);
            }
        }
        b.edge(a[0], c[0]);
        b.build()
    }

    #[test]
    fn gibbs_recovers_clique_labels() {
        let g = two_cliques();
        let mut known = vec![true; 8];
        known[3] = false;
        known[7] = false;
        let lg = LabeledGraph::new(&g, CategoryId(2), known);
        let nb = NaiveBayes::train(&lg.train_set());
        let dists = gibbs_predict(&lg, &nb, GibbsConfig::default()).unwrap();
        assert!(dists[3][0] > 0.8, "{:?}", dists[3]);
        assert!(dists[7][1] > 0.8, "{:?}", dists[7]);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = two_cliques();
        let mut known = vec![true; 8];
        known[3] = false;
        let lg = LabeledGraph::new(&g, CategoryId(2), known);
        let nb = NaiveBayes::train(&lg.train_set());
        let a = gibbs_predict(&lg, &nb, GibbsConfig::default()).unwrap();
        let b = gibbs_predict(&lg, &nb, GibbsConfig::default()).unwrap();
        assert_eq!(a, b);
        let c = gibbs_predict(
            &lg,
            &nb,
            GibbsConfig {
                seed: 8,
                ..Default::default()
            },
        )
        .unwrap();
        assert_ne!(a, c, "different chains differ in finite samples");
    }

    #[test]
    fn known_users_pinned_and_distributions_normalized() {
        let g = two_cliques();
        let mut known = vec![true; 8];
        known[3] = false;
        let lg = LabeledGraph::new(&g, CategoryId(2), known);
        let nb = NaiveBayes::train(&lg.train_set());
        let dists = gibbs_predict(&lg, &nb, GibbsConfig::default()).unwrap();
        assert_eq!(dists[0], vec![1.0, 0.0]);
        for d in &dists {
            assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn gibbs_close_to_ica_on_easy_graph() {
        use crate::ica::{ica_predict, IcaConfig};
        let g = two_cliques();
        let mut known = vec![true; 8];
        known[3] = false;
        known[7] = false;
        let lg = LabeledGraph::new(&g, CategoryId(2), known);
        let nb = NaiveBayes::train(&lg.train_set());
        let gibbs = gibbs_predict(
            &lg,
            &nb,
            GibbsConfig {
                burn_in: 100,
                samples: 1_000,
                ..Default::default()
            },
        )
        .unwrap();
        let ica = ica_predict(&lg, &nb, IcaConfig::default()).unwrap();
        for u in [3usize, 7] {
            for k in 0..2 {
                assert!(
                    (gibbs[u][k] - ica[u][k]).abs() < 0.2,
                    "u{u}: gibbs {:?} vs ica {:?}",
                    gibbs[u],
                    ica[u]
                );
            }
        }
    }

    #[test]
    fn gibbs_run_exposes_chain_statistics() {
        let g = two_cliques();
        let mut known = vec![true; 8];
        known[3] = false;
        known[7] = false;
        let lg = LabeledGraph::new(&g, CategoryId(2), known);
        let nb = NaiveBayes::train(&lg.train_set());
        let cfg = GibbsConfig::default();
        let rec = ppdp_telemetry::Recorder::new();
        let out = {
            let _scope = rec.enter();
            gibbs_run(&lg, &nb, cfg).unwrap()
        };
        assert_eq!(out.sweeps, cfg.burn_in + cfg.samples);
        assert_eq!(
            out.dists,
            gibbs_predict(&lg, &nb, cfg).unwrap(),
            "wrapper returns same dists"
        );
        assert!(!out.degraded, "healthy chain must not flag degradation");
        let report = rec.take();
        assert_eq!(report.counter("gibbs.sweeps"), out.sweeps as u64);
        let flips = report
            .histogram("gibbs.sweep_flips")
            .expect("per-sweep flips recorded");
        assert_eq!(flips.count, out.sweeps as u64);
        assert!((flips.sum - out.label_flips as f64).abs() < 1e-9);
        assert!(report.span("gibbs.run").is_some());
    }

    #[test]
    fn weight_cache_off_reproduces_cached_run_bitwise() {
        // The cache is a pure optimization: recomputing masked_weight per
        // edge per sweep (the pre-caching kernel, weight_cache = false)
        // must walk the exact same chains under both sweep schedules.
        let g = two_cliques();
        let mut known = vec![true; 8];
        known[3] = false;
        known[7] = false;
        let lg = LabeledGraph::new(&g, CategoryId(2), known);
        let nb = NaiveBayes::train(&lg.train_set());
        for sweep in [GibbsSweep::Scan, GibbsSweep::Tiled { tile: 3 }] {
            let base = GibbsConfig {
                chains: 2,
                burn_in: 10,
                samples: 40,
                sweep,
                ..Default::default()
            };
            let cached = gibbs_run(&lg, &nb, base).unwrap();
            let raw = gibbs_run(
                &lg,
                &nb,
                GibbsConfig {
                    weight_cache: false,
                    ..base
                },
            )
            .unwrap();
            assert_eq!(cached, raw, "sweep = {sweep:?}");
        }
    }

    #[test]
    fn multi_chain_parallel_reproduces_sequential_run_bitwise() {
        let g = two_cliques();
        let mut known = vec![true; 8];
        known[3] = false;
        known[7] = false;
        let lg = LabeledGraph::new(&g, CategoryId(2), known);
        let nb = NaiveBayes::train(&lg.train_set());
        let base = GibbsConfig {
            chains: 6,
            burn_in: 10,
            samples: 50,
            ..Default::default()
        };
        let run = |exec: ExecPolicy| {
            let rec = ppdp_telemetry::Recorder::new();
            let out = {
                let _scope = rec.enter();
                gibbs_run(&lg, &nb, GibbsConfig { exec, ..base }).unwrap()
            };
            (out, rec.take())
        };
        let (seq_out, seq_rep) = run(ExecPolicy::Sequential);
        assert_eq!(seq_out.sweeps, 6 * 60, "sweeps count all chains");
        for threads in [1, 2, 8] {
            let (par_out, par_rep) = run(ExecPolicy::parallel(threads));
            assert_eq!(seq_out, par_out, "threads = {threads}");
            assert_eq!(
                seq_rep.equivalence_view(),
                par_rep.equivalence_view(),
                "threads = {threads}"
            );
            // The flip histogram is recorded coordinator-side in chain
            // order, so even its order-dependent fields must agree.
            let s = seq_rep.histogram("gibbs.sweep_flips").unwrap();
            let p = par_rep.histogram("gibbs.sweep_flips").unwrap();
            assert_eq!((s.count, s.sum, s.last), (p.count, p.sum, p.last));
        }
    }

    #[test]
    fn single_chain_keeps_the_historical_walk() {
        let g = two_cliques();
        let mut known = vec![true; 8];
        known[3] = false;
        let lg = LabeledGraph::new(&g, CategoryId(2), known);
        let nb = NaiveBayes::train(&lg.train_set());
        // chains: 1 must keep using cfg.seed directly, so the default
        // config's output is unchanged by the multi-chain machinery; a
        // second chain must genuinely perturb the pooled estimate.
        let one = gibbs_run(&lg, &nb, GibbsConfig::default()).unwrap();
        let two = gibbs_run(
            &lg,
            &nb,
            GibbsConfig {
                chains: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(one.sweeps * 2, two.sweeps);
        assert_ne!(one.dists, two.dists, "pooled chains shift the estimate");
    }

    #[test]
    fn degenerate_config_is_a_typed_error_not_a_panic() {
        let g = two_cliques();
        let mut known = vec![true; 8];
        known[3] = false;
        let lg = LabeledGraph::new(&g, CategoryId(2), known);
        let nb = NaiveBayes::train(&lg.train_set());
        let no_samples = GibbsConfig {
            samples: 0,
            ..Default::default()
        };
        let err = gibbs_run(&lg, &nb, no_samples).unwrap_err();
        assert_eq!(err.kind(), "invalid_input");
        assert!(err.to_string().contains("retained sample"), "{err}");
        let no_chains = GibbsConfig {
            chains: 0,
            ..Default::default()
        };
        let err = gibbs_run(&lg, &nb, no_chains).unwrap_err();
        assert_eq!(err.kind(), "invalid_input");
        assert!(err.to_string().contains("chain"), "{err}");
        for (alpha, beta) in [(0.0, 0.0), (f64::NAN, 0.5), (-0.1, 0.5)] {
            let cfg = GibbsConfig {
                alpha,
                beta,
                ..Default::default()
            };
            let err = gibbs_run(&lg, &nb, cfg).unwrap_err();
            assert_eq!(err.kind(), "invalid_input", "α={alpha}, β={beta}");
        }
    }

    /// A local classifier that returns poisoned distributions.
    struct PoisonLocal {
        value: f64,
    }

    impl crate::LocalClassifier for PoisonLocal {
        fn n_classes(&self) -> usize {
            2
        }
        fn predict_dist(&self, _row: &[Option<u16>]) -> Vec<f64> {
            vec![self.value; 2]
        }
    }

    #[test]
    fn poisoned_conditionals_degrade_to_uniform_resampling() {
        let g = two_cliques();
        let mut known = vec![true; 8];
        known[3] = false;
        known[7] = false;
        let lg = LabeledGraph::new(&g, CategoryId(2), known);
        for value in [f64::NAN, f64::INFINITY, -1.0] {
            let poison = PoisonLocal { value };
            let rec = ppdp_telemetry::Recorder::new();
            let out = {
                let _scope = rec.enter();
                gibbs_run(&lg, &poison, GibbsConfig::default()).unwrap()
            };
            assert!(out.degraded, "value {value} must flag degradation");
            for d in &out.dists {
                let z: f64 = d.iter().sum();
                assert!(
                    d.iter().all(|p| p.is_finite() && *p >= 0.0) && (z - 1.0).abs() < 1e-9,
                    "value {value} leaked a corrupt dist: {d:?}"
                );
            }
            let report = rec.take();
            assert!(report.counter("gibbs.renormalized") > 0, "value {value}");
            assert_eq!(report.counter("degraded.gibbs"), 1);
            assert_eq!(report.counter("degraded.gibbs.uniform_sample"), 1);
        }
    }

    fn tmpstore(tag: &str) -> CheckpointStore {
        let d = std::env::temp_dir().join(format!("ppdp-gibbs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        CheckpointStore::open(&d).unwrap()
    }

    #[test]
    fn resumable_run_matches_plain_run_bitwise() {
        let g = two_cliques();
        let mut known = vec![true; 8];
        known[3] = false;
        known[7] = false;
        let lg = LabeledGraph::new(&g, CategoryId(2), known);
        let nb = NaiveBayes::train(&lg.train_set());
        let cfg = GibbsConfig {
            chains: 5,
            burn_in: 10,
            samples: 40,
            ..Default::default()
        };
        let reference = gibbs_run(&lg, &nb, cfg).unwrap();
        let store = tmpstore("match");
        let out = gibbs_run_resumable(&lg, &nb, cfg, &store, "unit").unwrap();
        assert_eq!(out, reference, "checkpointing must not perturb the run");
        let key = gibbs_checkpoint_key("unit", &lg, &cfg);
        let ckpt: GibbsCheckpoint = store.load(&key).expect("checkpoint persisted");
        assert_eq!(ckpt.chains_done(), 5);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn truncated_checkpoint_resumes_to_identical_outcome() {
        // Simulate a kill after each chain batch: keep only the completed
        // prefix a crashed run would have fsynced, rerun, and demand the
        // resumed outcome (and its telemetry totals) be identical.
        let g = two_cliques();
        let mut known = vec![true; 8];
        known[3] = false;
        known[7] = false;
        let lg = LabeledGraph::new(&g, CategoryId(2), known);
        let nb = NaiveBayes::train(&lg.train_set());
        let cfg = GibbsConfig {
            chains: 4,
            burn_in: 5,
            samples: 30,
            ..Default::default()
        };
        let store = tmpstore("resume");
        let uninterrupted = gibbs_run_resumable(&lg, &nb, cfg, &store, "resume").unwrap();
        let key = gibbs_checkpoint_key("resume", &lg, &cfg);
        let full: GibbsCheckpoint = store.load(&key).unwrap();
        assert_eq!(full.chains_done(), 4);
        for done in 0..4usize {
            let truncated = GibbsCheckpoint {
                counts: full.counts[..done].to_vec(),
                label_flips: full.label_flips[..done].to_vec(),
                repairs: full.repairs[..done].to_vec(),
                sweep_flips: full.sweep_flips[..done].to_vec(),
            };
            store.save(&key, &truncated).unwrap();
            let rec = ppdp_telemetry::Recorder::new();
            let resumed = {
                let _scope = rec.enter();
                gibbs_run_resumable(&lg, &nb, cfg, &store, "resume").unwrap()
            };
            assert_eq!(resumed, uninterrupted, "kill after {done} chains");
            let report = rec.take();
            assert_eq!(
                report.counter("gibbs.checkpoint.resumed_chains"),
                done as u64
            );
        }
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn foreign_checkpoint_is_ignored_not_resumed() {
        // A checkpoint written under a different config must not leak into
        // this run: the key digest differs, so load is a cold start.
        let g = two_cliques();
        let mut known = vec![true; 8];
        known[3] = false;
        let lg = LabeledGraph::new(&g, CategoryId(2), known);
        let nb = NaiveBayes::train(&lg.train_set());
        let store = tmpstore("foreign");
        let cfg_a = GibbsConfig {
            chains: 3,
            burn_in: 5,
            samples: 20,
            ..Default::default()
        };
        let _ = gibbs_run_resumable(&lg, &nb, cfg_a, &store, "run").unwrap();
        let cfg_b = GibbsConfig {
            samples: 21,
            ..cfg_a
        };
        let reference = gibbs_run(&lg, &nb, cfg_b).unwrap();
        let out = gibbs_run_resumable(&lg, &nb, cfg_b, &store, "run").unwrap();
        assert_eq!(out, reference);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn tiled_sweep_recovers_clique_labels() {
        let g = two_cliques();
        let mut known = vec![true; 8];
        known[3] = false;
        known[7] = false;
        let lg = LabeledGraph::new(&g, CategoryId(2), known);
        let nb = NaiveBayes::train(&lg.train_set());
        let cfg = GibbsConfig {
            sweep: GibbsSweep::Tiled { tile: 2 },
            ..Default::default()
        };
        let dists = gibbs_predict(&lg, &nb, cfg).unwrap();
        assert!(dists[3][0] > 0.8, "{:?}", dists[3]);
        assert!(dists[7][1] > 0.8, "{:?}", dists[7]);
    }

    #[test]
    fn tiled_sweep_is_bitwise_invariant_across_policies() {
        // For any fixed tile size, the Jacobi schedule draws per-tile
        // split-seeded RNGs and applies tiles in order, so Sequential and
        // Parallel{1,2,8} must agree bitwise — outcome and telemetry.
        let g = two_cliques();
        let mut known = vec![true; 8];
        known[3] = false;
        known[7] = false;
        let lg = LabeledGraph::new(&g, CategoryId(2), known);
        let nb = NaiveBayes::train(&lg.train_set());
        for tile in [1usize, 3, 16] {
            let base = GibbsConfig {
                chains: 2,
                burn_in: 10,
                samples: 40,
                sweep: GibbsSweep::Tiled { tile },
                ..Default::default()
            };
            let run = |exec: ExecPolicy| {
                let rec = ppdp_telemetry::Recorder::new();
                let out = {
                    let _scope = rec.enter();
                    gibbs_run(&lg, &nb, GibbsConfig { exec, ..base }).unwrap()
                };
                (out, rec.take())
            };
            let (seq_out, seq_rep) = run(ExecPolicy::Sequential);
            for threads in [1, 2, 8] {
                let (par_out, par_rep) = run(ExecPolicy::parallel(threads));
                assert_eq!(seq_out, par_out, "tile = {tile}, threads = {threads}");
                assert_eq!(
                    seq_rep.equivalence_view(),
                    par_rep.equivalence_view(),
                    "tile = {tile}, threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn tile_size_is_part_of_the_sampler_definition() {
        // Different tile sizes seed different per-tile RNG trees: the
        // walks are distinct samplers (like distinct seeds), and a
        // checkpoint written under one schedule must never resume another.
        let g = two_cliques();
        let mut known = vec![true; 8];
        known[3] = false;
        known[7] = false;
        let lg = LabeledGraph::new(&g, CategoryId(2), known);
        let nb = NaiveBayes::train(&lg.train_set());
        let with = |sweep| GibbsConfig {
            sweep,
            ..Default::default()
        };
        let a = gibbs_run(&lg, &nb, with(GibbsSweep::Tiled { tile: 1 })).unwrap();
        let b = gibbs_run(&lg, &nb, with(GibbsSweep::Tiled { tile: 4 })).unwrap();
        assert_ne!(a.dists, b.dists, "tile size changes the walk");
        let k_scan = gibbs_checkpoint_key("t", &lg, &with(GibbsSweep::Scan));
        let k_t1 = gibbs_checkpoint_key("t", &lg, &with(GibbsSweep::Tiled { tile: 1 }));
        let k_t4 = gibbs_checkpoint_key("t", &lg, &with(GibbsSweep::Tiled { tile: 4 }));
        assert_ne!(k_scan, k_t1);
        assert_ne!(k_t1, k_t4);
    }

    #[test]
    fn tiled_resumable_run_matches_plain_run_bitwise() {
        let g = two_cliques();
        let mut known = vec![true; 8];
        known[3] = false;
        known[7] = false;
        let lg = LabeledGraph::new(&g, CategoryId(2), known);
        let nb = NaiveBayes::train(&lg.train_set());
        let cfg = GibbsConfig {
            chains: 3,
            burn_in: 5,
            samples: 20,
            sweep: GibbsSweep::Tiled { tile: 2 },
            exec: ExecPolicy::parallel(2),
            ..Default::default()
        };
        let reference = gibbs_run(&lg, &nb, cfg).unwrap();
        let store = tmpstore("tiled");
        let out = gibbs_run_resumable(&lg, &nb, cfg, &store, "tiled").unwrap();
        assert_eq!(out, reference);
        let key = gibbs_checkpoint_key("tiled", &lg, &cfg);
        let full: GibbsCheckpoint = store.load(&key).unwrap();
        assert_eq!(full.chains_done(), 3);
        // Kill mid-run: keep only the first chain and resume.
        let truncated = GibbsCheckpoint {
            counts: full.counts[..1].to_vec(),
            label_flips: full.label_flips[..1].to_vec(),
            repairs: full.repairs[..1].to_vec(),
            sweep_flips: full.sweep_flips[..1].to_vec(),
        };
        store.save(&key, &truncated).unwrap();
        let resumed = gibbs_run_resumable(&lg, &nb, cfg, &store, "tiled").unwrap();
        assert_eq!(resumed, reference, "resume after one chain");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn zero_tile_is_a_typed_error() {
        let g = two_cliques();
        let mut known = vec![true; 8];
        known[3] = false;
        let lg = LabeledGraph::new(&g, CategoryId(2), known);
        let nb = NaiveBayes::train(&lg.train_set());
        let cfg = GibbsConfig {
            sweep: GibbsSweep::Tiled { tile: 0 },
            ..Default::default()
        };
        let err = gibbs_run(&lg, &nb, cfg).unwrap_err();
        assert_eq!(err.kind(), "invalid_input");
        assert!(err.to_string().contains("tile"), "{err}");
    }

    #[test]
    fn isolated_unknown_user_uses_attributes() {
        let mut b = GraphBuilder::new(Schema::uniform(2, 2));
        let _known = b.user_with(&[0, 0]);
        let known2 = b.user_with(&[1, 1]);
        let lone = b.user_with(&[1, 0]); // isolated, attr says class 1
        let _ = (known2, lone);
        let g = b.build();
        let lg = LabeledGraph::new(&g, CategoryId(1), vec![true, true, false]);
        let nb = NaiveBayes::train(&lg.train_set());
        let dists = gibbs_predict(&lg, &nb, GibbsConfig::default()).unwrap();
        assert!(dists[2][1] > 0.5, "{:?}", dists[2]);
    }
}
