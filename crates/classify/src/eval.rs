//! The attack models of §3.7.2 — `AttrOnly`, `LinkOnly`, `CC` (collective)
//! — instantiated with any of the three local classifiers, plus accuracy
//! evaluation.

use crate::dataset::LabeledGraph;
use crate::ica::{ica_run, IcaConfig};
use crate::knn::Knn;
use crate::naive_bayes::NaiveBayes;
use crate::relational::{relational_dist, RelationalState};
use crate::{argmax, LocalClassifier};
use ppdp_errors::Result;
use ppdp_roughset::{find_reduct, AttrId, InformationSystem, RuleClassifier};

/// Which attribute-based (local) classifier to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalKind {
    /// Categorical Naive Bayes with Laplace smoothing.
    Bayes,
    /// K-nearest neighbours with the given `k`.
    Knn(usize),
    /// Rough-Set rule classifier over a greedily-found reduct.
    Rst,
}

impl LocalKind {
    /// Human-readable name matching the figures' legends.
    pub fn name(&self) -> &'static str {
        match self {
            LocalKind::Bayes => "Bayes",
            LocalKind::Knn(_) => "KNN",
            LocalKind::Rst => "RST",
        }
    }

    /// Trains the local classifier on `lg`'s known users.
    pub fn fit(&self, lg: &LabeledGraph<'_>) -> Box<dyn LocalClassifier> {
        let ts = lg.train_set();
        match *self {
            LocalKind::Bayes => Box::new(NaiveBayes::train(&ts)),
            LocalKind::Knn(k) => Box::new(Knn::train(&ts, k)),
            LocalKind::Rst => Box::new(RstLocal::train(&ts)),
        }
    }
}

/// Adapter exposing the Rough-Set rule classifier as a [`LocalClassifier`]:
/// appends the label as a decision column, finds a reduct over the
/// condition columns and extracts decision rules.
#[derive(Debug, Clone)]
pub struct RstLocal {
    clf: RuleClassifier,
}

impl RstLocal {
    /// Trains: builds the information system `(V, C ∪ D)`, reduces `C` and
    /// extracts rules (the `learn_RST_Rule` step of Algorithm 1).
    pub fn train(ts: &crate::dataset::TrainSet) -> Self {
        let width = ts.rows.first().map_or(0, Vec::len);
        let mut rows: Vec<Vec<Option<u16>>> = Vec::with_capacity(ts.rows.len());
        for (row, &y) in ts.rows.iter().zip(&ts.labels) {
            let mut r = row.clone();
            r.push(Some(y));
            rows.push(r);
        }
        let sys = if rows.is_empty() {
            InformationSystem::from_columns(vec![Vec::new(); width + 1])
        } else {
            InformationSystem::from_rows(&rows)
        };
        let cond: Vec<AttrId> = (0..width).map(AttrId).collect();
        let decision = AttrId(width);
        let mut reduct = find_reduct(&sys, &cond, &[decision]);
        // Noisy tables can have an empty positive region, which makes every
        // subset (including ∅) a trivial "reduct". Rules over the empty set
        // collapse to the prior, so fall back to the full condition set —
        // the rule classifier's partial-match backoff handles sparsity.
        if reduct.is_empty() {
            reduct = cond;
        }
        let clf = RuleClassifier::train(&sys, &reduct, decision, ts.n_classes);
        Self { clf }
    }

    /// The reduct the rules range over.
    pub fn reduct(&self) -> &[AttrId] {
        &self.clf.rules().reduct
    }
}

impl LocalClassifier for RstLocal {
    fn n_classes(&self) -> usize {
        self.clf.rules().n_classes
    }

    fn predict_dist(&self, row: &[Option<u16>]) -> Vec<f64> {
        self.clf.predict_dist(row)
    }
}

/// An attack model from §3.7.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackModel {
    /// Attribute information only (no links).
    AttrOnly,
    /// Link information: attribute bootstrap for unlabeled neighbours, then
    /// one weighted relational pass (the two-step procedure of §3.7.2).
    LinkOnly,
    /// Collective inference (ICA) with the Eq. (3.5) α/β mix.
    Collective {
        /// Weight of attribute evidence.
        alpha: f64,
        /// Weight of link evidence.
        beta: f64,
    },
    /// Gibbs-sampling collective classification (the second collective
    /// algorithm §3.4 names) with the same α/β mix and default chain
    /// parameters.
    Gibbs {
        /// Weight of attribute evidence.
        alpha: f64,
        /// Weight of link evidence.
        beta: f64,
    },
}

/// Result of running an attack: final distributions and accuracy on `V^U`,
/// plus the inference engine's convergence data.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// Final class distribution per user.
    pub dists: Vec<Vec<f64>>,
    /// Fraction of unknown-but-labelled users predicted correctly.
    pub accuracy: f64,
    /// Inference sweeps performed (1 for the single-pass models).
    pub iterations: usize,
    /// Whether the inference engine converged (single-pass models and
    /// fixed-length Gibbs chains are trivially converged).
    pub converged: bool,
    /// Final sweep residual (0 for non-iterative models).
    pub final_residual: f64,
    /// Whether the inference engine had to repair numerically corrupt
    /// distributions along the way (always `false` for single-pass models).
    pub degraded: bool,
}

/// Runs `model` with local classifier `kind` against `lg` and scores the
/// predictions on the hidden labels of `V^U`.
///
/// # Errors
/// Returns [`ppdp_errors::PpdpError::InvalidInput`] when the collective
/// models are configured with a degenerate α/β mix.
pub fn run_attack(
    lg: &LabeledGraph<'_>,
    kind: LocalKind,
    model: AttackModel,
) -> Result<AttackOutcome> {
    run_attack_with(lg, kind, model, ppdp_exec::ExecPolicy::Sequential)
}

/// [`run_attack`] with an explicit execution policy for the collective
/// inference engines (ICA node scoring; Gibbs chains). The outcome is
/// identical for every policy and thread count.
///
/// # Errors
/// Same conditions as [`run_attack`].
pub fn run_attack_with(
    lg: &LabeledGraph<'_>,
    kind: LocalKind,
    model: AttackModel,
    exec: ppdp_exec::ExecPolicy,
) -> Result<AttackOutcome> {
    let local = {
        let _fit_span = ppdp_telemetry::span(match kind {
            LocalKind::Bayes => "attack.fit.Bayes",
            LocalKind::Knn(_) => "attack.fit.KNN",
            LocalKind::Rst => "attack.fit.RST",
        });
        kind.fit(lg)
    };
    let _infer_span = ppdp_telemetry::span("attack.infer");
    let mut iterations = 1;
    let mut converged = true;
    let mut final_residual = 0.0;
    let mut degraded = false;
    let dists = match model {
        AttackModel::AttrOnly => {
            let mut state = RelationalState::new(lg);
            for u in lg.unknown_users() {
                state.set(u, local.predict_dist(&lg.masked_row(u)));
            }
            state.dist
        }
        AttackModel::LinkOnly => {
            let mut state = RelationalState::new(lg);
            // Bootstrap every unknown user from attributes first, so each
            // user has at least an approximate distribution …
            for u in lg.unknown_users() {
                state.set(u, local.predict_dist(&lg.masked_row(u)));
            }
            // … then one weighted relational pass (Eq. 4.3), synchronous.
            let passes: Vec<_> = lg
                .unknown_users()
                .into_iter()
                .map(|u| (u, relational_dist(lg, &state, u)))
                .collect();
            for (u, d) in passes {
                if let Some(d) = d {
                    state.set(u, d);
                }
            }
            state.dist
        }
        AttackModel::Collective { alpha, beta } => {
            // The struct literal (not `with_mix`) defers mix validation to
            // `ica_run`, which reports a typed error instead of panicking.
            let out = ica_run(
                lg,
                local.as_ref(),
                IcaConfig {
                    alpha,
                    beta,
                    exec,
                    ..Default::default()
                },
            )?;
            iterations = out.iterations;
            converged = out.converged;
            final_residual = out.final_delta;
            degraded = out.degraded;
            out.dists
        }
        AttackModel::Gibbs { alpha, beta } => {
            let out = crate::gibbs::gibbs_run(
                lg,
                local.as_ref(),
                crate::gibbs::GibbsConfig {
                    alpha,
                    beta,
                    exec,
                    ..Default::default()
                },
            )?;
            iterations = out.sweeps;
            degraded = out.degraded;
            out.dists
        }
    };
    let accuracy = accuracy(lg, &dists);
    Ok(AttackOutcome {
        dists,
        accuracy,
        iterations,
        converged,
        final_residual,
        degraded,
    })
}

/// Fraction of `V^U` users whose argmax prediction matches ground truth.
/// Returns 1.0 when there is nothing to predict.
pub fn accuracy(lg: &LabeledGraph<'_>, dists: &[Vec<f64>]) -> f64 {
    let targets = lg.unknown_users();
    if targets.is_empty() {
        return 1.0;
    }
    let correct = targets
        .iter()
        .filter(|&&u| Some(argmax(&dists[u.0])) == lg.true_label(u))
        .count();
    correct as f64 / targets.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdp_graph::{CategoryId, GraphBuilder, Schema, SocialGraph};
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Homophilous two-community graph: community = label, attribute 0
    /// correlates with the label, attribute 1 is noise.
    fn community_graph(n: usize, seed: u64) -> SocialGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(Schema::uniform(3, 2));
        let users: Vec<_> = (0..n)
            .map(|i| {
                let label = (i % 2) as u16;
                let a0 = if rng.gen_bool(0.85) { label } else { 1 - label };
                let a1 = rng.gen_range(0..2u16);
                b.user_with(&[a0, a1, label])
            })
            .collect();
        for i in 0..n {
            for j in (i + 1)..n {
                let same = i % 2 == j % 2;
                let p = if same { 0.25 } else { 0.02 };
                if rng.gen_bool(p) {
                    b.edge(users[i], users[j]);
                }
            }
        }
        b.build()
    }

    #[test]
    fn all_models_beat_chance_on_homophilous_graph() {
        let g = community_graph(80, 3);
        let lg = LabeledGraph::with_random_split(&g, CategoryId(2), 0.7, 3);
        for kind in [LocalKind::Bayes, LocalKind::Knn(5), LocalKind::Rst] {
            for model in [
                AttackModel::AttrOnly,
                AttackModel::LinkOnly,
                AttackModel::Collective {
                    alpha: 0.5,
                    beta: 0.5,
                },
            ] {
                let out = run_attack(&lg, kind, model).unwrap();
                assert!(
                    out.accuracy > 0.6,
                    "{kind:?}/{model:?} accuracy {} ≤ chance",
                    out.accuracy
                );
            }
        }
    }

    #[test]
    fn collective_at_least_matches_attr_only_here() {
        let g = community_graph(80, 11);
        let lg = LabeledGraph::with_random_split(&g, CategoryId(2), 0.6, 11);
        let attr = run_attack(&lg, LocalKind::Bayes, AttackModel::AttrOnly)
            .unwrap()
            .accuracy;
        let cc = run_attack(
            &lg,
            LocalKind::Bayes,
            AttackModel::Collective {
                alpha: 0.5,
                beta: 0.5,
            },
        )
        .unwrap()
        .accuracy;
        assert!(
            cc + 1e-9 >= attr - 0.05,
            "collective {cc} should not collapse vs {attr}"
        );
    }

    #[test]
    fn gibbs_attack_model_beats_chance() {
        let g = community_graph(80, 7);
        let lg = LabeledGraph::with_random_split(&g, CategoryId(2), 0.7, 7);
        let out = run_attack(
            &lg,
            LocalKind::Bayes,
            AttackModel::Gibbs {
                alpha: 0.5,
                beta: 0.5,
            },
        )
        .unwrap();
        assert!(out.accuracy > 0.6, "Gibbs accuracy {}", out.accuracy);
        assert!(!out.degraded);
    }

    #[test]
    fn rst_local_exposes_reduct() {
        let g = community_graph(40, 5);
        let lg = LabeledGraph::with_random_split(&g, CategoryId(2), 0.8, 5);
        let rst = RstLocal::train(&lg.train_set());
        assert!(!rst.reduct().is_empty());
        assert!(rst.reduct().iter().all(|a| a.0 < 3));
    }

    #[test]
    fn accuracy_of_perfect_predictions_is_one() {
        let g = community_graph(20, 9);
        let lg = LabeledGraph::with_random_split(&g, CategoryId(2), 0.5, 9);
        let dists: Vec<Vec<f64>> = g
            .users()
            .map(|u| {
                let y = lg.true_label(u).unwrap();
                crate::relational::one_hot(y, 2)
            })
            .collect();
        assert_eq!(accuracy(&lg, &dists), 1.0);
    }

    #[test]
    fn empty_target_set_scores_one() {
        let g = community_graph(10, 1);
        let lg = LabeledGraph::new(&g, CategoryId(2), vec![true; 10]);
        assert_eq!(accuracy(&lg, &vec![vec![0.5, 0.5]; 10]), 1.0);
    }
}
