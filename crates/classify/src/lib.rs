//! Classification and collective-inference substrate for the `ppdp`
//! workspace — the attack models of Chapter 3 (§3.3.3, §3.4, §3.7.2).
//!
//! Three attribute-based ("local") classifiers — categorical Naive Bayes,
//! KNN and the Rough-Set rule classifier — plus the weighted relational
//! classifier (wvRN, Eq. 3.3/4.3) and the Iterative Classification
//! Algorithm (ICA, Algorithm 1) that combines them with the `α·P_A + β·P_L`
//! evidence mix of Eq. (3.5).
//!
//! The attack models of §3.7.2 are exposed as [`AttackModel`]:
//! `AttrOnly`, `LinkOnly` (attribute bootstrap + one relational pass) and
//! `Collective` (full ICA).

pub mod dataset;
pub mod eval;
pub mod gibbs;
pub mod ica;
pub mod knn;
pub mod metrics;
pub mod naive_bayes;
pub mod relational;

pub use dataset::{LabeledGraph, TrainSet};
pub use eval::{accuracy, run_attack, run_attack_with, AttackModel, LocalKind};
pub use gibbs::{
    gibbs_checkpoint_key, gibbs_predict, gibbs_run, gibbs_run_resumable, GibbsCheckpoint,
    GibbsConfig, GibbsOutcome, GibbsSweep,
};
pub use ica::{ica_predict, ica_run, IcaConfig, IcaOutcome};
pub use knn::Knn;
pub use metrics::{cross_validate, ConfusionMatrix};
pub use naive_bayes::NaiveBayes;
pub use relational::{masked_weight, one_hot, relational_dist, RelationalState};

/// A trained attribute-based classifier producing class-probability
/// distributions from a full attribute row (`None` = unpublished value).
///
/// The `Send + Sync` supertrait lets the inference loops score nodes from
/// worker threads under [`ppdp_exec::ExecPolicy::Parallel`]; every
/// classifier here is plain trained data, so the bound is free.
pub trait LocalClassifier: Send + Sync {
    /// Number of decision classes.
    fn n_classes(&self) -> usize;
    /// Probability distribution over classes for `row`.
    fn predict_dist(&self, row: &[Option<u16>]) -> Vec<f64>;

    /// Most probable class (first index wins ties).
    fn predict(&self, row: &[Option<u16>]) -> u16 {
        argmax(&self.predict_dist(row))
    }
}

/// Index of the maximum entry; first occurrence wins ties.
pub fn argmax(dist: &[f64]) -> u16 {
    let mut best = 0usize;
    for (i, &p) in dist.iter().enumerate() {
        if p > dist[best] {
            best = i;
        }
    }
    best as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_first_tie_wins() {
        assert_eq!(argmax(&[0.2, 0.5, 0.5]), 1);
        assert_eq!(argmax(&[1.0]), 0);
    }
}
