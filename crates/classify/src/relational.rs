//! The weighted relational classifier (weighted-vote Relational Neighbour,
//! Eq. 3.3 / 4.3): a user's class distribution is the `W_{i,j}`-weighted
//! average of its neighbours' current distributions.

use crate::dataset::LabeledGraph;
use ppdp_graph::UserId;

/// The evolving per-user class distributions used by relational and
/// collective inference. Known users are pinned to one-hot distributions.
#[derive(Debug, Clone)]
pub struct RelationalState {
    /// `dist[u]` = current class distribution of user `u`.
    pub dist: Vec<Vec<f64>>,
    n_classes: usize,
}

impl RelationalState {
    /// Initializes: known users one-hot on their true label, unknown users
    /// uniform.
    pub fn new(lg: &LabeledGraph<'_>) -> Self {
        let n_classes = lg.n_classes();
        let uniform = vec![1.0 / n_classes as f64; n_classes];
        let dist = lg
            .graph
            .users()
            .map(|u| match (lg.known[u.0], lg.true_label(u)) {
                (true, Some(y)) => one_hot(y, n_classes),
                _ => uniform.clone(),
            })
            .collect();
        Self { dist, n_classes }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Replaces the distribution of `u` (unknown users only, callers must
    /// not overwrite pinned known users).
    pub fn set(&mut self, u: UserId, d: Vec<f64>) {
        debug_assert_eq!(d.len(), self.n_classes);
        self.dist[u.0] = d;
    }
}

/// One-hot distribution for class `y`.
pub fn one_hot(y: u16, n: usize) -> Vec<f64> {
    let mut d = vec![0.0; n];
    d[y as usize] = 1.0;
    d
}

/// The wvRN weight `W_{i,j}` of Eq. (3.2)/(4.2) computed with the label
/// column masked, so the attacker's weights never peek at ground truth.
pub fn masked_weight(lg: &LabeledGraph<'_>, i: UserId, j: UserId) -> f64 {
    let label = lg.label_cat.0;
    let (ri, rj) = (lg.graph.attr_row(i), lg.graph.attr_row(j));
    let denom = ri
        .iter()
        .enumerate()
        .filter(|(c, v)| *c != label && v.is_some())
        .count();
    if denom == 0 {
        return 0.0;
    }
    let shared = ri
        .iter()
        .zip(rj)
        .enumerate()
        .filter(|(c, (x, y))| *c != label && x.is_some() && x == y)
        .count();
    shared as f64 / denom as f64
}

/// Relational distribution `P(y^i_t | N_i)` per Eq. (4.3): the wvRN-weighted
/// average of neighbours' distributions,
/// `P(y^i_t | N_i) = Σ_j P(y^j_t) · W_{i,j} / Σ_k W_{i,k}`.
///
/// Returns `None` when `u` has no neighbours, or when every weight is zero
/// *and* there are no neighbours to average at all — in the all-zero-weight
/// case the unweighted mean of Eq. (4.1) is used instead, matching the
/// paper's fallback from the weighted to the plain average.
pub fn relational_dist(
    lg: &LabeledGraph<'_>,
    state: &RelationalState,
    u: UserId,
) -> Option<Vec<f64>> {
    let ns = lg.graph.neighbors(u);
    if ns.is_empty() {
        return None;
    }
    let n_classes = state.n_classes();
    let weights: Vec<f64> = ns.iter().map(|&j| masked_weight(lg, u, j)).collect();
    let total: f64 = weights.iter().sum();
    let mut out = vec![0.0; n_classes];
    if total > 0.0 {
        for (&j, &w) in ns.iter().zip(&weights) {
            for (o, p) in out.iter_mut().zip(&state.dist[j.0]) {
                *o += w * p;
            }
        }
        for o in &mut out {
            *o /= total;
        }
    } else {
        // Eq. (4.1): plain average when no attribute overlap exists.
        for &j in ns {
            for (o, p) in out.iter_mut().zip(&state.dist[j.0]) {
                *o += p;
            }
        }
        for o in &mut out {
            *o /= ns.len() as f64;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdp_graph::{CategoryId, GraphBuilder, Schema, SocialGraph};

    /// Star: u0 centre, linked to u1 (label 0), u2 (label 0), u3 (label 1).
    /// Attribute columns 0-1 are features, column 2 is the label.
    fn star() -> SocialGraph {
        let mut b = GraphBuilder::new(Schema::uniform(3, 2));
        let u0 = b.user_with(&[0, 0, 0]);
        let u1 = b.user_with(&[0, 0, 0]); // shares 2 attrs with u0
        let u2 = b.user_with(&[0, 1, 0]); // shares 1
        let u3 = b.user_with(&[1, 1, 1]); // shares 0
        b.edge(u0, u1).edge(u0, u2).edge(u0, u3);
        b.build()
    }

    #[test]
    fn weighted_average_prefers_similar_neighbours() {
        let g = star();
        let lg = LabeledGraph::new(&g, CategoryId(2), vec![false, true, true, true]);
        let state = RelationalState::new(&lg);
        let d = relational_dist(&lg, &state, UserId(0)).unwrap();
        // Masked weights from u0: u1 shares both features (w=1), u2 shares
        // one (w=0.5), u3 shares none (w=0) → P(class 0) = 1.5/1.5 = 1.
        assert!((d[0] - 1.0).abs() < 1e-12, "{d:?}");
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Weight computation itself masks the label column.
        assert!((masked_weight(&lg, UserId(0), UserId(2)) - 0.5).abs() < 1e-12);
        assert!(masked_weight(&lg, UserId(0), UserId(3)).abs() < 1e-12);
    }

    #[test]
    fn isolated_user_returns_none() {
        let mut b = GraphBuilder::new(Schema::uniform(2, 2));
        b.user_with(&[0, 0]);
        let g = b.build();
        let lg = LabeledGraph::new(&g, CategoryId(1), vec![false]);
        let state = RelationalState::new(&lg);
        assert!(relational_dist(&lg, &state, UserId(0)).is_none());
    }

    #[test]
    fn zero_weights_fall_back_to_plain_average() {
        // u0 publishes nothing → all wvRN weights are 0 → Eq. (4.1) average.
        let mut b = GraphBuilder::new(Schema::uniform(2, 2));
        let u0 = b.user();
        let u1 = b.user_with(&[0, 0]);
        let u2 = b.user_with(&[1, 1]);
        b.edge(u0, u1).edge(u0, u2);
        let g = b.build();
        let lg = LabeledGraph::new(&g, CategoryId(1), vec![false, true, true]);
        let state = RelationalState::new(&lg);
        let d = relational_dist(&lg, &state, UserId(0)).unwrap();
        assert!((d[0] - 0.5).abs() < 1e-12 && (d[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn state_pins_known_users() {
        let g = star();
        let lg = LabeledGraph::new(&g, CategoryId(2), vec![false, true, true, true]);
        let state = RelationalState::new(&lg);
        assert_eq!(state.dist[3], vec![0.0, 1.0]);
        assert_eq!(state.dist[0], vec![0.5, 0.5]);
    }
}
