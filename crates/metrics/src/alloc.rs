//! Instrumented global allocator with per-span attribution.
//!
//! [`CountingAlloc`] wraps the system allocator and keeps process-wide
//! totals (bytes, allocation count, live bytes, peak live bytes) in
//! relaxed atomics. A binary opts in with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: ppdp_metrics::alloc::CountingAlloc = ppdp_metrics::alloc::CountingAlloc;
//! ```
//!
//! Attribution: `ppdp-telemetry` opens an [`AllocScope`] for every span
//! it enters. The scope points the calling thread at an [`AllocCell`]
//! keyed by the span path; every allocation on that thread is charged to
//! the innermost open scope. Cells are leaked `&'static` so the
//! allocator hot path never touches reference counts and a cell can
//! never be freed while a pointer to it is live in another thread's TLS.
//!
//! Caveats (documented in DESIGN.md): attribution is by *allocating
//! span*, so bytes freed later are still charged to the allocator;
//! `live`/`peak` are process-wide, not per-span; allocations on threads
//! with no open scope (e.g. the heartbeat) are counted in the totals but
//! attributed to no span; and the TLS read uses `try_with`, so
//! allocations during thread teardown fall back to unattributed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

static BYTES: AtomicU64 = AtomicU64::new(0);
static COUNT: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK_LIVE: AtomicU64 = AtomicU64::new(0);

/// Attribution target for one span path. Updated with relaxed atomics
/// from the allocator hot path.
#[derive(Debug, Default)]
pub struct AllocCell {
    bytes: AtomicU64,
    count: AtomicU64,
}

/// Registry of leaked attribution cells, keyed by span path.
static CELLS: Mutex<BTreeMap<String, &'static AllocCell>> = Mutex::new(BTreeMap::new());

thread_local! {
    /// Innermost open attribution cell for this thread. Const-initialised
    /// so reading it can never itself allocate.
    static CURRENT: Cell<*const AllocCell> = const { Cell::new(std::ptr::null()) };
}

/// The instrumented allocator. Zero-sized; all state is in statics.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

impl CountingAlloc {
    #[inline]
    fn charge(size: usize) {
        let size = size as u64;
        BYTES.fetch_add(size, Ordering::Relaxed);
        COUNT.fetch_add(1, Ordering::Relaxed);
        let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
        PEAK_LIVE.fetch_max(live, Ordering::Relaxed);
        // `try_with` so allocations during TLS teardown stay safe (they
        // simply go unattributed).
        let _ = CURRENT.try_with(|c| {
            let p = c.get();
            if !p.is_null() {
                // SAFETY: cells are leaked &'static (see module docs);
                // a non-null pointer always refers to a live cell.
                let cell = unsafe { &*p };
                cell.bytes.fetch_add(size, Ordering::Relaxed);
                cell.count.fetch_add(1, Ordering::Relaxed);
            }
        });
    }

    #[inline]
    fn release(size: usize) {
        // Saturating: a dealloc racing installation imbalance must not
        // wrap the live counter.
        let _ = LIVE.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(size as u64))
        });
    }
}

// SAFETY: defers all allocation to `System`; bookkeeping is lock-free
// atomics plus a TLS read that cannot allocate or panic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            Self::charge(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            Self::charge(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        Self::release(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            Self::charge(new_size);
            Self::release(layout.size());
        }
        p
    }
}

/// Process-wide allocation totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocTotals {
    /// Cumulative bytes allocated.
    pub bytes: u64,
    /// Cumulative allocation count.
    pub count: u64,
    /// Currently live (allocated − freed) bytes.
    pub live_bytes: u64,
    /// High-water mark of `live_bytes`.
    pub peak_live_bytes: u64,
}

/// True once at least one allocation has flowed through
/// [`CountingAlloc`] — i.e. the binary actually installed it as the
/// global allocator.
pub fn installed() -> bool {
    COUNT.load(Ordering::Relaxed) > 0
}

/// Current totals, or `None` when [`CountingAlloc`] is not installed.
pub fn totals() -> Option<AllocTotals> {
    if !installed() {
        return None;
    }
    Some(AllocTotals {
        bytes: BYTES.load(Ordering::Relaxed),
        count: COUNT.load(Ordering::Relaxed),
        live_bytes: LIVE.load(Ordering::Relaxed),
        peak_live_bytes: PEAK_LIVE.load(Ordering::Relaxed),
    })
}

/// Snapshot of every span attribution cell as `(path, bytes, count)`,
/// sorted by path.
pub fn span_cells() -> Vec<(String, u64, u64)> {
    let map = match CELLS.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    map.iter()
        .map(|(path, cell)| {
            (
                path.clone(),
                cell.bytes.load(Ordering::Relaxed),
                cell.count.load(Ordering::Relaxed),
            )
        })
        .collect()
}

/// RAII guard that attributes this thread's allocations to `path` until
/// dropped, restoring the previous attribution target (scopes nest with
/// telemetry spans).
#[derive(Debug)]
pub struct AllocScope {
    prev: *const AllocCell,
    active: bool,
}

// Not Send: the guard must be dropped on the thread that opened it, which
// the telemetry span guard (itself thread-bound) guarantees.

impl AllocScope {
    /// Open an attribution scope for `path`. Inert (zero-cost) when the
    /// counting allocator is not installed or metrics are disabled.
    pub fn enter(path: &str) -> AllocScope {
        if !installed() || !crate::enabled() {
            return AllocScope {
                prev: std::ptr::null(),
                active: false,
            };
        }
        let cell = cell_for(path);
        let prev = CURRENT
            .try_with(|c| {
                let prev = c.get();
                c.set(cell as *const AllocCell);
                prev
            })
            .unwrap_or(std::ptr::null());
        AllocScope { prev, active: true }
    }
}

impl Drop for AllocScope {
    fn drop(&mut self) {
        if self.active {
            let _ = CURRENT.try_with(|c| c.set(self.prev));
        }
    }
}

/// Resolve (or create and leak) the attribution cell for `path`.
fn cell_for(path: &str) -> &'static AllocCell {
    let mut map = match CELLS.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    if let Some(c) = map.get(path) {
        return c;
    }
    let leaked: &'static AllocCell = Box::leak(Box::new(AllocCell::default()));
    map.insert(path.to_owned(), leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_totals_and_scoped_cell() {
        let _g = match crate::TEST_GUARD.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        // Drive the allocator directly — the test binary does not install
        // it globally, so we exercise the bookkeeping paths by hand.
        let a = CountingAlloc;
        let layout = match Layout::from_size_align(256, 8) {
            Ok(l) => l,
            Err(e) => panic!("layout: {e}"),
        };
        // SAFETY: standard alloc/dealloc pairing with a valid layout.
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            a.dealloc(p, layout);
        }
        let t = match totals() {
            Some(t) => t,
            None => panic!("allocator should report totals after direct use"),
        };
        assert!(t.bytes >= 256);
        assert!(t.count >= 1);
        assert!(t.peak_live_bytes >= 256);

        // Attribution requires metrics to be enabled.
        let registry = crate::Registry::new();
        let prev = crate::install_global(registry);
        {
            let _scope = AllocScope::enter("test.alloc.scope");
            // SAFETY: as above.
            unsafe {
                let p = a.alloc(layout);
                assert!(!p.is_null());
                a.dealloc(p, layout);
            }
        }
        let cells = span_cells();
        let mine = cells
            .iter()
            .find(|(p, _, _)| p == "test.alloc.scope")
            .cloned();
        match mine {
            Some((_, bytes, count)) => {
                assert!(bytes >= 256);
                assert!(count >= 1);
            }
            None => panic!("scope cell missing: {cells:?}"),
        }
        crate::uninstall_global();
        if let Some(r) = prev {
            crate::install_global(r);
        }
    }
}
