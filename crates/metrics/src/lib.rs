//! Live metric registry with OpenMetrics exposition and resource
//! accounting for the ppdp workspace.
//!
//! `ppdp-telemetry` is a *post-mortem* layer: spans and counters
//! accumulate into a [`RunReport`]-style aggregate that is only visible
//! when the run finishes. This crate is the *live* counterpart needed by
//! paper-scale runs (10⁵-SNP genomes, 10⁵⁺-node graphs) and the
//! `ppdp-serve` arc: a sharded registry of counters, gauges and
//! fixed-bucket histograms that can be scraped mid-run.
//!
//! Architecture (mirrors `ppdp-trace`'s collector pattern):
//!
//! * a process-global `Option<Registry>` behind a mutex, with an
//!   [`enabled`] fast path that is a single relaxed atomic load — when no
//!   registry is installed every recording call is a no-op costing one
//!   branch;
//! * per-thread **shards**: a thread resolves its shard once per install
//!   epoch and caches `Arc` handles per metric name in TLS, so the steady
//!   state hot path is a `HashMap` lookup plus one relaxed atomic op — no
//!   locks, no allocation;
//! * scrapes merge all shards: counters sum, histograms merge, gauges are
//!   last-write-wins by a registry-global sequence number;
//! * [`resource::Heartbeat`] samples RSS/threads and derives
//!   progress/rate/ETA gauges from `target.*` declarations;
//! * [`alloc::CountingAlloc`] (opt-in `#[global_allocator]`) attributes
//!   bytes/allocs to the innermost telemetry span;
//! * [`http::serve`] exposes everything as OpenMetrics text;
//!   [`expose::validate`] checks a payload without external parsers.
//!
//! `ppdp-telemetry` tees every span, counter, value and ε-draw in here
//! (when a registry is installed), so kernels get live series with zero
//! call-site changes. This crate deliberately depends on nothing —
//! std only — per the workspace's zero-dependency observability rule.
//!
//! # Quick start
//!
//! ```
//! let registry = ppdp_metrics::Registry::new();
//! ppdp_metrics::install_global(registry.clone());
//! ppdp_metrics::counter("demo.events", 3);
//! ppdp_metrics::observe("demo.latency_seconds", 0.012);
//! ppdp_metrics::gauge_set("demo.progress", 0.5);
//! let text = registry.snapshot().to_openmetrics();
//! assert!(text.contains("demo_events_total 3"));
//! assert!(ppdp_metrics::expose::validate(&text).is_ok());
//! ppdp_metrics::uninstall_global();
//! ```

pub mod alloc;
pub mod expose;
pub mod http;
pub mod registry;
pub mod resource;

pub use expose::{validate, ExpositionStats};
pub use http::MetricsServer;
pub use registry::{HistSnapshot, MetricsSnapshot, Registry};
pub use resource::{Heartbeat, ResourceSample};

use registry::{CounterCell, FloatCell, GaugeCell, HistCell, Shard};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// 1 when a global registry is installed — the no-op fast path gate.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);
/// Bumped on every install/uninstall so TLS caches from a previous
/// registry are discarded instead of writing into a dead registry.
static EPOCH: AtomicU64 = AtomicU64::new(0);
static GLOBAL: Mutex<Option<Registry>> = Mutex::new(None);

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Per-thread resolved shard plus metric-name → cell handle caches.
struct LocalShard {
    epoch: u64,
    registry: Option<Registry>,
    shard: Option<Arc<Shard>>,
    counters: HashMap<String, Arc<CounterCell>>,
    fcounters: HashMap<String, Arc<FloatCell>>,
    gauges: HashMap<String, Arc<GaugeCell>>,
    hists: HashMap<String, Arc<HistCell>>,
}

impl LocalShard {
    fn new() -> Self {
        LocalShard {
            epoch: 0,
            registry: None,
            shard: None,
            counters: HashMap::new(),
            fcounters: HashMap::new(),
            gauges: HashMap::new(),
            hists: HashMap::new(),
        }
    }

    /// Revalidate against the current install epoch; (re)acquire a shard
    /// from the live registry when stale.
    fn sync(&mut self) -> bool {
        let epoch = EPOCH.load(Ordering::Acquire);
        if self.epoch != epoch {
            self.retire();
            self.epoch = epoch;
            self.registry = relock(&GLOBAL).clone();
            self.shard = self.registry.as_ref().map(Registry::acquire_shard);
        }
        self.shard.is_some()
    }

    /// Return the shard to the registry's free list and drop caches.
    fn retire(&mut self) {
        if let (Some(reg), Some(shard)) = (self.registry.take(), self.shard.take()) {
            reg.release_shard(shard);
        }
        self.counters.clear();
        self.fcounters.clear();
        self.gauges.clear();
        self.hists.clear();
    }
}

impl Drop for LocalShard {
    fn drop(&mut self) {
        self.retire();
    }
}

thread_local! {
    static LOCAL: RefCell<LocalShard> = RefCell::new(LocalShard::new());
}

/// Install `registry` as the process-global live registry, returning the
/// previously installed one (if any). Recording calls from any thread
/// start flowing into it immediately.
pub fn install_global(registry: Registry) -> Option<Registry> {
    let mut slot = relock(&GLOBAL);
    let prev = slot.replace(registry);
    ACTIVE.store(1, Ordering::SeqCst);
    EPOCH.fetch_add(1, Ordering::AcqRel);
    prev
}

/// Remove the global registry, returning it. Recording calls become
/// single-branch no-ops again.
pub fn uninstall_global() -> Option<Registry> {
    let mut slot = relock(&GLOBAL);
    let prev = slot.take();
    ACTIVE.store(0, Ordering::SeqCst);
    EPOCH.fetch_add(1, Ordering::AcqRel);
    prev
}

/// True when a global registry is installed. Single relaxed load — this
/// is the gate every tee in `ppdp-telemetry` checks first.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// Clone of the installed global registry, if any.
pub fn global() -> Option<Registry> {
    relock(&GLOBAL).clone()
}

/// Pre-resolve the calling thread's shard (and pay the registration lock
/// now rather than at the first metric touch). `ppdp-exec` calls this
/// from each freshly spawned worker.
pub fn register_thread() {
    if !enabled() {
        return;
    }
    let _ = LOCAL.try_with(|l| {
        l.borrow_mut().sync();
    });
}

/// Run `f` with the thread-local state when a registry is live.
#[inline]
fn with_local<F: FnOnce(&mut LocalShard)>(f: F) {
    if !enabled() {
        return;
    }
    let _ = LOCAL.try_with(|l| {
        // A recording call re-entered from within a recording call (e.g.
        // via the instrumented allocator) would hit the RefCell borrow —
        // recording paths never allocate through cells, but stay safe.
        if let Ok(mut local) = l.try_borrow_mut() {
            if local.sync() {
                f(&mut local);
            }
        }
    });
}

/// Add `n` to integer counter `name`.
#[inline]
pub fn counter(name: &str, n: u64) {
    with_local(|local| {
        if let Some(shard) = &local.shard {
            let cell = local
                .counters
                .entry(name.to_owned())
                .or_insert_with(|| shard.counter_cell(name));
            cell.add(n);
        }
    });
}

/// Add `v` to monotone float counter `name` (e.g. ε spent).
#[inline]
pub fn counter_f64(name: &str, v: f64) {
    with_local(|local| {
        if let Some(shard) = &local.shard {
            let cell = local
                .fcounters
                .entry(name.to_owned())
                .or_insert_with(|| shard.fcounter_cell(name));
            cell.add(v);
        }
    });
}

/// Set gauge `name` to `v` (last-write-wins across threads).
#[inline]
pub fn gauge_set(name: &str, v: f64) {
    with_local(|local| {
        if let (Some(shard), Some(reg)) = (&local.shard, &local.registry) {
            let cell = local
                .gauges
                .entry(name.to_owned())
                .or_insert_with(|| shard.gauge_cell(name));
            cell.set(v, reg.next_gauge_seq());
        }
    });
}

/// Record sample `v` into histogram `name` (decade buckets).
#[inline]
pub fn observe(name: &str, v: f64) {
    with_local(|local| {
        if let Some(shard) = &local.shard {
            let cell = local
                .hists
                .entry(name.to_owned())
                .or_insert_with(|| shard.hist_cell(name));
            cell.observe(v);
        }
    });
}

/// Record a completed telemetry span: duration histogram
/// `span.<path>.seconds` plus counter `span.<path>.calls`.
#[inline]
pub fn observe_span(path: &str, wall_nanos: u64) {
    if !enabled() {
        return;
    }
    let secs = wall_nanos as f64 * 1e-9;
    observe(&format!("span.{path}.seconds"), secs);
    counter(&format!("span.{path}.calls"), 1);
}

/// Declare the completion target for progress tracking: the heartbeat
/// derives `progress.<name>` / `rate.<name>_per_s` / `eta_seconds.<name>`
/// from counter (or gauge) `<name>` relative to this target.
#[inline]
pub fn set_target(name: &str, total: f64) {
    gauge_set(&format!("target.{name}"), total);
}

/// Everything a binary needs for live observability, driven by the
/// `PPDP_METRICS*` environment surface:
///
/// | variable | effect |
/// |---|---|
/// | `PPDP_METRICS=1` | install a registry + heartbeat |
/// | `PPDP_METRICS_ADDR=host:port` | also serve OpenMetrics over HTTP (implies `PPDP_METRICS=1`) |
/// | `PPDP_METRICS_OUT=path` | write a final OpenMetrics snapshot on [`LiveMetrics::finish`] |
/// | `PPDP_METRICS_SNAPSHOT=path` | heartbeat rewrites this snapshot file every tick |
/// | `PPDP_METRICS_INTERVAL_MS=n` | heartbeat period (default 500) |
#[derive(Debug, Default)]
pub struct LiveMetrics {
    registry: Option<Registry>,
    heartbeat: Option<Heartbeat>,
    server: Option<MetricsServer>,
    out: Option<std::path::PathBuf>,
    installed_global: bool,
}

impl LiveMetrics {
    /// Read the `PPDP_METRICS*` environment and start whatever it asks
    /// for. Returns an inert handle (all no-ops) when metrics are off.
    pub fn from_env() -> LiveMetrics {
        let on = std::env::var("PPDP_METRICS")
            .map(|v| v == "1")
            .unwrap_or(false);
        let addr = std::env::var("PPDP_METRICS_ADDR").ok();
        if !on && addr.is_none() {
            return LiveMetrics::default();
        }
        let interval_ms = std::env::var("PPDP_METRICS_INTERVAL_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(500);
        let snapshot = std::env::var("PPDP_METRICS_SNAPSHOT")
            .ok()
            .map(std::path::PathBuf::from);
        let out = std::env::var("PPDP_METRICS_OUT")
            .ok()
            .map(std::path::PathBuf::from);
        Self::install(addr.as_deref(), interval_ms, snapshot, out)
    }

    /// Programmatic installation (used by `bench_scale`): optional HTTP
    /// address, heartbeat period, optional heartbeat snapshot file and
    /// final-snapshot path.
    pub fn install(
        addr: Option<&str>,
        interval_ms: u64,
        snapshot: Option<std::path::PathBuf>,
        out: Option<std::path::PathBuf>,
    ) -> LiveMetrics {
        let registry = Registry::new();
        install_global(registry.clone());
        let heartbeat = Heartbeat::start(
            registry.clone(),
            std::time::Duration::from_millis(interval_ms),
            snapshot,
        );
        let server = addr.and_then(|a| match http::serve(a, registry.clone()) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("ppdp-metrics: failed to bind {a}: {e}");
                None
            }
        });
        LiveMetrics {
            registry: Some(registry),
            heartbeat: Some(heartbeat),
            server,
            out,
            installed_global: true,
        }
    }

    /// True when a registry was actually installed.
    pub fn active(&self) -> bool {
        self.registry.is_some()
    }

    /// The registry, when active.
    pub fn registry(&self) -> Option<&Registry> {
        self.registry.as_ref()
    }

    /// The HTTP endpoint address, when serving.
    pub fn addr(&self) -> Option<std::net::SocketAddr> {
        self.server.as_ref().map(MetricsServer::addr)
    }

    /// Stop heartbeat and server, write the final snapshot (if
    /// configured), uninstall the global registry, and return the final
    /// merged snapshot. Safe to call on an inert handle (returns an
    /// empty snapshot).
    pub fn finish(mut self) -> MetricsSnapshot {
        if let Some(mut hb) = self.heartbeat.take() {
            hb.stop();
        }
        if let Some(mut srv) = self.server.take() {
            srv.stop();
        }
        let snap = self
            .registry
            .take()
            .map(|r| r.snapshot())
            .unwrap_or_default();
        if self.installed_global {
            uninstall_global();
            self.installed_global = false;
        }
        if let Some(path) = self.out.take() {
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            if let Err(e) = ppdp_durable::write_atomic(&path, snap.to_openmetrics().as_bytes()) {
                eprintln!("ppdp-metrics: failed to write {}: {e}", path.display());
            }
        }
        snap
    }
}

/// Serialises tests that install the process-global registry (unit tests
/// in this crate run on parallel threads within one binary).
#[cfg(test)]
pub(crate) static TEST_GUARD: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    fn guard() -> MutexGuard<'static, ()> {
        match TEST_GUARD.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let _g = guard();
        uninstall_global();
        counter("lib.disabled.count", 5);
        assert!(!enabled());
        let registry = Registry::new();
        install_global(registry.clone());
        counter("lib.disabled.count", 2);
        let snap = registry.snapshot_shards_only();
        assert_eq!(snap.counters.get("lib.disabled.count"), Some(&2));
        uninstall_global();
    }

    #[test]
    fn epoch_bump_redirects_cached_threads() {
        let _g = guard();
        let first = Registry::new();
        install_global(first.clone());
        counter("lib.epoch.count", 1);
        let second = Registry::new();
        install_global(second.clone());
        counter("lib.epoch.count", 10);
        uninstall_global();
        assert_eq!(
            first.snapshot_shards_only().counters.get("lib.epoch.count"),
            Some(&1)
        );
        assert_eq!(
            second
                .snapshot_shards_only()
                .counters
                .get("lib.epoch.count"),
            Some(&10)
        );
    }

    #[test]
    fn observe_span_emits_seconds_histogram_and_calls() {
        let _g = guard();
        let registry = Registry::new();
        install_global(registry.clone());
        observe_span("bp.run", 2_000_000); // 2ms
        let snap = registry.snapshot_shards_only();
        uninstall_global();
        assert_eq!(snap.counters.get("span.bp.run.calls"), Some(&1));
        let h = match snap.histograms.get("span.bp.run.seconds") {
            Some(h) => h,
            None => panic!("span histogram missing"),
        };
        assert_eq!(h.count, 1);
        assert!((h.min - 0.002).abs() < 1e-9);
    }

    #[test]
    fn set_target_declares_target_gauge() {
        let _g = guard();
        let registry = Registry::new();
        install_global(registry.clone());
        set_target("bp.rounds", 100.0);
        let snap = registry.snapshot_shards_only();
        uninstall_global();
        assert_eq!(snap.gauges.get("target.bp.rounds"), Some(&100.0));
    }

    #[test]
    fn worker_threads_merge_into_snapshot() {
        let _g = guard();
        let registry = Registry::new();
        install_global(registry.clone());
        // Determinism-exempt test threads (not kernel work).
        #[allow(clippy::disallowed_methods)]
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    register_thread();
                    for _ in 0..100 {
                        counter("lib.workers.count", 1);
                        observe("lib.workers.value", 0.5);
                    }
                })
            })
            .collect();
        for h in handles {
            let _ = h.join();
        }
        let snap = registry.snapshot_shards_only();
        uninstall_global();
        assert_eq!(snap.counters.get("lib.workers.count"), Some(&400));
        let h = match snap.histograms.get("lib.workers.value") {
            Some(h) => h,
            None => panic!("worker histogram missing"),
        };
        assert_eq!(h.count, 400);
    }

    #[test]
    fn live_metrics_finish_returns_snapshot_and_uninstalls() {
        let _g = guard();
        let lm = LiveMetrics::install(Some("127.0.0.1:0"), 50, None, None);
        assert!(lm.active());
        let addr = match lm.addr() {
            Some(a) => a,
            None => panic!("server did not bind"),
        };
        counter("lib.live.count", 9);
        let body = match http::scrape(&addr) {
            Ok(b) => b,
            Err(e) => panic!("scrape failed: {e}"),
        };
        assert!(body.contains("lib_live_count_total 9"));
        let snap = lm.finish();
        assert!(!enabled());
        assert_eq!(snap.counters.get("lib.live.count"), Some(&9));
        assert!(snap.gauges.contains_key("process.uptime_seconds"));
    }
}
