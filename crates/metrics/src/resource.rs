//! Process resource sampling and the heartbeat thread.
//!
//! [`sample`] parses `/proc/self/status` (Linux) for RSS, peak RSS and
//! thread count. [`Heartbeat`] is a low-frequency monitoring thread that
//! periodically
//!
//! 1. publishes `process.*` resource gauges into the registry,
//! 2. derives **progress / rate / ETA gauges**: for every gauge named
//!    `target.<name>` it looks up the counter `<name>` and emits
//!    `progress.<name>` (fraction complete), `rate.<name>_per_s`
//!    (samples/s since the previous tick) and `eta_seconds.<name>`,
//!    which is how BP round and Gibbs sweep counters become live ETA
//!    series, and
//! 3. optionally writes an OpenMetrics snapshot file (tmp + rename) so
//!    headless CI can observe a run without a scrape port.

use crate::registry::Registry;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One sample of process-level resource usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceSample {
    /// Resident set size in bytes (`VmRSS`).
    pub rss_bytes: u64,
    /// Peak resident set size in bytes (`VmHWM`).
    pub peak_rss_bytes: u64,
    /// Current thread count (`Threads`).
    pub threads: u64,
}

/// Sample the current process, or `None` on platforms without
/// `/proc/self/status`.
pub fn sample() -> Option<ResourceSample> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let mut rss = None;
    let mut hwm = None;
    let mut threads = None;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            rss = parse_kb(rest);
        } else if let Some(rest) = line.strip_prefix("VmHWM:") {
            hwm = parse_kb(rest);
        } else if let Some(rest) = line.strip_prefix("Threads:") {
            threads = rest.trim().parse::<u64>().ok();
        }
    }
    Some(ResourceSample {
        rss_bytes: rss?,
        peak_rss_bytes: hwm.unwrap_or(0),
        threads: threads.unwrap_or(0),
    })
}

fn parse_kb(rest: &str) -> Option<u64> {
    let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
    Some(kb * 1024)
}

/// Handle to a running heartbeat thread; stops (and joins) on drop.
#[derive(Debug)]
pub struct Heartbeat {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    /// Start a heartbeat over `registry`, ticking every `interval`. When
    /// `snapshot_path` is set, each tick also rewrites that file with the
    /// current OpenMetrics payload (atomically, via tmp + rename).
    pub fn start(
        registry: Registry,
        interval: Duration,
        snapshot_path: Option<PathBuf>,
    ) -> Heartbeat {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop2 = Arc::clone(&stop);
        // Monitoring thread, not kernel work: exempt from the ppdp-exec
        // determinism model, hence the allow on the spawn denylist.
        #[allow(clippy::disallowed_methods)]
        let handle = std::thread::Builder::new()
            .name("ppdp-metrics-heartbeat".to_owned())
            .spawn(move || {
                run(
                    registry,
                    interval.max(Duration::from_millis(10)),
                    snapshot_path,
                    stop2,
                )
            })
            .ok();
        Heartbeat { stop, handle }
    }

    /// Stop the heartbeat and wait for the thread to exit.
    pub fn stop(&mut self) {
        let (lock, cvar) = &*self.stop;
        if let Ok(mut stopped) = lock.lock() {
            *stopped = true;
        }
        cvar.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop();
        }
    }
}

fn run(
    registry: Registry,
    interval: Duration,
    snapshot_path: Option<PathBuf>,
    stop: Arc<(Mutex<bool>, Condvar)>,
) {
    let shard = registry.acquire_shard();
    let mut prev: HashMap<String, (f64, Instant)> = HashMap::new();
    loop {
        tick(&registry, &shard, &mut prev);
        if let Some(path) = &snapshot_path {
            write_snapshot(&registry, path);
        }
        let (lock, cvar) = &*stop;
        let stopped = match lock.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if *stopped {
            break;
        }
        match cvar.wait_timeout(stopped, interval) {
            Ok((g, _)) if *g => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    registry.release_shard(shard);
}

fn tick(
    registry: &Registry,
    shard: &crate::registry::Shard,
    prev: &mut HashMap<String, (f64, Instant)>,
) {
    shard.counter_cell("metrics.heartbeats").add(1);
    if let Some(rs) = sample() {
        shard
            .gauge_cell("process.rss_bytes")
            .set(rs.rss_bytes as f64, registry.next_gauge_seq());
        shard
            .gauge_cell("process.peak_rss_bytes")
            .set(rs.peak_rss_bytes as f64, registry.next_gauge_seq());
        shard
            .gauge_cell("process.threads")
            .set(rs.threads as f64, registry.next_gauge_seq());
    }
    shard
        .gauge_cell("process.uptime_seconds")
        .set(registry.uptime_seconds(), registry.next_gauge_seq());

    // Progress / rate / ETA derivation from `target.<name>` gauges.
    let snap = registry.snapshot_shards_only();
    let now = Instant::now();
    for (gname, target) in &snap.gauges {
        let name = match gname.strip_prefix("target.") {
            Some(n) => n,
            None => continue,
        };
        let current = snap
            .counters
            .get(name)
            .map(|v| *v as f64)
            .or_else(|| snap.fcounters.get(name).copied())
            .or_else(|| {
                // Progress sources may themselves be gauges (e.g.
                // bp.round, which resets per restart attempt).
                snap.gauges.get(name).copied()
            });
        let current = match current {
            Some(c) => c,
            None => continue,
        };
        if *target > 0.0 {
            shard.gauge_cell(&format!("progress.{name}")).set(
                (current / target).clamp(0.0, 1.0),
                registry.next_gauge_seq(),
            );
        }
        if let Some((pv, pt)) = prev.get(name) {
            let dt = now.duration_since(*pt).as_secs_f64();
            if dt > 0.0 {
                let rate = (current - pv) / dt;
                shard
                    .gauge_cell(&format!("rate.{name}_per_s"))
                    .set(rate.max(0.0), registry.next_gauge_seq());
                if rate > 0.0 && *target > current {
                    shard
                        .gauge_cell(&format!("eta_seconds.{name}"))
                        .set((target - current) / rate, registry.next_gauge_seq());
                }
            }
        }
        prev.insert(name.to_owned(), (current, now));
    }
}

fn write_snapshot(registry: &Registry, path: &Path) {
    let text = registry.snapshot().to_openmetrics();
    // Crash-safe replace (tmp + fsync + rename + dir fsync): a scrape or a
    // post-crash reader never observes a half-written snapshot.
    let _ = ppdp_durable::write_atomic(path, text.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_status_sampling_works_on_linux() {
        if !std::path::Path::new("/proc/self/status").exists() {
            return;
        }
        let s = match sample() {
            Some(s) => s,
            None => panic!("sampling failed on linux"),
        };
        assert!(s.rss_bytes > 0);
        assert!(s.threads >= 1);
    }

    #[test]
    fn heartbeat_derives_progress_and_eta() {
        let registry = Registry::new();
        let shard = registry.acquire_shard();
        shard
            .gauge_cell("target.demo.items")
            .set(100.0, registry.next_gauge_seq());
        shard.counter_cell("demo.items").add(25);
        let mut hb = Heartbeat::start(registry.clone(), Duration::from_millis(15), None);
        // First tick records progress; a later tick (after more work)
        // derives a positive rate and an ETA.
        std::thread::sleep(Duration::from_millis(40));
        shard.counter_cell("demo.items").add(25);
        std::thread::sleep(Duration::from_millis(60));
        hb.stop();

        let snap = registry.snapshot_shards_only();
        let progress = snap.gauges.get("progress.demo.items").copied();
        match progress {
            Some(p) => assert!((0.25..=1.0).contains(&p), "progress {p}"),
            None => panic!(
                "no progress gauge: {:?}",
                snap.gauges.keys().collect::<Vec<_>>()
            ),
        }
        assert!(
            snap.counters
                .get("metrics.heartbeats")
                .copied()
                .unwrap_or(0)
                >= 2
        );
        assert!(snap.gauges.contains_key("rate.demo.items_per_s"));
    }

    #[test]
    fn snapshot_file_is_written_and_valid() {
        let registry = Registry::new();
        let shard = registry.acquire_shard();
        shard.counter_cell("demo.file.count").add(7);
        let dir = std::env::temp_dir().join("ppdp_metrics_hb_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("snap.prom");
        let _ = std::fs::remove_file(&path);
        let mut hb = Heartbeat::start(
            registry.clone(),
            Duration::from_millis(15),
            Some(path.clone()),
        );
        std::thread::sleep(Duration::from_millis(80));
        hb.stop();
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => panic!("snapshot file missing: {e}"),
        };
        if let Err(e) = crate::expose::validate(&text) {
            panic!("invalid snapshot exposition: {e}");
        }
        assert!(text.contains("demo_file_count_total 7"));
        let _ = std::fs::remove_file(&path);
    }
}
