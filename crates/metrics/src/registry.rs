//! Sharded live metric registry.
//!
//! The registry holds one [`Shard`] per participating thread. A thread
//! resolves its shard once (guarded by an install epoch, see `lib.rs`),
//! caches `Arc` handles to the individual metric cells it touches, and
//! from then on updates are plain relaxed atomic operations — no locks on
//! the hot path. Locks are only taken when a thread first touches a
//! metric name, when a worker thread registers or retires its shard, and
//! when a scrape merges all shards into a [`MetricsSnapshot`].
//!
//! Merge semantics mirror `ppdp-telemetry`'s report merge:
//!
//! * **counters** (integer and float) sum across shards — order never
//!   matters for `u64`, and float sums are compared only through the
//!   tolerance-aware [`MetricsSnapshot::equivalence_view`];
//! * **histograms** sum `count`/`buckets`, combine `min`/`max`, and sum
//!   `sum` (same caveat);
//! * **gauges** are last-write-wins, arbitrated by a registry-global
//!   sequence number so the merge picks the most recent `set` regardless
//!   of which shard it landed in. The value and sequence are two separate
//!   atomics, so a reader can observe a torn (value, seq) pair; gauges
//!   are presentation-only (progress, RSS, remaining ε) and the staleness
//!   window is one update, which the scrape path tolerates by design.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Number of histogram buckets. Matches `ppdp-telemetry`'s decade layout:
/// bucket `i` covers `10^(i-12) <= v < 10^(i-11)`, with underflow clamped
/// into bucket 0 and overflow into the last bucket.
pub const BUCKETS: usize = 24;

/// Upper (exclusive) edge of decade bucket `i`, i.e. `10^(i-11)`.
/// The final bucket's edge is `+Inf` in the exposition layer.
pub fn bucket_upper_edge(i: usize) -> f64 {
    10f64.powi(i as i32 - 11)
}

/// Map a sample to its decade bucket index (same layout as
/// `ppdp_telemetry::Histogram`).
pub fn bucket_index(v: f64) -> usize {
    if !v.is_finite() || v <= 0.0 {
        return 0;
    }
    let exp = v.log10().floor() as i64 + 12;
    exp.clamp(0, BUCKETS as i64 - 1) as usize
}

/// Lock a mutex, recovering the guard if a panicking thread poisoned it.
/// Metric cells are always left in a consistent state (every update is a
/// single atomic op), so continuing past poison is sound.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A monotonically increasing integer counter cell.
#[derive(Debug, Default)]
pub struct CounterCell(AtomicU64);

impl CounterCell {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A monotonically increasing float counter cell (e.g. ε spent).
#[derive(Debug)]
pub struct FloatCell {
    bits: AtomicU64,
}

impl Default for FloatCell {
    fn default() -> Self {
        FloatCell {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl FloatCell {
    /// Add `v` via a compare-and-swap loop on the bit pattern.
    #[inline]
    pub fn add(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A last-write-wins gauge cell. `seq` orders writes across shards; the
/// shard merge keeps the value with the highest sequence number.
#[derive(Debug)]
pub struct GaugeCell {
    bits: AtomicU64,
    seq: AtomicU64,
}

impl Default for GaugeCell {
    fn default() -> Self {
        GaugeCell {
            bits: AtomicU64::new(0f64.to_bits()),
            seq: AtomicU64::new(0),
        }
    }
}

impl GaugeCell {
    /// Set the gauge to `v`, stamped with registry sequence `seq`.
    #[inline]
    pub fn set(&self, v: f64, seq: u64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
        self.seq.store(seq, Ordering::Relaxed);
    }

    /// Read `(value, seq)`. The pair may be torn by one in-flight update;
    /// see the module docs for why that is acceptable for gauges.
    pub fn get(&self) -> (f64, u64) {
        (
            f64::from_bits(self.bits.load(Ordering::Relaxed)),
            self.seq.load(Ordering::Relaxed),
        )
    }
}

/// A fixed-bucket histogram cell (decade layout, [`BUCKETS`] buckets).
#[derive(Debug)]
pub struct HistCell {
    count: AtomicU64,
    sum: FloatCell,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for HistCell {
    fn default() -> Self {
        HistCell {
            count: AtomicU64::new(0),
            sum: FloatCell::default(),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl HistCell {
    /// Record one sample.
    #[inline]
    pub fn observe(&self, v: f64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.add(v);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        update_float_extreme(&self.min_bits, v, |cur, new| new < cur);
        update_float_extreme(&self.max_bits, v, |cur, new| new > cur);
    }
}

/// CAS-update a float extreme stored as bits. `better(cur, new)` returns
/// true when `new` should replace `cur`.
fn update_float_extreme(bits: &AtomicU64, v: f64, better: fn(f64, f64) -> bool) {
    let mut cur = bits.load(Ordering::Relaxed);
    while better(f64::from_bits(cur), v) {
        match bits.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}

/// Per-thread metric shard. Each map is locked only when a thread first
/// touches a name (cell creation) and during scrapes; updates go through
/// cached `Arc` cell handles.
#[derive(Debug, Default)]
pub struct Shard {
    counters: Mutex<BTreeMap<String, Arc<CounterCell>>>,
    fcounters: Mutex<BTreeMap<String, Arc<FloatCell>>>,
    gauges: Mutex<BTreeMap<String, Arc<GaugeCell>>>,
    hists: Mutex<BTreeMap<String, Arc<HistCell>>>,
}

impl Shard {
    /// Get or create the integer counter cell for `name`.
    pub fn counter_cell(&self, name: &str) -> Arc<CounterCell> {
        let mut map = relock(&self.counters);
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(CounterCell::default());
        map.insert(name.to_owned(), Arc::clone(&c));
        c
    }

    /// Get or create the float counter cell for `name`.
    pub fn fcounter_cell(&self, name: &str) -> Arc<FloatCell> {
        let mut map = relock(&self.fcounters);
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(FloatCell::default());
        map.insert(name.to_owned(), Arc::clone(&c));
        c
    }

    /// Get or create the gauge cell for `name`.
    pub fn gauge_cell(&self, name: &str) -> Arc<GaugeCell> {
        let mut map = relock(&self.gauges);
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(GaugeCell::default());
        map.insert(name.to_owned(), Arc::clone(&c));
        c
    }

    /// Get or create the histogram cell for `name`.
    pub fn hist_cell(&self, name: &str) -> Arc<HistCell> {
        let mut map = relock(&self.hists);
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(HistCell::default());
        map.insert(name.to_owned(), Arc::clone(&c));
        c
    }
}

struct RegistryInner {
    /// All shards ever handed out, live and retired alike. Scrapes merge
    /// every entry, so counts survive thread exit.
    shards: Mutex<Vec<Arc<Shard>>>,
    /// Shards whose owning thread has exited, available for reuse so
    /// repeated `par_map` fan-outs don't grow the shard list unboundedly.
    free: Mutex<Vec<Arc<Shard>>>,
    /// Registry-global Lamport clock for gauge writes.
    gauge_seq: AtomicU64,
    /// Process instant the registry was created (uptime gauge).
    epoch: std::time::Instant,
}

/// Handle to a live metric registry. Cheap to clone; all clones share the
/// same shards.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = relock(&self.inner.shards).len();
        f.debug_struct("Registry").field("shards", &n).finish()
    }
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Registry {
            inner: Arc::new(RegistryInner {
                shards: Mutex::new(Vec::new()),
                free: Mutex::new(Vec::new()),
                gauge_seq: AtomicU64::new(0),
                epoch: std::time::Instant::now(),
            }),
        }
    }

    /// Acquire a shard for the calling thread: reuse a retired shard if
    /// one is free, otherwise append a fresh one.
    pub fn acquire_shard(&self) -> Arc<Shard> {
        if let Some(s) = relock(&self.inner.free).pop() {
            return s;
        }
        let s = Arc::new(Shard::default());
        relock(&self.inner.shards).push(Arc::clone(&s));
        s
    }

    /// Return a shard to the free list when its owning thread exits. The
    /// shard stays in `shards` (its counts remain visible); it is merely
    /// eligible for reuse by the next worker thread.
    pub fn release_shard(&self, shard: Arc<Shard>) {
        relock(&self.inner.free).push(shard);
    }

    /// Next gauge sequence number (registry-global, monotone).
    pub fn next_gauge_seq(&self) -> u64 {
        self.inner.gauge_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Seconds since the registry was created.
    pub fn uptime_seconds(&self) -> f64 {
        self.inner.epoch.elapsed().as_secs_f64()
    }

    /// True when both handles point at the same registry.
    pub fn same_as(&self, other: &Registry) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Merge every shard into a point-in-time [`MetricsSnapshot`] and fold
    /// in process-level resource series (`process.*`, `alloc.*`).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.snapshot_shards_only();
        snap.gauges
            .insert("process.uptime_seconds".to_owned(), self.uptime_seconds());
        if let Some(rs) = crate::resource::sample() {
            snap.gauges
                .insert("process.rss_bytes".to_owned(), rs.rss_bytes as f64);
            snap.gauges.insert(
                "process.peak_rss_bytes".to_owned(),
                rs.peak_rss_bytes as f64,
            );
            snap.gauges
                .insert("process.threads".to_owned(), rs.threads as f64);
        }
        if let Some(at) = crate::alloc::totals() {
            snap.counters.insert("alloc.bytes".to_owned(), at.bytes);
            snap.counters.insert("alloc.count".to_owned(), at.count);
            snap.gauges
                .insert("alloc.live_bytes".to_owned(), at.live_bytes as f64);
            snap.gauges.insert(
                "alloc.peak_live_bytes".to_owned(),
                at.peak_live_bytes as f64,
            );
            for (path, bytes, count) in crate::alloc::span_cells() {
                snap.counters
                    .insert(format!("alloc.span.{path}.bytes"), bytes);
                snap.counters
                    .insert(format!("alloc.span.{path}.count"), count);
            }
        }
        snap
    }

    /// Merge every shard into a snapshot without the process/alloc fold-in
    /// (used by tests that compare pure registry state).
    pub fn snapshot_shards_only(&self) -> MetricsSnapshot {
        let shards: Vec<Arc<Shard>> = relock(&self.inner.shards).clone();
        let mut snap = MetricsSnapshot::default();
        let mut gauge_seqs: BTreeMap<String, u64> = BTreeMap::new();
        for shard in &shards {
            for (name, cell) in relock(&shard.counters).iter() {
                *snap.counters.entry(name.clone()).or_insert(0) += cell.get();
            }
            for (name, cell) in relock(&shard.fcounters).iter() {
                *snap.fcounters.entry(name.clone()).or_insert(0.0) += cell.get();
            }
            for (name, cell) in relock(&shard.gauges).iter() {
                let (v, seq) = cell.get();
                let best = gauge_seqs.entry(name.clone()).or_insert(0);
                if seq >= *best {
                    *best = seq;
                    snap.gauges.insert(name.clone(), v);
                }
            }
            for (name, cell) in relock(&shard.hists).iter() {
                let entry = snap
                    .histograms
                    .entry(name.clone())
                    .or_insert_with(|| HistSnapshot {
                        count: 0,
                        sum: 0.0,
                        min: f64::INFINITY,
                        max: f64::NEG_INFINITY,
                        buckets: vec![0; BUCKETS],
                    });
                entry.count += cell.count.load(Ordering::Relaxed);
                entry.sum += cell.sum.get();
                let min = f64::from_bits(cell.min_bits.load(Ordering::Relaxed));
                let max = f64::from_bits(cell.max_bits.load(Ordering::Relaxed));
                if min < entry.min {
                    entry.min = min;
                }
                if max > entry.max {
                    entry.max = max;
                }
                for (dst, src) in entry.buckets.iter_mut().zip(cell.buckets.iter()) {
                    *dst += src.load(Ordering::Relaxed);
                }
            }
        }
        snap
    }
}

/// Point-in-time merged view of a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Integer counters, summed across shards.
    pub counters: BTreeMap<String, u64>,
    /// Float counters (ε/δ spend), summed across shards.
    pub fcounters: BTreeMap<String, f64>,
    /// Gauges, last-write-wins by registry sequence.
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bucket histograms, merged across shards.
    pub histograms: BTreeMap<String, HistSnapshot>,
}

/// Merged histogram state inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    /// Total number of samples.
    pub count: u64,
    /// Sum of samples (float addition — compare with tolerance).
    pub sum: f64,
    /// Smallest sample, `+Inf` when empty.
    pub min: f64,
    /// Largest sample, `-Inf` when empty.
    pub max: f64,
    /// Decade bucket occupancy ([`BUCKETS`] entries).
    pub buckets: Vec<u64>,
}

impl MetricsSnapshot {
    /// Project out everything that may legitimately differ between
    /// `ExecPolicy::Sequential` and `ExecPolicy::Parallel` runs of the
    /// same workload: float sums (addition order), gauges (timing and
    /// scheduling dependent), environment series (`process.*`,
    /// `alloc.*`, `exec.*`, `metrics.*`), and span *duration* histograms
    /// (wall time is nondeterministic even between two sequential runs —
    /// the `span.*.calls` counters stay, they are policy-invariant).
    /// What remains — integer counters and histogram
    /// count/min/max/buckets — must be identical, which the root
    /// `tests/metrics.rs` suite enforces.
    pub fn equivalence_view(&self) -> MetricsSnapshot {
        let env = |name: &str| {
            name.starts_with("process.")
                || name.starts_with("alloc.")
                || name.starts_with("exec.")
                || name.starts_with("metrics.")
        };
        let timing = |name: &str| name.starts_with("span.");
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .filter(|(k, _)| !env(k))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            fcounters: self
                .fcounters
                .iter()
                .filter(|(k, _)| !env(k))
                .map(|(k, _)| (k.clone(), 0.0))
                .collect(),
            gauges: BTreeMap::new(),
            histograms: self
                .histograms
                .iter()
                .filter(|(k, _)| !env(k) && !timing(k))
                .map(|(k, h)| {
                    let mut h = h.clone();
                    h.sum = 0.0;
                    (k.clone(), h)
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_matches_telemetry_decades() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(1e-12), 0);
        assert_eq!(bucket_index(1.0), 12);
        assert_eq!(bucket_index(9.9), 12);
        assert_eq!(bucket_index(10.0), 13);
        assert_eq!(bucket_index(1e20), BUCKETS - 1);
        assert!((bucket_upper_edge(12) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn counters_sum_across_shards() {
        let r = Registry::new();
        let a = r.acquire_shard();
        let b = r.acquire_shard();
        a.counter_cell("x").add(3);
        b.counter_cell("x").add(4);
        b.counter_cell("y").add(1);
        let snap = r.snapshot_shards_only();
        assert_eq!(snap.counters.get("x"), Some(&7));
        assert_eq!(snap.counters.get("y"), Some(&1));
    }

    #[test]
    fn gauges_pick_highest_sequence() {
        let r = Registry::new();
        let a = r.acquire_shard();
        let b = r.acquire_shard();
        a.gauge_cell("g").set(1.0, r.next_gauge_seq());
        b.gauge_cell("g").set(2.0, r.next_gauge_seq());
        a.gauge_cell("g").set(3.0, r.next_gauge_seq());
        let snap = r.snapshot_shards_only();
        assert_eq!(snap.gauges.get("g"), Some(&3.0));
    }

    #[test]
    fn histograms_merge_counts_and_extremes() {
        let r = Registry::new();
        let a = r.acquire_shard();
        let b = r.acquire_shard();
        a.hist_cell("h").observe(0.5);
        b.hist_cell("h").observe(50.0);
        let snap = r.snapshot_shards_only();
        let h = snap.histograms.get("h").cloned();
        let h = match h {
            Some(h) => h,
            None => panic!("histogram missing"),
        };
        assert_eq!(h.count, 2);
        assert!((h.min - 0.5).abs() < 1e-12);
        assert!((h.max - 50.0).abs() < 1e-12);
        assert_eq!(h.buckets.iter().sum::<u64>(), 2);
        assert_eq!(h.buckets[bucket_index(0.5)], 1);
        assert_eq!(h.buckets[bucket_index(50.0)], 1);
    }

    #[test]
    fn released_shards_are_reused_and_keep_counts() {
        let r = Registry::new();
        let a = r.acquire_shard();
        a.counter_cell("n").add(2);
        r.release_shard(a);
        let b = r.acquire_shard();
        b.counter_cell("n").add(5);
        // Reuse: still exactly one shard backing the registry.
        let snap = r.snapshot_shards_only();
        assert_eq!(snap.counters.get("n"), Some(&7));
    }

    #[test]
    fn equivalence_view_drops_environment_series() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("bp.messages".into(), 10);
        snap.counters.insert("exec.workers_spawned".into(), 4);
        snap.fcounters.insert("budget.epsilon_spent".into(), 0.5);
        snap.gauges.insert("process.rss_bytes".into(), 1e6);
        let view = snap.equivalence_view();
        assert!(view.counters.contains_key("bp.messages"));
        assert!(!view.counters.contains_key("exec.workers_spawned"));
        assert_eq!(view.fcounters.get("budget.epsilon_spent"), Some(&0.0));
        assert!(view.gauges.is_empty());
    }
}
