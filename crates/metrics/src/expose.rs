//! OpenMetrics / Prometheus text-format exposition.
//!
//! [`MetricsSnapshot::to_openmetrics`] renders a merged snapshot as an
//! OpenMetrics text payload: counter families suffixed `_total`, gauges
//! bare, histograms as cumulative `_bucket{le="..."}` series plus
//! `_sum`/`_count`, terminated by `# EOF`. Metric names are sanitized to
//! `[a-zA-Z_][a-zA-Z0-9_]*` (dots and slashes from span paths become
//! underscores); a rare post-sanitization collision gets a numeric
//! suffix rather than silently merging two series.
//!
//! [`validate`] is a self-contained checker used by the CI smoke gate and
//! `bench_scale`'s self-scrape: it verifies TYPE declarations, sample
//! syntax, cumulative bucket monotonicity, `+Inf` bucket == `_count`,
//! and the `# EOF` terminator, without any external parser dependency.

use crate::registry::{bucket_upper_edge, HistSnapshot, MetricsSnapshot, BUCKETS};
use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;

/// Sanitize a metric name into the OpenMetrics charset
/// `[a-zA-Z_][a-zA-Z0-9_]*`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let ok = ch == '_' || ch.is_ascii_alphabetic() || (i > 0 && ch.is_ascii_digit());
        if ok {
            out.push(ch);
        } else if i == 0 && ch.is_ascii_digit() {
            out.push('_');
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Deduplicate sanitized names: on collision append `_2`, `_3`, ...
fn unique_name(seen: &mut BTreeSet<String>, base: String) -> String {
    if seen.insert(base.clone()) {
        return base;
    }
    let mut i = 2u32;
    loop {
        let cand = format!("{base}_{i}");
        if seen.insert(cand.clone()) {
            return cand;
        }
        i += 1;
    }
}

/// Render an `le` edge the way Prometheus expects (`0.01`, `1`, `100`,
/// `1e-05`, `+Inf`), stable across platforms.
fn fmt_le(edge: f64) -> String {
    if edge.is_infinite() {
        return "+Inf".to_owned();
    }
    // Decade edges only: powers of ten render exactly.
    let exp = edge.log10().round() as i32;
    if (-4..=6).contains(&exp) {
        // Plain decimal within a readable range.
        if exp >= 0 {
            format!("{}", 10f64.powi(exp))
        } else {
            format!("{:.*}", exp.unsigned_abs() as usize, edge)
        }
    } else {
        format!("1e{exp}")
    }
}

/// Render a float sample value: finite shortest-roundtrip, no NaN/Inf
/// (clamped to 0 — OpenMetrics forbids them for our series types).
fn fmt_value(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

impl MetricsSnapshot {
    /// Render this snapshot as an OpenMetrics text payload (see module
    /// docs). Families are emitted in sorted order: integer counters,
    /// float counters, gauges, histograms.
    pub fn to_openmetrics(&self) -> String {
        let mut out = String::new();
        let mut seen = BTreeSet::new();
        for (name, v) in &self.counters {
            let n = unique_name(&mut seen, sanitize_name(name));
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n}_total {v}");
        }
        for (name, v) in &self.fcounters {
            let n = unique_name(&mut seen, sanitize_name(name));
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n}_total {}", fmt_value(*v));
        }
        for (name, v) in &self.gauges {
            let n = unique_name(&mut seen, sanitize_name(name));
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {}", fmt_value(*v));
        }
        for (name, h) in &self.histograms {
            let n = unique_name(&mut seen, sanitize_name(name));
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cum = 0u64;
            for (i, b) in h.buckets.iter().enumerate() {
                cum += b;
                let le = if i + 1 == h.buckets.len() {
                    "+Inf".to_owned()
                } else {
                    fmt_le(bucket_upper_edge(i))
                };
                let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cum}");
            }
            if h.buckets.len() < BUCKETS {
                // Defensive: a foreign snapshot with fewer buckets still
                // needs the +Inf terminator bucket.
                let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {cum}");
            }
            let _ = writeln!(out, "{n}_sum {}", fmt_value(h.sum));
            let _ = writeln!(out, "{n}_count {}", h.count);
        }
        out.push_str("# EOF\n");
        out
    }
}

/// Summary statistics returned by a successful [`validate`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExpositionStats {
    /// Number of `# TYPE` family declarations.
    pub families: usize,
    /// Number of sample lines.
    pub samples: usize,
    /// Number of histogram families.
    pub histograms: usize,
}

/// Validate an OpenMetrics text payload (see module docs for the checks).
/// Returns per-family statistics, or a description of the first problem.
pub fn validate(text: &str) -> Result<ExpositionStats, String> {
    let mut types: HashMap<String, String> = HashMap::new();
    let mut stats = ExpositionStats::default();
    let mut hist_state: HashMap<String, (u64, Option<u64>, Option<u64>)> = HashMap::new();
    let mut saw_eof = false;

    for (lineno, line) in text.lines().enumerate() {
        let at = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line == "# EOF" {
            saw_eof = true;
            continue;
        }
        if saw_eof && !line.is_empty() {
            return Err(at(format!("content after # EOF: {line:?}")));
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().ok_or_else(|| at("empty TYPE line".into()))?;
            let ty = it.next().ok_or_else(|| at("TYPE missing kind".into()))?;
            if !matches!(ty, "counter" | "gauge" | "histogram") {
                return Err(at(format!("unsupported type {ty:?}")));
            }
            if !valid_name(name) {
                return Err(at(format!("invalid family name {name:?}")));
            }
            if types.insert(name.to_owned(), ty.to_owned()).is_some() {
                return Err(at(format!("duplicate TYPE for {name}")));
            }
            stats.families += 1;
            if ty == "histogram" {
                stats.histograms += 1;
                hist_state.insert(name.to_owned(), (0, None, None));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP/UNIT comments are legal and unchecked.
        }
        if line.is_empty() {
            continue;
        }

        // Sample line: name[{labels}] value
        let (name_part, rest) = match line.find(['{', ' ']) {
            Some(i) => line.split_at(i),
            None => return Err(at(format!("malformed sample: {line:?}"))),
        };
        if !valid_name(name_part) {
            return Err(at(format!("invalid metric name {name_part:?}")));
        }
        let (labels, value_str) = if let Some(stripped) = rest.strip_prefix('{') {
            let end = stripped
                .find('}')
                .ok_or_else(|| at("unterminated label set".into()))?;
            (&stripped[..end], stripped[end + 1..].trim())
        } else {
            ("", rest.trim())
        };
        let value: f64 = value_str
            .split_whitespace()
            .next()
            .unwrap_or("")
            .parse()
            .map_err(|_| at(format!("unparseable value {value_str:?}")))?;
        stats.samples += 1;

        // Resolve the declared family this sample belongs to.
        let (family, suffix) = resolve_family(name_part, &types)
            .ok_or_else(|| at(format!("sample {name_part} has no TYPE declaration")))?;
        let ty = types.get(&family).cloned().unwrap_or_default();
        match (ty.as_str(), suffix.as_str()) {
            ("counter", "_total") => {
                if value < 0.0 {
                    return Err(at(format!("negative counter {name_part}")));
                }
            }
            ("counter", s) => {
                return Err(at(format!("counter sample with suffix {s:?}")));
            }
            ("gauge", "") => {}
            ("gauge", s) => {
                return Err(at(format!("gauge sample with suffix {s:?}")));
            }
            ("histogram", "_bucket") => {
                let le = labels
                    .split(',')
                    .find_map(|kv| kv.trim().strip_prefix("le=\""))
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| at(format!("bucket without le label: {line:?}")))?;
                let st = hist_state.entry(family.clone()).or_default();
                let count = value as u64;
                if count < st.0 {
                    return Err(at(format!(
                        "non-cumulative buckets for {family}: {count} < {}",
                        st.0
                    )));
                }
                st.0 = count;
                if le == "+Inf" {
                    st.1 = Some(count);
                }
            }
            ("histogram", "_sum") => {}
            ("histogram", "_count") => {
                let st = hist_state.entry(family.clone()).or_default();
                st.2 = Some(value as u64);
            }
            ("histogram", s) => {
                return Err(at(format!("histogram sample with suffix {s:?}")));
            }
            _ => return Err(at(format!("sample {name_part} has unknown family type"))),
        }
    }

    if !saw_eof {
        return Err("missing # EOF terminator".to_owned());
    }
    for (family, (_, inf, count)) in &hist_state {
        match (inf, count) {
            (Some(i), Some(c)) if i != c => {
                return Err(format!("histogram {family}: +Inf bucket {i} != count {c}"));
            }
            (None, _) => return Err(format!("histogram {family}: missing +Inf bucket")),
            (_, None) => return Err(format!("histogram {family}: missing _count")),
            _ => {}
        }
    }
    Ok(stats)
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c == '_' || c.is_ascii_alphabetic() => {}
        _ => return false,
    }
    chars.all(|c| c == '_' || c.is_ascii_alphanumeric())
}

/// Map a sample name to its declared family and suffix. Longest-match so
/// a family literally named `x_total` wins over family `x` + `_total`.
fn resolve_family(sample: &str, types: &HashMap<String, String>) -> Option<(String, String)> {
    let mut best: Option<(String, String)> = None;
    for family in types.keys() {
        let suffix = match sample.strip_prefix(family.as_str()) {
            Some(s) => s,
            None => continue,
        };
        if matches!(suffix, "" | "_total" | "_bucket" | "_sum" | "_count")
            && best
                .as_ref()
                .map(|(b, _)| family.len() > b.len())
                .unwrap_or(true)
        {
            best = Some((family.clone(), suffix.to_owned()));
        }
    }
    best
}

/// Convenience: render a snapshot and validate the result in one step.
/// Used by tests and the CI smoke gate.
pub fn render_validated(snap: &MetricsSnapshot) -> Result<(String, ExpositionStats), String> {
    let text = snap.to_openmetrics();
    let stats = validate(&text)?;
    Ok((text, stats))
}

/// Build a tiny deterministic snapshot used by smoke tests.
pub fn demo_snapshot() -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    snap.counters.insert("bp.messages_updated".into(), 1234);
    snap.fcounters.insert("budget.epsilon_spent".into(), 0.75);
    snap.gauges.insert("progress.bp.rounds".into(), 0.4);
    let mut h = HistSnapshot {
        count: 0,
        sum: 0.0,
        min: f64::INFINITY,
        max: f64::NEG_INFINITY,
        buckets: vec![0; BUCKETS],
    };
    for v in [0.001, 0.02, 0.02, 5.0] {
        h.count += 1;
        h.sum += v;
        h.min = h.min.min(v);
        h.max = h.max.max(v);
        h.buckets[crate::registry::bucket_index(v)] += 1;
    }
    snap.histograms.insert("span.bp.run.seconds".into(), h);
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_maps_paths_to_charset() {
        assert_eq!(sanitize_name("bp.run/attack"), "bp_run_attack");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("ok_name_2"), "ok_name_2");
    }

    #[test]
    fn demo_snapshot_round_trips() {
        let (text, stats) = match render_validated(&demo_snapshot()) {
            Ok(v) => v,
            Err(e) => panic!("invalid exposition: {e}"),
        };
        assert!(text.contains("# TYPE bp_messages_updated counter"));
        assert!(text.contains("bp_messages_updated_total 1234"));
        assert!(text.contains("budget_epsilon_spent_total 0.75"));
        assert!(text.contains("# TYPE progress_bp_rounds gauge"));
        assert!(text.contains("span_bp_run_seconds_bucket{le=\"+Inf\"} 4"));
        assert!(text.ends_with("# EOF\n"));
        assert_eq!(stats.histograms, 1);
        assert!(stats.samples >= 4 + BUCKETS);
    }

    #[test]
    fn validator_rejects_missing_eof() {
        let text = "# TYPE x counter\nx_total 1\n";
        assert!(validate(text).is_err());
    }

    #[test]
    fn validator_rejects_non_cumulative_buckets() {
        let text = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n# EOF\n";
        let err = validate(text).map(|_| ());
        assert!(err.is_err());
    }

    #[test]
    fn validator_rejects_undeclared_samples() {
        let text = "mystery_total 3\n# EOF\n";
        assert!(validate(text).is_err());
    }

    #[test]
    fn validator_rejects_inf_count_mismatch() {
        let text = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n# EOF\n";
        assert!(validate(text).is_err());
    }

    #[test]
    fn le_edges_render_prometheus_style() {
        assert_eq!(fmt_le(bucket_upper_edge(12)), "10");
        assert_eq!(fmt_le(bucket_upper_edge(11)), "1");
        assert_eq!(fmt_le(bucket_upper_edge(9)), "0.01");
        assert_eq!(fmt_le(bucket_upper_edge(0)), "1e-11");
        assert_eq!(fmt_le(f64::INFINITY), "+Inf");
    }
}
