//! Minimal std-only HTTP exposition endpoint.
//!
//! [`serve`] binds a `TcpListener` and answers `GET /metrics` with the
//! registry's current OpenMetrics payload (any other path gets a 404).
//! One request per connection, `Connection: close` — exactly the access
//! pattern of a Prometheus scraper or a `curl` in the monitoring
//! walkthrough. The listener thread is a pure observer: it never runs
//! kernel work, so it sits outside the deterministic execution model
//! enforced by `ppdp-exec`.

use crate::registry::Registry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Handle to a running exposition endpoint. Dropping it (or calling
/// [`MetricsServer::stop`]) shuts the listener thread down.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (useful when serving on port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the listener thread and wait for it to exit.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop();
        }
    }
}

/// Start serving `registry` on `addr` (e.g. `"127.0.0.1:9779"`, or port
/// `0` for an ephemeral port). Returns once the socket is bound.
pub fn serve(addr: &str, registry: Registry) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    // Monitoring thread, not kernel work: exempt from the ppdp-exec
    // determinism model, hence the allow on the spawn denylist.
    #[allow(clippy::disallowed_methods)]
    let handle = std::thread::Builder::new()
        .name("ppdp-metrics-http".to_owned())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    handle_conn(stream, &registry);
                }
            }
        })?;
    Ok(MetricsServer {
        addr: bound,
        stop,
        handle: Some(handle),
    })
}

fn handle_conn(mut stream: TcpStream, registry: &Registry) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut buf = [0u8; 1024];
    let n = match stream.read(&mut buf) {
        Ok(n) => n,
        Err(_) => return,
    };
    let request = String::from_utf8_lossy(&buf[..n]);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let response = if path == "/metrics" || path == "/" {
        let body = registry.snapshot().to_openmetrics();
        format!(
            "HTTP/1.0 200 OK\r\nContent-Type: application/openmetrics-text; version=1.0.0; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
    } else {
        "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\nConnection: close\r\n\r\n".to_owned()
    };
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// Blocking one-shot scrape of `addr` (`GET /metrics`), returning the
/// response body. Used by `bench_scale`'s self-scrape and tests.
pub fn scrape(addr: &SocketAddr) -> std::io::Result<String> {
    let mut stream = TcpStream::connect_timeout(addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(b"GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_owned()),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed HTTP response",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_valid_openmetrics_and_404s() {
        let registry = Registry::new();
        let shard = registry.acquire_shard();
        shard.counter_cell("demo.http.hits").add(3);
        shard.hist_cell("demo.http.latency").observe(0.01);
        let mut server = match serve("127.0.0.1:0", registry) {
            Ok(s) => s,
            Err(e) => panic!("bind failed: {e}"),
        };

        let body = match scrape(&server.addr()) {
            Ok(b) => b,
            Err(e) => panic!("scrape failed: {e}"),
        };
        let stats = match crate::expose::validate(&body) {
            Ok(s) => s,
            Err(e) => panic!("invalid exposition: {e}\n{body}"),
        };
        assert!(body.contains("demo_http_hits_total 3"));
        assert!(stats.histograms >= 1);

        // Unknown path → 404.
        let mut stream = match TcpStream::connect_timeout(&server.addr(), Duration::from_secs(2)) {
            Ok(s) => s,
            Err(e) => panic!("connect failed: {e}"),
        };
        let _ = stream.write_all(b"GET /nope HTTP/1.0\r\n\r\n");
        let mut resp = String::new();
        let _ = stream.read_to_string(&mut resp);
        assert!(resp.starts_with("HTTP/1.0 404"));

        server.stop();
    }
}
