//! Differential-privacy substrate for `ppdp`.
//!
//! The dissertation's introduction and Chapter 6 describe publishing
//! high-dimensional (genomic/IoT) data under differential privacy by
//! "approximating the high-dimensional distribution of the original data
//! with a set of well-chosen low-dimensional distributions", injecting
//! calibrated noise into those marginals, and sampling synthetic records —
//! the PrivBayes-style recipe implemented in [`bayes_net`].
//!
//! The crate also provides:
//! * [`mechanism`] — Laplace and geometric mechanisms plus the exponential
//!   mechanism for selection;
//! * [`budget`] — ε-budget accounting under sequential/parallel composition;
//! * [`durable`] — a WAL-backed [`DurableLedger`] whose draws are fsynced
//!   before noise is sampled, so spent ε survives `SIGKILL`;
//! * [`table`] — the categorical microdata table the mechanisms operate on;
//! * [`histogram`] — noisy histograms and contingency marginals;
//! * [`aggregate`] — DP range counting and quantiles (the "big data
//!   aggregation" primitives of §6.2);
//! * [`anonymity`] — k-anonymity and l-diversity checkers, the baseline
//!   notions the dissertation contrasts DP with (§3.5);
//! * [`mondrian`] — a greedy Mondrian-style k-anonymizer, so the
//!   anonymization-vs-DP comparison can be executed rather than cited.

pub mod aggregate;
pub mod anonymity;
pub mod bayes_net;
pub mod budget;
pub mod durable;
pub mod histogram;
pub mod mechanism;
pub mod mondrian;
pub mod table;

pub use aggregate::{dp_quantile, dp_range_count, NoisyCdf};
pub use anonymity::{is_k_anonymous, is_l_diverse};
pub use bayes_net::{BayesNet, SynthesisConfig};
pub use budget::{BudgetLedger, OverdrawPolicy, PrivacyBudget};
pub use durable::{DurableLedger, Recovery};
pub use histogram::{noisy_histogram, noisy_marginal};
pub use mechanism::{exponential_mechanism, geometric_noise, laplace_noise};
pub use mondrian::{mondrian_anonymize, AnonymizedTable};
pub use table::Table;
