//! Core DP mechanisms: Laplace, two-sided geometric, and the exponential
//! mechanism for private selection.

use rand::Rng;

/// A sample from `Laplace(0, scale)` — add to a query answer with
/// `scale = sensitivity / ε` for ε-DP.
///
/// # Panics
/// Panics if `scale` is not strictly positive and finite.
pub fn laplace_noise<R: Rng + ?Sized>(rng: &mut R, scale: f64) -> f64 {
    assert!(
        scale > 0.0 && scale.is_finite(),
        "Laplace scale must be positive"
    );
    // Inverse-CDF sampling: u ∈ (−1/2, 1/2), x = −b·sgn(u)·ln(1 − 2|u|).
    let u: f64 = rng.gen::<f64>() - 0.5;
    -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// A sample from the two-sided geometric distribution with parameter
/// `alpha = exp(−ε / sensitivity)` — the integer analogue of Laplace,
/// suitable for count queries that must stay integral.
///
/// # Panics
/// Panics unless `0 < alpha < 1`.
pub fn geometric_noise<R: Rng + ?Sized>(rng: &mut R, alpha: f64) -> i64 {
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0,1)");
    // Difference of two geometric variables.
    let g = |rng: &mut R| -> i64 {
        // P(X = k) = (1 − α)·α^k, k ≥ 0 — inverse CDF.
        let u: f64 = rng.gen::<f64>();
        (u.ln() / alpha.ln()).floor() as i64
    };
    g(rng) - g(rng)
}

/// The exponential mechanism: privately selects an index with probability
/// proportional to `exp(ε · score / (2 · sensitivity))`.
///
/// # Panics
/// Panics if `scores` is empty or `sensitivity ≤ 0`.
pub fn exponential_mechanism<R: Rng + ?Sized>(
    rng: &mut R,
    scores: &[f64],
    epsilon: f64,
    sensitivity: f64,
) -> usize {
    assert!(!scores.is_empty(), "need at least one candidate");
    assert!(sensitivity > 0.0, "sensitivity must be positive");
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let weights: Vec<f64> = scores
        .iter()
        .map(|&s| (epsilon * (s - max) / (2.0 * sensitivity)).exp())
        .collect();
    let total: f64 = weights.iter().sum();
    let mut pick = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        pick -= w;
        if pick <= 0.0 {
            return i;
        }
    }
    scores.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn laplace_mean_and_spread() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 50_000;
        let scale = 2.0;
        let samples: Vec<f64> = (0..n).map(|_| laplace_noise(&mut rng, scale)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.1, "Laplace is centred, got mean {mean}");
        let mad = samples.iter().map(|x| x.abs()).sum::<f64>() / n as f64;
        // E|X| = b for Laplace(0, b).
        assert!((mad - scale).abs() < 0.1, "E|X| ≈ {scale}, got {mad}");
    }

    #[test]
    fn laplace_scale_orders_spread() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let spread = |scale: f64, rng: &mut ChaCha8Rng| -> f64 {
            (0..10_000)
                .map(|_| laplace_noise(rng, scale).abs())
                .sum::<f64>()
                / 10_000.0
        };
        let tight = spread(0.5, &mut rng);
        let wide = spread(5.0, &mut rng);
        assert!(wide > tight * 4.0);
    }

    #[test]
    fn geometric_is_integer_and_centred() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 50_000;
        let sum: i64 = (0..n).map(|_| geometric_noise(&mut rng, 0.5)).sum();
        let mean = sum as f64 / n as f64;
        assert!(
            mean.abs() < 0.05,
            "two-sided geometric is centred, got {mean}"
        );
    }

    #[test]
    fn exponential_mechanism_prefers_high_scores() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let scores = [0.0, 0.0, 10.0];
        let picks = (0..2_000)
            .filter(|_| exponential_mechanism(&mut rng, &scores, 2.0, 1.0) == 2)
            .count();
        assert!(
            picks > 1_800,
            "high score should dominate, got {picks}/2000"
        );
    }

    #[test]
    fn exponential_mechanism_near_uniform_at_zero_epsilon() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let scores = [0.0, 100.0];
        let picks = (0..10_000)
            .filter(|_| exponential_mechanism(&mut rng, &scores, 0.0, 1.0) == 1)
            .count();
        assert!(
            (4_000..6_000).contains(&picks),
            "ε=0 ⇒ uniform, got {picks}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        laplace_noise(&mut rng, 0.0);
    }
}
