//! A Mondrian-style greedy k-anonymizer: recursively partitions the table
//! on quasi-identifier columns and generalizes each partition's
//! quasi-identifier values to their median-split interval representative.
//!
//! The dissertation repeatedly uses k-anonymity as the pre-DP baseline
//! (§3.5: "k-anonymity guarantees that third party users cannot
//! distinguish real data from at least their nearest k−1 neighbors") and
//! the related work stresses that anonymization alone is insufficient —
//! this anonymizer exists so the comparison can actually be *run*, not
//! just cited.

use crate::anonymity::is_k_anonymous;
use crate::table::Table;

/// Result of anonymization: the generalized table plus how many cells were
/// coarsened (the utility cost).
#[derive(Debug, Clone, PartialEq)]
pub struct AnonymizedTable {
    /// The k-anonymous table (quasi-identifier cells replaced by their
    /// partition representative).
    pub table: Table,
    /// Fraction of quasi-identifier cells whose value changed.
    pub generalization_cost: f64,
}

/// Greedy Mondrian: splits the record set on the quasi-identifier column
/// with the widest value range at its median, while both halves keep at
/// least `k` records; leaves coarsen every quasi-identifier cell to the
/// partition mean (rounded), so records inside one leaf are
/// indistinguishable on the quasi-identifiers.
///
/// # Panics
/// Panics if `k == 0`, `quasi` is empty or out of range, or the table has
/// fewer than `k` rows (no k-anonymous generalization exists).
pub fn mondrian_anonymize(table: &Table, quasi: &[usize], k: usize) -> AnonymizedTable {
    assert!(k >= 1, "k must be at least 1");
    assert!(!quasi.is_empty(), "need at least one quasi-identifier");
    assert!(
        quasi.iter().all(|&c| c < table.n_cols()),
        "quasi column out of range"
    );
    assert!(
        table.n_rows() >= k,
        "fewer than k records: no k-anonymous table exists"
    );

    let mut rows: Vec<Vec<u16>> = table.rows().to_vec();
    let indices: Vec<usize> = (0..rows.len()).collect();
    let mut partitions = vec![indices];
    let mut finished: Vec<Vec<usize>> = Vec::new();

    while let Some(part) = partitions.pop() {
        match best_split(&rows, &part, quasi, k) {
            Some((lo, hi)) => {
                partitions.push(lo);
                partitions.push(hi);
            }
            None => finished.push(part),
        }
    }

    // Coarsen each leaf's quasi cells to the partition's rounded mean.
    let mut changed = 0usize;
    for part in &finished {
        for &c in quasi {
            let mean = part.iter().map(|&r| rows[r][c] as f64).sum::<f64>() / part.len() as f64;
            let rep = mean.round() as u16;
            for &r in part {
                if rows[r][c] != rep {
                    changed += 1;
                }
                rows[r][c] = rep;
            }
        }
    }

    let out = Table::new(table.arities().to_vec(), rows);
    debug_assert!(is_k_anonymous(&out, quasi, k));
    AnonymizedTable {
        generalization_cost: changed as f64 / (table.n_rows() * quasi.len()) as f64,
        table: out,
    }
}

/// Finds the widest-range quasi column and tries a median split; `None`
/// when no split leaves both halves with ≥ k records.
fn best_split(
    rows: &[Vec<u16>],
    part: &[usize],
    quasi: &[usize],
    k: usize,
) -> Option<(Vec<usize>, Vec<usize>)> {
    if part.len() < 2 * k {
        return None;
    }
    // Order candidate columns by value range, widest first.
    let mut ranges: Vec<(usize, u16)> = quasi
        .iter()
        .map(|&c| {
            let min = part.iter().map(|&r| rows[r][c]).min().unwrap_or(0);
            let max = part.iter().map(|&r| rows[r][c]).max().unwrap_or(0);
            (c, max - min)
        })
        .collect();
    ranges.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    for (c, range) in ranges {
        if range == 0 {
            break; // constant on every remaining column
        }
        let mut vals: Vec<u16> = part.iter().map(|&r| rows[r][c]).collect();
        vals.sort_unstable();
        let median = vals[vals.len() / 2];
        let (lo, hi): (Vec<usize>, Vec<usize>) = part.iter().partition(|&&r| rows[r][c] < median);
        if lo.len() >= k && hi.len() >= k {
            return Some((lo, hi));
        }
        // Try splitting at the median inclusive on the left instead.
        let (lo, hi): (Vec<usize>, Vec<usize>) = part.iter().partition(|&&r| rows[r][c] <= median);
        if lo.len() >= k && hi.len() >= k {
            return Some((lo, hi));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn table(n: usize, seed: u64) -> Table {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let rows = (0..n)
            .map(|_| {
                vec![
                    rng.gen_range(0..16u16), // quasi: age band
                    rng.gen_range(0..8u16),  // quasi: zip band
                    rng.gen_range(0..4u16),  // sensitive
                ]
            })
            .collect();
        Table::new(vec![16, 8, 4], rows)
    }

    #[test]
    fn output_is_k_anonymous() {
        let t = table(200, 1);
        for k in [2usize, 5, 10, 25] {
            let a = mondrian_anonymize(&t, &[0, 1], k);
            assert!(
                is_k_anonymous(&a.table, &[0, 1], k),
                "k = {k} violated (cost {})",
                a.generalization_cost
            );
        }
    }

    #[test]
    fn sensitive_column_untouched() {
        let t = table(100, 2);
        let a = mondrian_anonymize(&t, &[0, 1], 5);
        for (orig, anon) in t.rows().iter().zip(a.table.rows()) {
            assert_eq!(orig[2], anon[2]);
        }
    }

    #[test]
    fn cost_grows_with_k() {
        let t = table(300, 3);
        let c2 = mondrian_anonymize(&t, &[0, 1], 2).generalization_cost;
        let c50 = mondrian_anonymize(&t, &[0, 1], 50).generalization_cost;
        assert!(
            c50 >= c2,
            "larger k must coarsen at least as much: {c2} vs {c50}"
        );
        assert!(
            c2 > 0.0,
            "random 16x8 quasi space needs some generalization"
        );
    }

    #[test]
    fn k_one_may_keep_everything() {
        // k = 1 admits singleton partitions; Mondrian still merges only
        // when forced, so cost stays below heavy-k cost.
        let t = table(100, 4);
        let a = mondrian_anonymize(&t, &[0, 1], 1);
        assert!(is_k_anonymous(&a.table, &[0, 1], 1));
    }

    #[test]
    fn anonymization_preserves_row_count_and_schema() {
        let t = table(120, 5);
        let a = mondrian_anonymize(&t, &[0], 10);
        assert_eq!(a.table.n_rows(), 120);
        assert_eq!(a.table.arities(), t.arities());
    }

    #[test]
    #[should_panic(expected = "fewer than k")]
    fn impossible_k_rejected() {
        mondrian_anonymize(&table(5, 6), &[0], 10);
    }
}
