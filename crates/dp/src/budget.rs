//! ε-budget accounting: sequential composition (budgets add) with support
//! for parallel composition over disjoint partitions (budgets max).

/// Error returned when a spend would exceed the remaining budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetExceeded {
    /// Amount requested.
    pub requested: f64,
    /// Amount remaining at the time of the request.
    pub remaining: f64,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "privacy budget exceeded: requested ε={}, remaining ε={}",
            self.requested, self.remaining
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// A mutable ε budget for one release. Every mechanism invocation must be
/// paid for through [`PrivacyBudget::spend`]; the total spent is the ε of
/// the overall release by sequential composition.
#[derive(Debug, Clone, PartialEq)]
pub struct PrivacyBudget {
    total: f64,
    spent: f64,
}

impl PrivacyBudget {
    /// A fresh budget of `epsilon`.
    ///
    /// # Panics
    /// Panics if `epsilon` is not strictly positive and finite.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon.is_finite(), "ε must be positive");
        Self { total: epsilon, spent: 0.0 }
    }

    /// Total ε of this budget.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// ε spent so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// ε still available.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Records a sequential spend of `epsilon`.
    pub fn spend(&mut self, epsilon: f64) -> Result<(), BudgetExceeded> {
        assert!(epsilon >= 0.0, "cannot spend negative ε");
        if epsilon > self.remaining() + 1e-12 {
            return Err(BudgetExceeded { requested: epsilon, remaining: self.remaining() });
        }
        self.spent += epsilon;
        Ok(())
    }

    /// Records a *parallel* spend: `k` mechanisms each using `epsilon` on
    /// disjoint partitions of the data cost only `max = epsilon` total.
    pub fn spend_parallel(&mut self, epsilon: f64, k: usize) -> Result<(), BudgetExceeded> {
        assert!(k > 0, "parallel composition over zero mechanisms");
        self.spend(epsilon)
    }

    /// Splits the remaining budget into `k` equal sequential shares.
    pub fn equal_shares(&self, k: usize) -> f64 {
        assert!(k > 0, "cannot split into zero shares");
        self.remaining() / k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_spends_accumulate() {
        let mut b = PrivacyBudget::new(1.0);
        b.spend(0.4).unwrap();
        b.spend(0.4).unwrap();
        assert!((b.remaining() - 0.2).abs() < 1e-12);
        assert!(b.spend(0.3).is_err());
        assert!((b.spent() - 0.8).abs() < 1e-12, "failed spend must not charge");
    }

    #[test]
    fn parallel_spend_costs_one_share() {
        let mut b = PrivacyBudget::new(1.0);
        b.spend_parallel(0.6, 10).unwrap();
        assert!((b.remaining() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn equal_shares_divide_remaining() {
        let mut b = PrivacyBudget::new(2.0);
        b.spend(0.5).unwrap();
        assert!((b.equal_shares(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exceeded_error_reports_amounts() {
        let mut b = PrivacyBudget::new(0.1);
        let err = b.spend(0.5).unwrap_err();
        assert_eq!(err.requested, 0.5);
        assert!((err.remaining - 0.1).abs() < 1e-12);
        assert!(err.to_string().contains("exceeded"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_budget_rejected() {
        PrivacyBudget::new(0.0);
    }
}
