//! ε-budget accounting: sequential composition (budgets add) with support
//! for parallel composition over disjoint partitions (budgets max), plus a
//! [`BudgetLedger`] that records every draw (mechanism, label, sensitivity)
//! for post-hoc privacy auditing.

use ppdp_telemetry::BudgetDraw;

/// Error returned when a spend would exceed the remaining budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetExceeded {
    /// Amount requested.
    pub requested: f64,
    /// Amount remaining at the time of the request.
    pub remaining: f64,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "privacy budget exceeded: requested ε={}, remaining ε={}",
            self.requested, self.remaining
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// A mutable ε budget for one release. Every mechanism invocation must be
/// paid for through [`PrivacyBudget::spend`]; the total spent is the ε of
/// the overall release by sequential composition.
#[derive(Debug, Clone, PartialEq)]
pub struct PrivacyBudget {
    total: f64,
    spent: f64,
}

impl PrivacyBudget {
    /// A fresh budget of `epsilon`.
    ///
    /// # Panics
    /// Panics if `epsilon` is not strictly positive and finite.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon.is_finite(), "ε must be positive");
        Self {
            total: epsilon,
            spent: 0.0,
        }
    }

    /// Total ε of this budget.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// ε spent so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// ε still available.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Records a sequential spend of `epsilon`.
    pub fn spend(&mut self, epsilon: f64) -> Result<(), BudgetExceeded> {
        assert!(epsilon >= 0.0, "cannot spend negative ε");
        if epsilon > self.remaining() + 1e-12 {
            return Err(BudgetExceeded {
                requested: epsilon,
                remaining: self.remaining(),
            });
        }
        self.spent += epsilon;
        Ok(())
    }

    /// Records a *parallel* spend: `k` mechanisms each using `epsilon` on
    /// disjoint partitions of the data cost only `max = epsilon` total.
    pub fn spend_parallel(&mut self, epsilon: f64, k: usize) -> Result<(), BudgetExceeded> {
        assert!(k > 0, "parallel composition over zero mechanisms");
        self.spend(epsilon)
    }

    /// Splits the remaining budget into `k` equal sequential shares.
    pub fn equal_shares(&self, k: usize) -> f64 {
        assert!(k > 0, "cannot split into zero shares");
        self.remaining() / k as f64
    }
}

/// A [`PrivacyBudget`] that additionally records every draw — which
/// mechanism spent how much ε at what sensitivity, and what it released —
/// so a publication pipeline can be audited after the fact. Each
/// successful draw is also emitted to any active
/// [`ppdp_telemetry::Recorder`], landing in the run's
/// [`ppdp_telemetry::RunReport::budget`] section.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetLedger {
    budget: PrivacyBudget,
    draws: Vec<BudgetDraw>,
}

impl BudgetLedger {
    /// A fresh ledger over a budget of `epsilon`.
    ///
    /// # Panics
    /// Panics if `epsilon` is not strictly positive and finite.
    pub fn new(epsilon: f64) -> Self {
        Self {
            budget: PrivacyBudget::new(epsilon),
            draws: Vec::new(),
        }
    }

    /// Records a sequential draw of `epsilon` by `mechanism` (calibrated
    /// against `sensitivity`) releasing `label`. A draw that would exceed
    /// the remaining budget returns [`BudgetExceeded`] and records nothing.
    pub fn spend(
        &mut self,
        epsilon: f64,
        mechanism: &str,
        label: &str,
        sensitivity: f64,
    ) -> Result<(), BudgetExceeded> {
        self.budget.spend(epsilon)?;
        self.draws.push(BudgetDraw {
            mechanism: mechanism.to_owned(),
            label: label.to_owned(),
            epsilon,
            delta: 0.0,
            sensitivity,
        });
        ppdp_telemetry::budget_draw(mechanism, label, epsilon, 0.0, sensitivity);
        Ok(())
    }

    /// Every recorded draw, in spend order.
    pub fn draws(&self) -> &[BudgetDraw] {
        &self.draws
    }

    /// Total ε of the underlying budget.
    pub fn total(&self) -> f64 {
        self.budget.total()
    }

    /// ε spent so far (always equals [`BudgetLedger::total_drawn`]).
    pub fn spent(&self) -> f64 {
        self.budget.spent()
    }

    /// ε still available.
    pub fn remaining(&self) -> f64 {
        self.budget.remaining()
    }

    /// Sum of ε across the recorded draws — the sequential-composition
    /// total of the release.
    pub fn total_drawn(&self) -> f64 {
        self.draws.iter().map(|d| d.epsilon).sum()
    }

    /// Splits the remaining budget into `k` equal sequential shares.
    pub fn equal_shares(&self, k: usize) -> f64 {
        self.budget.equal_shares(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_spends_accumulate() {
        let mut b = PrivacyBudget::new(1.0);
        b.spend(0.4).unwrap();
        b.spend(0.4).unwrap();
        assert!((b.remaining() - 0.2).abs() < 1e-12);
        assert!(b.spend(0.3).is_err());
        assert!(
            (b.spent() - 0.8).abs() < 1e-12,
            "failed spend must not charge"
        );
    }

    #[test]
    fn parallel_spend_costs_one_share() {
        let mut b = PrivacyBudget::new(1.0);
        b.spend_parallel(0.6, 10).unwrap();
        assert!((b.remaining() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn equal_shares_divide_remaining() {
        let mut b = PrivacyBudget::new(2.0);
        b.spend(0.5).unwrap();
        assert!((b.equal_shares(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exceeded_error_reports_amounts() {
        let mut b = PrivacyBudget::new(0.1);
        let err = b.spend(0.5).unwrap_err();
        assert_eq!(err.requested, 0.5);
        assert!((err.remaining - 0.1).abs() < 1e-12);
        assert!(err.to_string().contains("exceeded"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_budget_rejected() {
        PrivacyBudget::new(0.0);
    }

    #[test]
    fn ledger_total_equals_sum_of_draws() {
        let mut ledger = BudgetLedger::new(1.0);
        ledger.spend(0.25, "laplace", "hist[a]", 1.0).unwrap();
        ledger.spend(0.25, "laplace", "hist[b]", 1.0).unwrap();
        ledger.spend(0.5, "exponential", "pick", 1.0).unwrap();
        assert_eq!(ledger.draws().len(), 3);
        assert!((ledger.total_drawn() - 1.0).abs() < 1e-12);
        assert!(
            (ledger.spent() - ledger.total_drawn()).abs() < 1e-12,
            "ledger spent must equal the sum of its draws"
        );
        assert!(ledger.remaining() < 1e-12);
        assert_eq!(ledger.draws()[2].mechanism, "exponential");
        assert_eq!(ledger.draws()[0].label, "hist[a]");
    }

    #[test]
    fn ledger_overdraw_errors_and_records_nothing() {
        let mut ledger = BudgetLedger::new(0.5);
        ledger.spend(0.4, "laplace", "x", 1.0).unwrap();
        let err = ledger.spend(0.3, "laplace", "y", 1.0).unwrap_err();
        assert_eq!(err.requested, 0.3);
        assert!((err.remaining - 0.1).abs() < 1e-12);
        assert_eq!(ledger.draws().len(), 1, "failed draw must not be recorded");
        assert!((ledger.total_drawn() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn ledger_draws_reach_an_active_recorder() {
        let rec = ppdp_telemetry::Recorder::new();
        {
            let _scope = rec.enter();
            let mut ledger = BudgetLedger::new(1.0);
            ledger.spend(0.5, "laplace", "cpd[0]", 1.0).unwrap();
        }
        let report = rec.take();
        assert_eq!(report.budget.len(), 1);
        assert!((report.total_epsilon() - 0.5).abs() < 1e-12);
        assert_eq!(report.budget[0].mechanism, "laplace");
    }
}
