//! ε-budget accounting: sequential composition (budgets add) with support
//! for parallel composition over disjoint partitions (budgets max), plus a
//! [`BudgetLedger`] that records every draw (mechanism, label, sensitivity)
//! for post-hoc privacy auditing.
//!
//! Overdraws surface as [`PpdpError::BudgetExhausted`]. The default policy
//! is **strict**: a draw that does not fit the remaining budget errors and
//! charges nothing. An opt-in **permissive** policy
//! ([`OverdrawPolicy::Permissive`]) clamps the draw to whatever remains —
//! the ε guarantee is preserved (never overspent), the requested noise
//! level is not — and records a `degraded.budget.clamped_draw` telemetry
//! event so the weakened release is visible in the run report.

use ppdp_errors::{ensure, PpdpError, Result};
use ppdp_telemetry::BudgetDraw;

/// What a budget does when a spend exceeds the remaining ε.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverdrawPolicy {
    /// Refuse the draw with [`PpdpError::BudgetExhausted`]; nothing is
    /// charged. The default.
    #[default]
    Strict,
    /// Clamp the draw to the remaining ε (never overspending) and flag the
    /// degradation via telemetry. Useful for exploratory runs where a
    /// weaker-than-requested release beats an aborted one.
    Permissive,
}

/// A mutable ε budget for one release. Every mechanism invocation must be
/// paid for through [`PrivacyBudget::spend`]; the total spent is the ε of
/// the overall release by sequential composition.
#[derive(Debug, Clone, PartialEq)]
pub struct PrivacyBudget {
    total: f64,
    spent: f64,
    policy: OverdrawPolicy,
}

impl PrivacyBudget {
    /// A fresh strict budget of `epsilon`.
    ///
    /// # Panics
    /// Panics if `epsilon` is not strictly positive and finite — use
    /// [`PrivacyBudget::try_new`] for values that crossed a trust boundary.
    pub fn new(epsilon: f64) -> Self {
        match Self::try_new(epsilon, OverdrawPolicy::Strict) {
            Ok(b) => b,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor with an explicit overdraw policy.
    ///
    /// # Errors
    /// [`PpdpError::InvalidInput`] unless `epsilon` is strictly positive
    /// and finite.
    pub fn try_new(epsilon: f64, policy: OverdrawPolicy) -> Result<Self> {
        ppdp_errors::ensure_positive("privacy budget ε", epsilon)?;
        Ok(Self {
            total: epsilon,
            spent: 0.0,
            policy,
        })
    }

    /// Total ε of this budget.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// ε spent so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// ε still available.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// The configured overdraw policy.
    pub fn policy(&self) -> OverdrawPolicy {
        self.policy
    }

    /// Validates a sequential spend of `epsilon` **without charging it**,
    /// returning what [`PrivacyBudget::commit`] would charge. This is the
    /// first half of the two-phase protocol the WAL-backed
    /// `ppdp-dp::durable::DurableLedger` needs: the draw must be durable on
    /// disk *before* any noise is sampled, so validation (which can refuse)
    /// is separated from the charge (which cannot).
    ///
    /// # Errors
    /// [`PpdpError::InvalidInput`] on a negative or non-finite request;
    /// [`PpdpError::BudgetExhausted`] on a strict overdraw.
    pub fn prepare(&self, epsilon: f64) -> Result<PreparedDraw> {
        ensure(
            epsilon.is_finite() && epsilon >= 0.0,
            format!("ε draw must be finite and non-negative, got {epsilon}"),
        )?;
        if epsilon > self.remaining() + 1e-12 {
            match self.policy {
                OverdrawPolicy::Strict => Err(PpdpError::BudgetExhausted {
                    requested: epsilon,
                    remaining: self.remaining(),
                }),
                OverdrawPolicy::Permissive => Ok(PreparedDraw {
                    charged: self.remaining(),
                    clamped: true,
                }),
            }
        } else {
            Ok(PreparedDraw {
                charged: epsilon,
                clamped: false,
            })
        }
    }

    /// Charges a draw validated by [`PrivacyBudget::prepare`], emitting the
    /// clamp-degradation and remaining-ε telemetry. Infallible by design:
    /// once the intent is on disk the charge must happen.
    pub fn commit(&mut self, prepared: &PreparedDraw) -> f64 {
        if prepared.clamped {
            ppdp_telemetry::degradation("budget", "clamped_draw");
        }
        self.spent += prepared.charged;
        // Live readout for operators watching a long publish run; a gauge
        // because "remaining" is a current value, not an accumulation.
        ppdp_telemetry::gauge("budget.remaining_epsilon", self.remaining());
        prepared.charged
    }

    /// Records a sequential spend of `epsilon` and returns the ε actually
    /// charged (equal to `epsilon` except for a clamped permissive
    /// overdraw).
    ///
    /// # Errors
    /// [`PpdpError::InvalidInput`] on a negative or non-finite request;
    /// [`PpdpError::BudgetExhausted`] on a strict overdraw (nothing is
    /// charged in either case).
    pub fn spend(&mut self, epsilon: f64) -> Result<f64> {
        let prepared = self.prepare(epsilon)?;
        Ok(self.commit(&prepared))
    }

    /// Re-charges `epsilon` from a replayed ledger record, bypassing policy
    /// checks and telemetry. Recovery must never refuse: a crash-replayed
    /// draw already happened, so the budget absorbs it even past `total`
    /// (over-counting spent ε is safe, under-counting is a privacy bug).
    pub(crate) fn restore(&mut self, epsilon: f64) {
        self.spent += epsilon.max(0.0);
    }

    /// Records a *parallel* spend: `k` mechanisms each using `epsilon` on
    /// disjoint partitions of the data cost only `max = epsilon` total.
    ///
    /// # Errors
    /// As [`PrivacyBudget::spend`], plus [`PpdpError::InvalidInput`] for
    /// `k = 0`.
    pub fn spend_parallel(&mut self, epsilon: f64, k: usize) -> Result<f64> {
        ensure(k > 0, "parallel composition over zero mechanisms")?;
        self.spend(epsilon)
    }

    /// Splits the remaining budget into `k` equal sequential shares.
    ///
    /// # Panics
    /// Panics if `k = 0`.
    pub fn equal_shares(&self, k: usize) -> f64 {
        assert!(k > 0, "cannot split into zero shares");
        self.remaining() / k as f64
    }
}

/// A draw validated by [`PrivacyBudget::prepare`] but not yet charged.
///
/// Deliberately opaque and non-cloneable: one `prepare` feeds exactly one
/// `commit`, so a prepared amount cannot be charged twice or conjured
/// without validation.
#[derive(Debug, PartialEq)]
pub struct PreparedDraw {
    charged: f64,
    clamped: bool,
}

impl PreparedDraw {
    /// The ε that committing this draw will charge.
    pub fn charged(&self) -> f64 {
        self.charged
    }

    /// Whether a permissive overdraw clamped the request to the remainder.
    pub fn clamped(&self) -> bool {
        self.clamped
    }
}

/// A [`PrivacyBudget`] that additionally records every draw — which
/// mechanism spent how much ε at what sensitivity, and what it released —
/// so a publication pipeline can be audited after the fact. Each
/// successful draw is also emitted to any active
/// [`ppdp_telemetry::Recorder`], landing in the run's
/// [`ppdp_telemetry::RunReport::budget`] section.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetLedger {
    budget: PrivacyBudget,
    draws: Vec<BudgetDraw>,
}

impl BudgetLedger {
    /// A fresh strict ledger over a budget of `epsilon`.
    ///
    /// # Panics
    /// Panics if `epsilon` is not strictly positive and finite — use
    /// [`BudgetLedger::try_new`] for values that crossed a trust boundary.
    pub fn new(epsilon: f64) -> Self {
        Self {
            budget: PrivacyBudget::new(epsilon),
            draws: Vec::new(),
        }
    }

    /// Fallible constructor with an explicit overdraw policy.
    ///
    /// # Errors
    /// [`PpdpError::InvalidInput`] unless `epsilon` is strictly positive
    /// and finite.
    pub fn try_new(epsilon: f64, policy: OverdrawPolicy) -> Result<Self> {
        Ok(Self {
            budget: PrivacyBudget::try_new(epsilon, policy)?,
            draws: Vec::new(),
        })
    }

    /// Records a sequential draw of `epsilon` by `mechanism` (calibrated
    /// against `sensitivity`) releasing `label`, returning the ε actually
    /// charged (clamped under [`OverdrawPolicy::Permissive`]).
    ///
    /// # Errors
    /// [`PpdpError::BudgetExhausted`] on a strict overdraw,
    /// [`PpdpError::InvalidInput`] on a negative/non-finite request; the
    /// failed draw is not recorded.
    ///
    /// `#[track_caller]` so trace collectors attribute the draw to the
    /// mechanism call-site, not to this ledger internals frame.
    #[track_caller]
    pub fn spend(
        &mut self,
        epsilon: f64,
        mechanism: &str,
        label: &str,
        sensitivity: f64,
    ) -> Result<f64> {
        let prepared = self.prepare(epsilon)?;
        Ok(self.commit(&prepared, mechanism, label, sensitivity))
    }

    /// Validates a draw without charging it — see
    /// [`PrivacyBudget::prepare`] for the two-phase durable protocol.
    ///
    /// # Errors
    /// As [`BudgetLedger::spend`].
    pub fn prepare(&self, epsilon: f64) -> Result<PreparedDraw> {
        self.budget.prepare(epsilon)
    }

    /// Charges a prepared draw and records it; the infallible second half
    /// of the two-phase protocol (the WAL entry is already on disk by the
    /// time a `DurableLedger` calls this).
    #[track_caller]
    pub fn commit(
        &mut self,
        prepared: &PreparedDraw,
        mechanism: &str,
        label: &str,
        sensitivity: f64,
    ) -> f64 {
        let charged = self.budget.commit(prepared);
        self.draws.push(BudgetDraw {
            mechanism: mechanism.to_owned(),
            label: label.to_owned(),
            epsilon: charged,
            delta: 0.0,
            sensitivity,
        });
        ppdp_telemetry::budget_draw(mechanism, label, charged, 0.0, sensitivity);
        // The audit layer sees the same draw (plus call-site/tenant
        // context) so accountants can reconcile bitwise against
        // `spent()`. `#[track_caller]` all the way down: the recorded
        // call-site is the mechanism caller's, not this frame.
        ppdp_audit::record_ledger_draw(
            mechanism,
            label,
            charged,
            0.0,
            sensitivity,
            self.budget.remaining(),
        );
        charged
    }

    /// Replays a draw recovered from a write-ahead log: records it and
    /// charges its ε with **no** policy check and **no** telemetry (the
    /// original spend already emitted both). Recovery never refuses — a
    /// replayed draw happened, so the ledger absorbs it even if the sum now
    /// exceeds `total` (over-counting spent ε is safe; under-counting
    /// silently over-releases).
    pub fn restore_draw(&mut self, draw: BudgetDraw) {
        self.budget.restore(draw.epsilon);
        self.draws.push(draw);
    }

    /// Every recorded draw, in spend order.
    pub fn draws(&self) -> &[BudgetDraw] {
        &self.draws
    }

    /// Whether any recorded draw carries `label` — the idempotency probe a
    /// resumed pipeline uses to skip stages whose spend already hit the WAL.
    pub fn has_label(&self, label: &str) -> bool {
        self.draws.iter().any(|d| d.label == label)
    }

    /// Total ε of the underlying budget.
    pub fn total(&self) -> f64 {
        self.budget.total()
    }

    /// ε spent so far (always equals [`BudgetLedger::total_drawn`]).
    pub fn spent(&self) -> f64 {
        self.budget.spent()
    }

    /// ε still available.
    pub fn remaining(&self) -> f64 {
        self.budget.remaining()
    }

    /// The configured overdraw policy.
    pub fn policy(&self) -> OverdrawPolicy {
        self.budget.policy()
    }

    /// Sum of ε across the recorded draws — the sequential-composition
    /// total of the release.
    pub fn total_drawn(&self) -> f64 {
        self.draws.iter().map(|d| d.epsilon).sum()
    }

    /// Splits the remaining budget into `k` equal sequential shares.
    pub fn equal_shares(&self, k: usize) -> f64 {
        self.budget.equal_shares(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_spends_accumulate() {
        let mut b = PrivacyBudget::new(1.0);
        b.spend(0.4).unwrap();
        b.spend(0.4).unwrap();
        assert!((b.remaining() - 0.2).abs() < 1e-12);
        assert!(b.spend(0.3).is_err());
        assert!(
            (b.spent() - 0.8).abs() < 1e-12,
            "failed spend must not charge"
        );
    }

    #[test]
    fn parallel_spend_costs_one_share() {
        let mut b = PrivacyBudget::new(1.0);
        b.spend_parallel(0.6, 10).unwrap();
        assert!((b.remaining() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn equal_shares_divide_remaining() {
        let mut b = PrivacyBudget::new(2.0);
        b.spend(0.5).unwrap();
        assert!((b.equal_shares(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exceeded_error_reports_amounts() {
        let mut b = PrivacyBudget::new(0.1);
        let err = b.spend(0.5).unwrap_err();
        assert_eq!(err.kind(), "budget_exhausted");
        let PpdpError::BudgetExhausted {
            requested,
            remaining,
        } = err
        else {
            panic!("wrong variant: {err:?}");
        };
        assert_eq!(requested, 0.5);
        assert!((remaining - 0.1).abs() < 1e-12);
    }

    #[test]
    fn nan_and_negative_draws_rejected() {
        let mut b = PrivacyBudget::new(1.0);
        assert_eq!(b.spend(f64::NAN).unwrap_err().kind(), "invalid_input");
        assert_eq!(b.spend(-0.1).unwrap_err().kind(), "invalid_input");
        assert_eq!(b.spent(), 0.0, "rejected draws charge nothing");
    }

    #[test]
    #[should_panic(expected = "must be finite and > 0")]
    fn non_positive_budget_rejected() {
        PrivacyBudget::new(0.0);
    }

    #[test]
    fn try_new_rejects_bad_epsilon_without_panicking() {
        for eps in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let e = PrivacyBudget::try_new(eps, OverdrawPolicy::Strict).unwrap_err();
            assert_eq!(e.kind(), "invalid_input");
        }
    }

    #[test]
    fn permissive_policy_clamps_and_flags_degradation() {
        let rec = ppdp_telemetry::Recorder::new();
        let charged = {
            let _scope = rec.enter();
            let mut ledger = BudgetLedger::try_new(1.0, OverdrawPolicy::Permissive).unwrap();
            ledger.spend(0.8, "laplace", "a", 1.0).unwrap();
            ledger.spend(0.8, "laplace", "b", 1.0).unwrap()
        };
        assert!((charged - 0.2).abs() < 1e-12, "clamped to remaining");
        let report = rec.take();
        assert_eq!(report.counter("degraded.budget"), 1);
        assert_eq!(report.counter("degraded.budget.clamped_draw"), 1);
        // The recorded draw reflects the *charged* ε, so the audit trail
        // never claims more protection than was bought.
        assert!((report.total_epsilon() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ledger_total_equals_sum_of_draws() {
        let mut ledger = BudgetLedger::new(1.0);
        ledger.spend(0.25, "laplace", "hist[a]", 1.0).unwrap();
        ledger.spend(0.25, "laplace", "hist[b]", 1.0).unwrap();
        ledger.spend(0.5, "exponential", "pick", 1.0).unwrap();
        assert_eq!(ledger.draws().len(), 3);
        assert!((ledger.total_drawn() - 1.0).abs() < 1e-12);
        assert!(
            (ledger.spent() - ledger.total_drawn()).abs() < 1e-12,
            "ledger spent must equal the sum of its draws"
        );
        assert!(ledger.remaining() < 1e-12);
        assert_eq!(ledger.draws()[2].mechanism, "exponential");
        assert_eq!(ledger.draws()[0].label, "hist[a]");
    }

    #[test]
    fn ledger_overdraw_errors_and_records_nothing() {
        let mut ledger = BudgetLedger::new(0.5);
        ledger.spend(0.4, "laplace", "x", 1.0).unwrap();
        let err = ledger.spend(0.3, "laplace", "y", 1.0).unwrap_err();
        assert_eq!(err.kind(), "budget_exhausted");
        assert!(err.to_string().contains("0.3"), "{err}");
        assert_eq!(ledger.draws().len(), 1, "failed draw must not be recorded");
        assert!((ledger.total_drawn() - 0.4).abs() < 1e-12);
    }

    /// Smallest f64 strictly greater than `x` (`f64::next_up` is unstable
    /// on the workspace MSRV).
    fn next_up(x: f64) -> f64 {
        f64::from_bits(x.to_bits() + 1)
    }

    #[test]
    fn equal_shares_exhaust_budget_despite_rounding() {
        // remaining()/k summed k times can exceed remaining() by an ulp;
        // the 1e-12 spend tolerance exists precisely so the final share is
        // not spuriously refused. Exercise it with an awkward remainder
        // under both policies.
        for policy in [OverdrawPolicy::Strict, OverdrawPolicy::Permissive] {
            let mut ledger = BudgetLedger::try_new(1.0, policy).unwrap();
            ledger.spend(0.7, "laplace", "warmup", 1.0).unwrap();
            let share = ledger.equal_shares(3);
            for i in 0..3 {
                let charged = ledger
                    .spend(share, "laplace", &format!("share[{i}]"), 1.0)
                    .unwrap_or_else(|e| panic!("{policy:?} share {i}: {e}"));
                assert_eq!(charged, share, "{policy:?}: no clamp within tolerance");
            }
            assert!(
                ledger.spent() <= ledger.total() + 1e-9,
                "{policy:?}: spent {} must not materially exceed total",
                ledger.spent()
            );
        }
    }

    #[test]
    fn one_ulp_over_remaining_is_inside_tolerance() {
        for policy in [OverdrawPolicy::Strict, OverdrawPolicy::Permissive] {
            let mut b = PrivacyBudget::try_new(1.0, policy).unwrap();
            b.spend(0.7).unwrap();
            let request = next_up(b.remaining());
            let prepared = b.prepare(request).unwrap();
            assert!(!prepared.clamped(), "{policy:?}: ulp overdraw not clamped");
            assert_eq!(prepared.charged(), request);
            assert_eq!(b.spend(request).unwrap(), request);
        }
    }

    #[test]
    fn overdraw_beyond_tolerance_is_detected_under_both_policies() {
        // Just past the 1e-12 tolerance: strict refuses, permissive clamps
        // to exactly remaining() and flags the degradation.
        let mut strict = PrivacyBudget::try_new(1.0, OverdrawPolicy::Strict).unwrap();
        strict.spend(0.7).unwrap();
        let over = strict.remaining() + 3e-12;
        assert_eq!(strict.spend(over).unwrap_err().kind(), "budget_exhausted");

        let rec = ppdp_telemetry::Recorder::new();
        let (charged, remaining_before) = {
            let _scope = rec.enter();
            let mut perm = BudgetLedger::try_new(1.0, OverdrawPolicy::Permissive).unwrap();
            perm.spend(0.7, "laplace", "warmup", 1.0).unwrap();
            let remaining_before = perm.remaining();
            let charged = perm
                .spend(remaining_before + 3e-12, "laplace", "over", 1.0)
                .unwrap();
            (charged, remaining_before)
        };
        assert_eq!(charged, remaining_before, "clamped to exact remainder");
        assert_eq!(rec.take().counter("degraded.budget.clamped_draw"), 1);
    }

    #[test]
    fn spend_parallel_shares_boundary() {
        // k parallel mechanisms cost max(ε) = one share; a share one ulp
        // over the remainder stays inside the tolerance, far over errors.
        let mut b = PrivacyBudget::new(1.0);
        b.spend(0.5).unwrap();
        let share = next_up(b.remaining());
        assert_eq!(b.spend_parallel(share, 10).unwrap(), share);
        let mut b2 = PrivacyBudget::new(1.0);
        b2.spend(0.5).unwrap();
        assert_eq!(
            b2.spend_parallel(b2.remaining() + 1e-6, 10)
                .unwrap_err()
                .kind(),
            "budget_exhausted"
        );
        assert_eq!(
            b2.spend_parallel(0.1, 0).unwrap_err().kind(),
            "invalid_input"
        );
    }

    #[test]
    fn restore_draw_bypasses_policy_and_telemetry() {
        let rec = ppdp_telemetry::Recorder::new();
        let (spent, n) = {
            let _scope = rec.enter();
            let mut ledger = BudgetLedger::new(0.5);
            // Replay more than the budget holds: recovery must absorb it.
            for i in 0..3 {
                ledger.restore_draw(BudgetDraw {
                    mechanism: "laplace".into(),
                    label: format!("replayed[{i}]"),
                    epsilon: 0.3,
                    delta: 0.0,
                    sensitivity: 1.0,
                });
            }
            assert!(ledger.has_label("replayed[2]"));
            assert!(!ledger.has_label("replayed[3]"));
            (ledger.spent(), ledger.draws().len())
        };
        assert!((spent - 0.9).abs() < 1e-12, "over-counted past total: safe");
        assert_eq!(n, 3);
        let report = rec.take();
        assert_eq!(report.budget.len(), 0, "no telemetry on replay");
    }

    #[test]
    fn ledger_draws_reach_an_active_recorder() {
        let rec = ppdp_telemetry::Recorder::new();
        {
            let _scope = rec.enter();
            let mut ledger = BudgetLedger::new(1.0);
            ledger.spend(0.5, "laplace", "cpd[0]", 1.0).unwrap();
        }
        let report = rec.take();
        assert_eq!(report.budget.len(), 1);
        assert!((report.total_epsilon() - 0.5).abs() < 1e-12);
        assert_eq!(report.budget[0].mechanism, "laplace");
    }
}
