//! Noisy histograms and contingency marginals: the Laplace mechanism
//! applied to count vectors (sensitivity 1 under add/remove-one-record
//! neighbouring, since each record lives in exactly one cell).

use crate::mechanism::laplace_noise;
use crate::table::Table;
use rand::Rng;

/// ε-DP histogram over the joint cells of `cols`: exact counts plus
/// `Laplace(1/ε)` per cell, clamped at zero (post-processing preserves DP).
pub fn noisy_histogram<R: Rng + ?Sized>(
    rng: &mut R,
    table: &Table,
    cols: &[usize],
    epsilon: f64,
) -> Vec<f64> {
    assert!(epsilon > 0.0, "ε must be positive");
    table
        .histogram(cols)
        .into_iter()
        .map(|c| (c + laplace_noise(rng, 1.0 / epsilon)).max(0.0))
        .collect()
}

/// ε-DP *normalized* marginal over `cols`: noisy histogram renormalized to
/// a probability distribution (uniform fallback if all cells clamp to 0).
pub fn noisy_marginal<R: Rng + ?Sized>(
    rng: &mut R,
    table: &Table,
    cols: &[usize],
    epsilon: f64,
) -> Vec<f64> {
    let mut h = noisy_histogram(rng, table, cols, epsilon);
    let z: f64 = h.iter().sum();
    if z > 0.0 {
        for x in &mut h {
            *x /= z;
        }
    } else {
        let n = h.len().max(1);
        h = vec![1.0 / n as f64; n];
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn table() -> Table {
        Table::new(
            vec![2, 2],
            (0..400)
                .map(|i| vec![(i % 2) as u16, ((i / 2) % 2) as u16])
                .collect(),
        )
    }

    #[test]
    fn high_epsilon_close_to_exact() {
        let t = table();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let noisy = noisy_histogram(&mut rng, &t, &[0, 1], 100.0);
        let exact = t.histogram(&[0, 1]);
        for (n, e) in noisy.iter().zip(&exact) {
            assert!((n - e).abs() < 1.0, "ε=100 noise must be tiny: {n} vs {e}");
        }
    }

    #[test]
    fn low_epsilon_is_noisier() {
        let t = table();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let exact = t.histogram(&[0]);
        let dev = |eps: f64, rng: &mut ChaCha8Rng| -> f64 {
            (0..200)
                .map(|_| {
                    noisy_histogram(rng, &t, &[0], eps)
                        .iter()
                        .zip(&exact)
                        .map(|(n, e)| (n - e).abs())
                        .sum::<f64>()
                })
                .sum::<f64>()
                / 200.0
        };
        let tight = dev(10.0, &mut rng);
        let loose = dev(0.1, &mut rng);
        assert!(loose > tight * 5.0, "ε=0.1 ({loose}) ≫ ε=10 ({tight})");
    }

    #[test]
    fn counts_never_negative() {
        let t = Table::new(vec![4], vec![vec![0]]); // cells 1..3 are empty
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..100 {
            let h = noisy_histogram(&mut rng, &t, &[0], 0.5);
            assert!(h.iter().all(|&c| c >= 0.0));
        }
    }

    #[test]
    fn marginal_normalizes() {
        let t = table();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let m = noisy_marginal(&mut rng, &t, &[0, 1], 1.0);
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(m.iter().all(|&p| p >= 0.0));
    }
}
