//! k-anonymity and l-diversity checkers — the pre-DP privacy baselines the
//! dissertation repeatedly contrasts with (§3.5: "k-anonymity guarantees
//! that third party users cannot distinguish real data from at least their
//! nearest k−1 neighbors"; l-diversity additionally requires diverse
//! sensitive values inside each equivalence class).

use crate::table::Table;
use std::collections::HashMap;

/// Groups rows by their quasi-identifier projection.
fn equivalence_classes(table: &Table, quasi: &[usize]) -> HashMap<usize, Vec<usize>> {
    let mut classes: HashMap<usize, Vec<usize>> = HashMap::new();
    for (r, row) in table.rows().iter().enumerate() {
        classes
            .entry(table.cell_index(row, quasi))
            .or_default()
            .push(r);
    }
    classes
}

/// Whether every quasi-identifier equivalence class has at least `k`
/// members. An empty table is vacuously k-anonymous.
pub fn is_k_anonymous(table: &Table, quasi: &[usize], k: usize) -> bool {
    assert!(k >= 1, "k must be at least 1");
    equivalence_classes(table, quasi)
        .values()
        .all(|c| c.len() >= k)
}

/// Whether every quasi-identifier equivalence class contains at least `l`
/// *distinct* values of the sensitive column (distinct l-diversity).
pub fn is_l_diverse(table: &Table, quasi: &[usize], sensitive: usize, l: usize) -> bool {
    assert!(l >= 1, "l must be at least 1");
    equivalence_classes(table, quasi).values().all(|class| {
        let mut vals: Vec<u16> = class.iter().map(|&r| table.rows()[r][sensitive]).collect();
        vals.sort_unstable();
        vals.dedup();
        vals.len() >= l
    })
}

/// Size of the smallest quasi-identifier equivalence class — the table's
/// effective `k`. Returns 0 for an empty table.
pub fn effective_k(table: &Table, quasi: &[usize]) -> usize {
    equivalence_classes(table, quasi)
        .values()
        .map(Vec::len)
        .min()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Columns: quasi (age-band), quasi (zip-band), sensitive (diagnosis).
    fn t() -> Table {
        Table::new(
            vec![3, 2, 4],
            vec![
                vec![0, 0, 0],
                vec![0, 0, 1],
                vec![0, 0, 2],
                vec![1, 1, 3],
                vec![1, 1, 3],
            ],
        )
    }

    #[test]
    fn k_anonymity_threshold() {
        let t = t();
        let quasi = [0, 1];
        assert!(is_k_anonymous(&t, &quasi, 2));
        assert!(
            !is_k_anonymous(&t, &quasi, 3),
            "class (1,1) has only 2 members"
        );
        assert_eq!(effective_k(&t, &quasi), 2);
    }

    #[test]
    fn l_diversity_requires_distinct_sensitive_values() {
        let t = t();
        let quasi = [0, 1];
        // Class (0,0) has {0,1,2}; class (1,1) has only {3}.
        assert!(is_l_diverse(&t, &quasi, 2, 1));
        assert!(
            !is_l_diverse(&t, &quasi, 2, 2),
            "homogeneous class breaks 2-diversity"
        );
    }

    #[test]
    fn k_anonymity_is_not_l_diversity() {
        // The classical homogeneity attack: 2-anonymous but the class leaks
        // the diagnosis because every member shares it.
        let t = Table::new(vec![2, 2], vec![vec![0, 1], vec![0, 1]]);
        assert!(is_k_anonymous(&t, &[0], 2));
        assert!(!is_l_diverse(&t, &[0], 1, 2));
    }

    #[test]
    fn empty_table_vacuously_private() {
        let t = Table::new(vec![2, 2], vec![]);
        assert!(is_k_anonymous(&t, &[0], 5));
        assert!(is_l_diverse(&t, &[0], 1, 5));
        assert_eq!(effective_k(&t, &[0]), 0);
    }

    #[test]
    fn full_quasi_set_usually_breaks_anonymity() {
        let t = t();
        assert!(
            !is_k_anonymous(&t, &[0, 1, 2], 2),
            "unique sensitive values singleton-ize"
        );
    }
}
