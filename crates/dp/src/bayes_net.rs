//! PrivBayes-style differentially-private synthesis: approximate the
//! high-dimensional joint with a degree-`k` Bayesian network of
//! low-dimensional conditionals, inject Laplace noise into each
//! conditional's contingency counts, and sample synthetic records.
//!
//! This is the concrete realization of the dissertation's recipe for
//! high-dimensional genomic/IoT publishing: "approximate the
//! high-dimensional distribution of the original data with a set of
//! well-chosen low-dimensional distributions; then, noise with differential
//! privacy guarantee can be injected into them; finally, synthetic genomes
//! are sampled from the approximate distribution" (§1.1, §6.2).

use crate::budget::BudgetLedger;
use crate::histogram::noisy_histogram;
use crate::table::Table;
use ppdp_errors::{ensure, Result};
use rand::Rng;
use rand::SeedableRng;

/// Synthesis parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthesisConfig {
    /// Maximum number of parents per attribute (network degree `k`). Higher
    /// `k` captures more correlation but splits the noise budget across
    /// larger contingency tables.
    pub degree: usize,
    /// Total ε for the release (structure selection is data-dependent but
    /// performed greedily on *exact* MI here; callers wanting end-to-end DP
    /// should reserve part of the budget and select structure with the
    /// exponential mechanism — see [`BayesNet::fit_private_structure`]).
    pub epsilon: f64,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        Self {
            degree: 2,
            epsilon: 1.0,
        }
    }
}

/// A fitted network: per column, its parent set and the noisy conditional
/// distribution `P(col | parents)` stored as a flattened table.
#[derive(Debug, Clone, PartialEq)]
pub struct BayesNet {
    arities: Vec<u16>,
    /// Topological column order used during fitting/sampling.
    order: Vec<usize>,
    /// `parents[c]` = parent columns of `c` (all earlier in `order`).
    parents: Vec<Vec<usize>>,
    /// `cpd[c][parent_cell * arity + value]` = `P(value | parent_cell)`.
    cpd: Vec<Vec<f64>>,
    /// Audit trail of every ε draw made while fitting the conditionals.
    ledger: BudgetLedger,
}

impl BayesNet {
    /// Fits the network: greedy structure selection by empirical mutual
    /// information (each new column picks the ≤ `degree` already-placed
    /// columns with the highest pairwise MI), then ε-DP noisy conditionals
    /// with the budget split equally across columns.
    ///
    /// # Errors
    /// [`ppdp_errors::PpdpError::InvalidInput`] on an empty schema or a
    /// non-positive/non-finite ε; [`ppdp_errors::PpdpError::BudgetExhausted`]
    /// if the per-column draws cannot fit the budget (unreachable for the
    /// equal-shares split used here, but surfaced rather than swallowed).
    pub fn fit<R: Rng + ?Sized>(rng: &mut R, table: &Table, cfg: SynthesisConfig) -> Result<Self> {
        Self::fit_with_selector(rng, table, cfg, |mis, _rng| {
            // Non-private greedy: take the top-MI candidates outright
            // (total_cmp keeps the order deterministic even for NaN
            // scores, which `fit_with_selector` has already rejected).
            let mut idx: Vec<usize> = (0..mis.len()).collect();
            idx.sort_by(|&a, &b| mis[b].total_cmp(&mis[a]).then(a.cmp(&b)));
            idx
        })
    }

    /// Like [`BayesNet::fit`], but selects each parent with the exponential
    /// mechanism (score = pairwise MI, sensitivity bounded by `ln n / n`
    /// terms; a conservative sensitivity of 1.0 is used), making structure
    /// selection private too. Half the budget goes to structure, half to
    /// the conditionals.
    ///
    /// # Errors
    /// As [`BayesNet::fit`].
    pub fn fit_private_structure<R: Rng + ?Sized>(
        rng: &mut R,
        table: &Table,
        cfg: SynthesisConfig,
    ) -> Result<Self> {
        let eps_struct = cfg.epsilon / 2.0;
        let counts_cfg = SynthesisConfig {
            epsilon: cfg.epsilon / 2.0,
            ..cfg
        };
        let n_picks = (table.n_cols().saturating_sub(1) * cfg.degree).max(1);
        let eps_each = eps_struct / n_picks as f64;
        let mut pick_no = 0usize;
        Self::fit_with_selector(rng, table, counts_cfg, move |mis, rng| {
            let mut remaining: Vec<usize> = (0..mis.len()).collect();
            let mut picked = Vec::new();
            // Only `degree` parents are kept, so only `degree` private
            // selections are made (and paid for) per column.
            while !remaining.is_empty() && picked.len() < cfg.degree {
                let scores: Vec<f64> = remaining.iter().map(|&i| mis[i]).collect();
                let choice = crate::mechanism::exponential_mechanism(rng, &scores, eps_each, 1.0);
                picked.push(remaining.remove(choice));
                let label = format!("structure[{pick_no}]");
                ppdp_telemetry::budget_draw("exponential", &label, eps_each, 0.0, 1.0);
                // Off-ledger: structure selection pays out of the reserved
                // ε/2 share without individual ledger entries, so the audit
                // record is marked unledgered (lint-exempt).
                ppdp_audit::record_draw("exponential", &label, eps_each, 0.0, 1.0);
                pick_no += 1;
            }
            picked
        })
    }

    fn fit_with_selector<R, F>(
        rng: &mut R,
        table: &Table,
        cfg: SynthesisConfig,
        mut rank: F,
    ) -> Result<Self>
    where
        R: Rng + ?Sized,
        F: FnMut(&[f64], &mut R) -> Vec<usize>,
    {
        ensure(table.n_cols() > 0, "cannot fit an empty schema")?;
        ensure(
            table.n_rows() > 0,
            "cannot fit an empty table: no records to learn from",
        )?;
        ppdp_errors::ensure_positive("synthesis ε", cfg.epsilon)?;
        let _span = ppdp_telemetry::span("bayes_net.fit");
        let n_cols = table.n_cols();
        let mut ledger = BudgetLedger::try_new(cfg.epsilon, Default::default())?;
        let eps_per_col = ledger.equal_shares(n_cols);

        // Column order: descending total MI with all others, so highly
        // correlated columns are placed early and become available parents.
        let mut mi = vec![vec![0.0f64; n_cols]; n_cols];
        #[allow(clippy::needless_range_loop)] // symmetric fill reads clearer indexed
        for a in 0..n_cols {
            for b in (a + 1)..n_cols {
                let v = table.mutual_information(a, b);
                mi[a][b] = v;
                mi[b][a] = v;
            }
        }
        for (a, row) in mi.iter().enumerate() {
            for (b, &v) in row.iter().enumerate() {
                ensure(
                    v.is_finite(),
                    format!("mutual information MI({a}, {b}) = {v} is not finite"),
                )?;
            }
        }
        let mut order: Vec<usize> = (0..n_cols).collect();
        order.sort_by(|&a, &b| {
            let sa: f64 = mi[a].iter().sum();
            let sb: f64 = mi[b].iter().sum();
            sb.total_cmp(&sa).then(a.cmp(&b))
        });

        let mut parents = vec![Vec::new(); n_cols];
        let mut cpd = vec![Vec::new(); n_cols];
        let mut placed: Vec<usize> = Vec::new();
        for &c in &order {
            if !placed.is_empty() && cfg.degree > 0 {
                let mis: Vec<f64> = placed.iter().map(|&p| mi[c][p]).collect();
                let ranked = rank(&mis, rng);
                parents[c] = ranked
                    .into_iter()
                    .take(cfg.degree)
                    .map(|i| placed[i])
                    .collect();
                parents[c].sort_unstable();
            }
            ledger.spend(eps_per_col, "laplace", &format!("cpd[{c}]"), 1.0)?;
            cpd[c] = Self::noisy_cpd(rng, table, c, &parents[c], eps_per_col);
            placed.push(c);
        }
        ppdp_telemetry::counter("bayes_net.columns", n_cols as u64);

        Ok(Self {
            arities: table.arities().to_vec(),
            order,
            parents,
            cpd,
            ledger,
        })
    }

    /// Noisy conditional `P(c | parents)` from a Laplace-noised joint
    /// histogram over `parents ∪ {c}`.
    fn noisy_cpd<R: Rng + ?Sized>(
        rng: &mut R,
        table: &Table,
        c: usize,
        parents: &[usize],
        epsilon: f64,
    ) -> Vec<f64> {
        let mut cols = parents.to_vec();
        cols.push(c);
        let joint = noisy_histogram(rng, table, &cols, epsilon);
        let arity = table.arities()[c] as usize;
        let parent_cells = joint.len() / arity;
        let mut cpd = vec![0.0; joint.len()];
        for pc in 0..parent_cells {
            let slice = &joint[pc * arity..(pc + 1) * arity];
            let z: f64 = slice.iter().sum();
            for (v, &cnt) in slice.iter().enumerate() {
                cpd[pc * arity + v] = if z > 0.0 { cnt / z } else { 1.0 / arity as f64 };
            }
        }
        cpd
    }

    /// Parent set of column `c`.
    pub fn parents(&self, c: usize) -> &[usize] {
        &self.parents[c]
    }

    /// The audit trail of ε draws made while fitting the noisy
    /// conditionals. For [`BayesNet::fit`] the draws sum to the full
    /// `cfg.epsilon`; for [`BayesNet::fit_private_structure`] they sum to
    /// the conditionals' half (structure-selection draws are emitted to
    /// telemetry as `exponential` draws).
    pub fn ledger(&self) -> &BudgetLedger {
        &self.ledger
    }

    /// Samples `n` synthetic records by ancestral sampling along the fitted
    /// order. Pure post-processing of the noisy conditionals, so the output
    /// inherits the ε-DP guarantee.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Table {
        let rows: Vec<Vec<u16>> = (0..n).map(|_| self.sample_row(rng)).collect();
        Table::new(self.arities.clone(), rows)
    }

    /// Like [`BayesNet::sample`], but each record draws from its own
    /// counter-based RNG — `ChaCha8Rng` seeded with `split_seed(seed, i)`
    /// for record `i` — so the synthetic table is a pure function of
    /// `(net, seed, n)` and bitwise identical under every
    /// [`ExecPolicy`] and thread count. Under [`ExecPolicy::Parallel`] the
    /// records are drawn on worker threads.
    pub fn sample_with(&self, exec: ppdp_exec::ExecPolicy, seed: u64, n: usize) -> Table {
        let rows = exec.par_map(n, |i| {
            let mut rng =
                rand_chacha::ChaCha8Rng::seed_from_u64(ppdp_exec::split_seed(seed, i as u64));
            self.sample_row(&mut rng)
        });
        Table::new(self.arities.clone(), rows)
    }

    /// Ancestral-samples one record along the fitted order.
    fn sample_row<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u16> {
        let mut row = vec![0u16; self.arities.len()];
        for &c in &self.order {
            let arity = self.arities[c] as usize;
            // Parent cell index in the same mixed-radix layout as
            // `noisy_cpd` (parents sorted ascending).
            let mut pc = 0usize;
            for &p in &self.parents[c] {
                pc = pc * self.arities[p] as usize + row[p] as usize;
            }
            let dist = &self.cpd[c][pc * arity..(pc + 1) * arity];
            row[c] = sample_categorical(rng, dist) as u16;
        }
        row
    }
}

fn sample_categorical<R: Rng + ?Sized>(rng: &mut R, dist: &[f64]) -> usize {
    // Numerical guard: a corrupted conditional (NaN/Inf entries or a
    // non-positive mass) would bias inverse-CDF sampling silently — fall
    // back to a uniform draw and flag the degradation instead.
    let z: f64 = dist.iter().sum();
    if !z.is_finite() || z <= 0.0 || dist.iter().any(|p| !p.is_finite() || *p < 0.0) {
        ppdp_telemetry::degradation("synthesis", "uniform_sample");
        return rng.gen_range(0..dist.len().max(1));
    }
    let mut pick = rng.gen::<f64>() * z;
    for (i, &p) in dist.iter().enumerate() {
        pick -= p;
        if pick <= 0.0 {
            return i;
        }
    }
    dist.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// 3 columns: c1 = c0 (perfect correlation), c2 independent noise.
    fn correlated_table(n: usize, seed: u64) -> Table {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let rows = (0..n)
            .map(|_| {
                let a: u16 = rng.gen_range(0..2);
                let c: u16 = rng.gen_range(0..3);
                vec![a, a, c]
            })
            .collect();
        Table::new(vec![2, 2, 3], rows)
    }

    #[test]
    fn structure_links_correlated_columns() {
        let t = correlated_table(500, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let net = BayesNet::fit(
            &mut rng,
            &t,
            SynthesisConfig {
                degree: 1,
                epsilon: 50.0,
            },
        )
        .unwrap();
        // One of {0, 1} must be the other's parent.
        let linked = net.parents(0).contains(&1) || net.parents(1).contains(&0);
        assert!(
            linked,
            "perfectly correlated pair must be adjacent: {net:?}"
        );
    }

    #[test]
    fn synthetic_data_preserves_marginals_at_high_epsilon() {
        let t = correlated_table(2_000, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let net = BayesNet::fit(
            &mut rng,
            &t,
            SynthesisConfig {
                degree: 1,
                epsilon: 100.0,
            },
        )
        .unwrap();
        let synth = net.sample(&mut rng, 2_000);
        for cols in [vec![0], vec![2], vec![0, 1]] {
            let tvd = t.marginal_tvd(&synth, &cols);
            assert!(tvd < 0.08, "marginal {cols:?} drifted: tvd = {tvd}");
        }
        // The planted c0 = c1 correlation must survive synthesis.
        assert!(
            synth.mutual_information(0, 1) > 0.4,
            "correlation lost: MI = {}",
            synth.mutual_information(0, 1)
        );
    }

    #[test]
    fn low_epsilon_degrades_utility() {
        let t = correlated_table(2_000, 5);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let tvd_at = |eps: f64, rng: &mut ChaCha8Rng| -> f64 {
            let net = BayesNet::fit(
                rng,
                &t,
                SynthesisConfig {
                    degree: 1,
                    epsilon: eps,
                },
            )
            .unwrap();
            let synth = net.sample(rng, 2_000);
            t.marginal_tvd(&synth, &[0, 1])
        };
        let precise = tvd_at(100.0, &mut rng);
        // Average several low-ε runs to smooth sampling noise.
        let noisy: f64 = (0..5).map(|_| tvd_at(0.02, &mut rng)).sum::<f64>() / 5.0;
        assert!(
            noisy > precise,
            "ε=0.02 ({noisy}) must hurt vs ε=100 ({precise})"
        );
    }

    #[test]
    fn private_structure_still_produces_valid_network() {
        let t = correlated_table(500, 7);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let net = BayesNet::fit_private_structure(
            &mut rng,
            &t,
            SynthesisConfig {
                degree: 2,
                epsilon: 10.0,
            },
        )
        .unwrap();
        let synth = net.sample(&mut rng, 100);
        assert_eq!(synth.n_rows(), 100);
        assert_eq!(synth.n_cols(), 3);
        // Parents must respect the topological order (no cycles by
        // construction — every parent precedes its child).
        for (c, ps) in (0..3).map(|c| (c, net.parents(c))) {
            let pos = |x: usize| net.order.iter().position(|&o| o == x).unwrap();
            for &p in ps {
                assert!(pos(p) < pos(c), "parent {p} must precede child {c}");
            }
        }
    }

    #[test]
    fn fit_ledger_draws_sum_to_configured_epsilon() {
        let t = correlated_table(200, 11);
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let eps = 4.0;
        let net = BayesNet::fit(
            &mut rng,
            &t,
            SynthesisConfig {
                degree: 1,
                epsilon: eps,
            },
        )
        .unwrap();
        let ledger = net.ledger();
        assert_eq!(ledger.draws().len(), 3, "one laplace draw per column");
        assert!(
            (ledger.total_drawn() - eps).abs() < 1e-9,
            "draws must sum to ε: {} vs {eps}",
            ledger.total_drawn()
        );
        assert!((ledger.spent() - ledger.total_drawn()).abs() < 1e-12);
        assert!(ledger
            .draws()
            .iter()
            .all(|d| d.mechanism == "laplace" && d.sensitivity == 1.0));
    }

    #[test]
    fn invalid_epsilon_is_a_typed_error_not_a_panic() {
        let t = correlated_table(50, 13);
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        for eps in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let e = BayesNet::fit(
                &mut rng,
                &t,
                SynthesisConfig {
                    degree: 1,
                    epsilon: eps,
                },
            )
            .unwrap_err();
            assert_eq!(e.kind(), "invalid_input", "ε = {eps}");
        }
    }

    #[test]
    fn private_structure_cannot_exceed_configured_epsilon() {
        // Regression guard for the budget-accounting invariant: every ε
        // draw `fit_private_structure` makes — ledgered conditionals plus
        // telemetry-only structure picks — must sum to at most cfg.epsilon.
        let t = correlated_table(300, 15);
        let eps = 2.0;
        let rec = ppdp_telemetry::Recorder::new();
        let net = {
            let _scope = rec.enter();
            let mut rng = ChaCha8Rng::seed_from_u64(16);
            BayesNet::fit_private_structure(
                &mut rng,
                &t,
                SynthesisConfig {
                    degree: 2,
                    epsilon: eps,
                },
            )
            .unwrap()
        };
        let report = rec.take();
        assert!(
            report.total_epsilon() <= eps + 1e-9,
            "total ε drawn {} exceeds the configured budget {eps}",
            report.total_epsilon()
        );
        assert!(
            (net.ledger().total_drawn() - eps / 2.0).abs() < 1e-9,
            "conditionals use exactly their half: {}",
            net.ledger().total_drawn()
        );
        assert!(net.ledger().remaining() < 1e-9);
    }

    #[test]
    fn sample_with_is_policy_independent_and_seed_deterministic() {
        use ppdp_exec::ExecPolicy;
        let t = correlated_table(500, 17);
        let mut rng = ChaCha8Rng::seed_from_u64(18);
        let net = BayesNet::fit(
            &mut rng,
            &t,
            SynthesisConfig {
                degree: 1,
                epsilon: 50.0,
            },
        )
        .unwrap();
        let sequential = net.sample_with(ExecPolicy::Sequential, 42, 300);
        assert_eq!(sequential.n_rows(), 300);
        for threads in [1, 2, 8] {
            let parallel = net.sample_with(ExecPolicy::parallel(threads), 42, 300);
            assert_eq!(sequential, parallel, "threads = {threads}");
        }
        let reseeded = net.sample_with(ExecPolicy::Sequential, 43, 300);
        assert_ne!(sequential, reseeded, "the seed must matter");
        // Per-record seeding keeps the synthetic marginals faithful, like
        // the single-stream sampler.
        let tvd = t.marginal_tvd(&sequential, &[0, 1]);
        assert!(tvd < 0.1, "split-seed sampling drifted: tvd = {tvd}");
    }

    #[test]
    fn degree_zero_gives_independent_columns() {
        let t = correlated_table(500, 9);
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let net = BayesNet::fit(
            &mut rng,
            &t,
            SynthesisConfig {
                degree: 0,
                epsilon: 50.0,
            },
        )
        .unwrap();
        assert!((0..3).all(|c| net.parents(c).is_empty()));
        let synth = net.sample(&mut rng, 3_000);
        assert!(
            synth.mutual_information(0, 1) < 0.05,
            "degree 0 cannot represent the correlation"
        );
    }
}
