//! Categorical microdata tables: the input to the DP publishing pipeline.

/// A table of categorical records. Column `c` takes values in
/// `0..arities[c]`. Unlike the social-graph substrate, values here are
/// always present (DP publishing operates on complete extracts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    arities: Vec<u16>,
    rows: Vec<Vec<u16>>,
}

impl Table {
    /// Creates a table, validating every cell against the arities.
    ///
    /// # Panics
    /// Panics on ragged rows or out-of-range values.
    pub fn new(arities: Vec<u16>, rows: Vec<Vec<u16>>) -> Self {
        for row in &rows {
            assert_eq!(row.len(), arities.len(), "ragged row");
            for (c, (&v, &a)) in row.iter().zip(&arities).enumerate() {
                assert!(v < a, "value {v} out of range for column {c} (arity {a})");
            }
        }
        Self { arities, rows }
    }

    /// Number of records.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.arities.len()
    }

    /// Per-column arities.
    pub fn arities(&self) -> &[u16] {
        &self.arities
    }

    /// The rows.
    pub fn rows(&self) -> &[Vec<u16>] {
        &self.rows
    }

    /// Number of joint cells of the column subset `cols`
    /// (`Π arities[c]`).
    pub fn domain_size(&self, cols: &[usize]) -> usize {
        cols.iter().map(|&c| self.arities[c] as usize).product()
    }

    /// Encodes the values of `cols` in `row` as a mixed-radix cell index in
    /// `0..domain_size(cols)`.
    pub fn cell_index(&self, row: &[u16], cols: &[usize]) -> usize {
        let mut idx = 0usize;
        for &c in cols {
            idx = idx * self.arities[c] as usize + row[c] as usize;
        }
        idx
    }

    /// Decodes a mixed-radix cell index back into per-column values.
    pub fn decode_cell(&self, mut idx: usize, cols: &[usize]) -> Vec<u16> {
        let mut out = vec![0u16; cols.len()];
        for (slot, &c) in cols.iter().enumerate().rev() {
            let a = self.arities[c] as usize;
            out[slot] = (idx % a) as u16;
            idx /= a;
        }
        out
    }

    /// Exact (non-private) joint histogram over `cols`.
    pub fn histogram(&self, cols: &[usize]) -> Vec<f64> {
        let mut h = vec![0.0; self.domain_size(cols)];
        for row in &self.rows {
            h[self.cell_index(row, cols)] += 1.0;
        }
        h
    }

    /// Empirical mutual information `I(a; b)` in nats between two columns.
    pub fn mutual_information(&self, a: usize, b: usize) -> f64 {
        let n = self.rows.len() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let joint = self.histogram(&[a, b]);
        let ha = self.histogram(&[a]);
        let hb = self.histogram(&[b]);
        let (wa, wb) = (self.arities[a] as usize, self.arities[b] as usize);
        let mut mi = 0.0;
        for va in 0..wa {
            for vb in 0..wb {
                let pj = joint[va * wb + vb] / n;
                if pj > 0.0 {
                    mi += pj * (pj * n * n / (ha[va] * hb[vb])).ln();
                }
            }
        }
        mi.max(0.0)
    }

    /// Total variation distance between the normalized `cols` marginals of
    /// `self` and `other` — the utility metric of the synthesis bench.
    pub fn marginal_tvd(&self, other: &Table, cols: &[usize]) -> f64 {
        assert_eq!(self.arities, other.arities, "schema mismatch");
        let (mut a, mut b) = (self.histogram(cols), other.histogram(cols));
        let (na, nb) = (self.n_rows().max(1) as f64, other.n_rows().max(1) as f64);
        for x in &mut a {
            *x /= na;
        }
        for x in &mut b {
            *x /= nb;
        }
        0.5 * a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        Table::new(
            vec![2, 3],
            vec![vec![0, 0], vec![0, 1], vec![1, 2], vec![1, 2], vec![0, 0]],
        )
    }

    #[test]
    fn histogram_counts_cells() {
        let t = t();
        let h = t.histogram(&[0, 1]);
        assert_eq!(h.len(), 6);
        assert_eq!(h[t.cell_index(&[0, 0], &[0, 1])], 2.0);
        assert_eq!(h[t.cell_index(&[1, 2], &[0, 1])], 2.0);
        assert_eq!(h.iter().sum::<f64>(), 5.0);
    }

    #[test]
    fn cell_roundtrip() {
        let t = t();
        for idx in 0..t.domain_size(&[1, 0]) {
            let vals = t.decode_cell(idx, &[1, 0]);
            let row = vec![vals[1], vals[0]];
            assert_eq!(t.cell_index(&row, &[1, 0]), idx);
        }
    }

    #[test]
    fn mi_zero_for_independent_and_high_for_copies() {
        // col1 = col0 → MI = H(col0) = ln 2 for balanced binary.
        let dep = Table::new(
            vec![2, 2],
            (0..100)
                .map(|i| vec![(i % 2) as u16, (i % 2) as u16])
                .collect(),
        );
        assert!((dep.mutual_information(0, 1) - (2f64).ln()).abs() < 1e-9);
        let indep = Table::new(
            vec![2, 2],
            (0..100)
                .map(|i| vec![(i % 2) as u16, ((i / 2) % 2) as u16])
                .collect(),
        );
        assert!(indep.mutual_information(0, 1) < 1e-9);
    }

    #[test]
    fn tvd_zero_on_self_and_positive_on_shift() {
        let a = t();
        assert_eq!(a.marginal_tvd(&a, &[0]), 0.0);
        let b = Table::new(vec![2, 3], vec![vec![1, 0]; 5]);
        assert!(a.marginal_tvd(&b, &[0]) > 0.3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_cell_rejected() {
        Table::new(vec![2], vec![vec![2]]);
    }
}
