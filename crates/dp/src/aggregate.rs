//! Differentially-private aggregation primitives (§6.2): range counting and
//! quantiles over an ordered categorical domain, built on one noisy
//! histogram (so any number of range/quantile queries are post-processing
//! of a single ε spend).

use crate::histogram::noisy_histogram;
use crate::table::Table;
use rand::Rng;

/// A noisy cumulative distribution over one ordered column; supports
/// arbitrarily many range-count and quantile queries as post-processing.
#[derive(Debug, Clone, PartialEq)]
pub struct NoisyCdf {
    /// Noisy per-value counts.
    counts: Vec<f64>,
    /// Prefix sums of `counts`.
    cum: Vec<f64>,
}

impl NoisyCdf {
    /// Builds the ε-DP noisy CDF of `col`.
    pub fn build<R: Rng + ?Sized>(rng: &mut R, table: &Table, col: usize, epsilon: f64) -> Self {
        let counts = noisy_histogram(rng, table, &[col], epsilon);
        let mut cum = Vec::with_capacity(counts.len());
        let mut acc = 0.0;
        for &c in &counts {
            acc += c;
            cum.push(acc);
        }
        Self { counts, cum }
    }

    /// Noisy total count.
    pub fn total(&self) -> f64 {
        self.cum.last().copied().unwrap_or(0.0)
    }

    /// Noisy count of records with value in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty or out of the domain.
    pub fn range_count(&self, lo: u16, hi: u16) -> f64 {
        assert!(
            lo <= hi && (hi as usize) < self.counts.len(),
            "bad range [{lo}, {hi}]"
        );
        let below = if lo == 0 {
            0.0
        } else {
            self.cum[lo as usize - 1]
        };
        self.cum[hi as usize] - below
    }

    /// Noisy `q`-quantile: the smallest value whose cumulative share is at
    /// least `q`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ q ≤ 1`.
    pub fn quantile(&self, q: f64) -> u16 {
        assert!((0.0..=1.0).contains(&q), "quantile must lie in [0,1]");
        let target = q * self.total();
        self.cum
            .iter()
            .position(|&c| c >= target)
            .unwrap_or(self.cum.len().saturating_sub(1)) as u16
    }
}

/// One-shot ε-DP range count (builds a fresh CDF; prefer [`NoisyCdf`] when
/// issuing several queries against the same column).
pub fn dp_range_count<R: Rng + ?Sized>(
    rng: &mut R,
    table: &Table,
    col: usize,
    (lo, hi): (u16, u16),
    epsilon: f64,
) -> f64 {
    NoisyCdf::build(rng, table, col, epsilon).range_count(lo, hi)
}

/// One-shot ε-DP quantile.
pub fn dp_quantile<R: Rng + ?Sized>(
    rng: &mut R,
    table: &Table,
    col: usize,
    q: f64,
    epsilon: f64,
) -> u16 {
    NoisyCdf::build(rng, table, col, epsilon).quantile(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn table() -> Table {
        // Values 0..10, value v appearing (v+1) × 10 times → 550 records.
        let mut rows = Vec::new();
        for v in 0..10u16 {
            for _ in 0..(v as usize + 1) * 10 {
                rows.push(vec![v]);
            }
        }
        Table::new(vec![10], rows)
    }

    #[test]
    fn range_count_accurate_at_high_epsilon() {
        let t = table();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let cdf = NoisyCdf::build(&mut rng, &t, 0, 50.0);
        // Exact count of [0, 4] = 10+20+30+40+50 = 150.
        assert!((cdf.range_count(0, 4) - 150.0).abs() < 5.0);
        assert!((cdf.total() - 550.0).abs() < 5.0);
    }

    #[test]
    fn quantiles_land_in_right_region() {
        let t = table();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let cdf = NoisyCdf::build(&mut rng, &t, 0, 50.0);
        // Exact median sits at value 6 (cum through 6 is 280/550 ≈ 0.51).
        let med = cdf.quantile(0.5);
        assert!((5..=7).contains(&med), "median ≈ 6, got {med}");
        assert_eq!(cdf.quantile(0.0), 0);
        assert_eq!(cdf.quantile(1.0), 9);
    }

    #[test]
    fn one_shot_helpers_agree_with_cdf_statistics() {
        let t = table();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let c = dp_range_count(&mut rng, &t, 0, (3, 5), 50.0);
        assert!((c - 150.0).abs() < 10.0); // 40+50+60
        let q = dp_quantile(&mut rng, &t, 0, 0.9, 50.0);
        assert!((8..=9).contains(&q));
    }

    #[test]
    fn monotone_cdf_even_under_noise() {
        let t = table();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let cdf = NoisyCdf::build(&mut rng, &t, 0, 0.1);
        for w in cdf.cum.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "clamped counts keep the CDF monotone");
        }
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn out_of_domain_range_rejected() {
        let t = table();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        NoisyCdf::build(&mut rng, &t, 0, 1.0).range_count(3, 99);
    }
}
