//! WAL-backed privacy-budget ledger: crash-safe sequential composition.
//!
//! A [`crate::BudgetLedger`] is in-memory; a process killed mid-publish
//! forgets every ε it drew, and a restarted run that re-spends from a fresh
//! ledger silently over-releases — the worst possible failure for a privacy
//! system, because nothing crashes and nothing looks wrong. The
//! [`DurableLedger`] closes that hole with write-ahead logging:
//!
//! 1. [`DurableLedger::spend`] first *prepares* the draw (validation +
//!    permissive clamping, no mutation) on the in-memory ledger,
//! 2. appends the prepared draw to the WAL and **fsyncs** it,
//! 3. only then commits the charge (and its telemetry) in memory —
//!    and only after `spend` returns may the caller sample noise.
//!
//! A crash before the fsync loses a draw whose noise was never sampled
//! (nothing released ⇒ nothing to account). A crash after the fsync is
//! replayed on reopen. Hence the recovery invariant: **recovered spent-ε ≥
//! true spent-ε** — the ledger may over-count a draw whose release never
//! escaped the dying process, but can never under-count one that did.
//!
//! Replay restores draws through [`crate::BudgetLedger::restore_draw`],
//! which bypasses policy checks: a replayed overdraw is absorbed (and
//! visible in `spent()`), never refused, because refusing history does not
//! un-release data.
//!
//! Record payloads are [`ppdp_durable::Codec`]-encoded with a version tag;
//! the WAL layer itself (framing, CRC, torn-tail truncation) is
//! [`ppdp_durable::Wal`]. This module lives in `ppdp-dp` rather than
//! `ppdp-durable` because the dependency arrow must point this way —
//! see the `ppdp-durable` crate docs.

use crate::budget::{BudgetLedger, OverdrawPolicy};
use ppdp_durable::{Codec, Replay, Wal};
use ppdp_errors::{PpdpError, Result};
use ppdp_telemetry::BudgetDraw;
use std::path::Path;

/// WAL record schema version for ledger draws.
const DRAW_RECORD_V1: u8 = 1;

fn encode_draw(draw: &BudgetDraw) -> Vec<u8> {
    let mut out = Vec::new();
    DRAW_RECORD_V1.encode_into(&mut out);
    draw.mechanism.encode_into(&mut out);
    draw.label.encode_into(&mut out);
    draw.epsilon.encode_into(&mut out);
    draw.delta.encode_into(&mut out);
    draw.sensitivity.encode_into(&mut out);
    out
}

fn decode_draw(mut input: &[u8]) -> Result<BudgetDraw> {
    let version = u8::decode(&mut input)?;
    if version != DRAW_RECORD_V1 {
        return Err(PpdpError::io(format!(
            "ledger wal: unknown draw record version {version}"
        )));
    }
    let mechanism = String::decode(&mut input)?;
    let label = String::decode(&mut input)?;
    let epsilon = f64::decode(&mut input)?;
    let delta = f64::decode(&mut input)?;
    let sensitivity = f64::decode(&mut input)?;
    if !input.is_empty() {
        return Err(PpdpError::io(format!(
            "ledger wal: {} trailing bytes in draw record",
            input.len()
        )));
    }
    Ok(BudgetDraw {
        mechanism,
        label,
        epsilon,
        delta,
        sensitivity,
    })
}

/// What [`DurableLedger::open`] recovered from an existing WAL.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovery {
    /// Number of draws replayed into the ledger.
    pub replayed: usize,
    /// Total ε restored (sum over replayed draws).
    pub recovered_epsilon: f64,
    /// Whether a torn tail (crash mid-append) was found and truncated.
    pub torn_tail: bool,
}

/// A [`BudgetLedger`] whose every draw is fsynced to a write-ahead log
/// *before* it is charged — and therefore before any noise is sampled.
#[derive(Debug)]
pub struct DurableLedger {
    inner: BudgetLedger,
    wal: Wal,
}

impl DurableLedger {
    /// Open (or create) the ledger WAL at `path` over a budget of
    /// `epsilon`, replaying any draws a previous process left behind.
    ///
    /// # Errors
    /// [`PpdpError::InvalidInput`] for a bad `epsilon`; [`PpdpError::Io`]
    /// for filesystem failures or an interior-corrupt WAL (a compromised
    /// audit trail is never silently accepted).
    pub fn open(
        path: &Path,
        epsilon: f64,
        policy: OverdrawPolicy,
    ) -> Result<(DurableLedger, Recovery)> {
        let mut inner = BudgetLedger::try_new(epsilon, policy)?;
        let (wal, replay) = Wal::open(path)?;
        let Replay {
            records, torn_tail, ..
        } = replay;
        let mut recovered_epsilon = 0.0;
        let replayed = records.len();
        for record in &records {
            let draw = decode_draw(record)?;
            recovered_epsilon += draw.epsilon.max(0.0);
            inner.restore_draw(draw);
        }
        ppdp_telemetry::counter("ledger.wal.replayed_draws", replayed as u64);
        if torn_tail {
            ppdp_telemetry::counter("ledger.wal.torn_tail", 1);
        }
        Ok((
            DurableLedger { inner, wal },
            Recovery {
                replayed,
                recovered_epsilon,
                torn_tail,
            },
        ))
    }

    /// Records a draw durably: prepare → WAL append + fsync → charge.
    /// When this returns `Ok`, the draw survives any crash; the caller may
    /// now (and only now) sample noise.
    ///
    /// # Errors
    /// As [`BudgetLedger::spend`], plus [`PpdpError::Io`] if the WAL append
    /// fails — in which case **nothing is charged** and the caller must not
    /// release anything.
    #[track_caller]
    pub fn spend(
        &mut self,
        epsilon: f64,
        mechanism: &str,
        label: &str,
        sensitivity: f64,
    ) -> Result<f64> {
        let prepared = self.inner.prepare(epsilon)?;
        let record = encode_draw(&BudgetDraw {
            mechanism: mechanism.to_owned(),
            label: label.to_owned(),
            epsilon: prepared.charged(),
            delta: 0.0,
            sensitivity,
        });
        self.wal.append(&record)?;
        Ok(self.inner.commit(&prepared, mechanism, label, sensitivity))
    }

    /// Whether a draw labelled `label` is already durable — the resume
    /// idempotency probe: a restarted pipeline skips the ε spend of any
    /// stage whose label is here and redoes only the (deterministically
    /// seeded) computation.
    pub fn has_label(&self, label: &str) -> bool {
        self.inner.has_label(label)
    }

    /// The underlying in-memory ledger (draws, totals, policy).
    pub fn ledger(&self) -> &BudgetLedger {
        &self.inner
    }

    /// Total ε of the underlying budget.
    pub fn total(&self) -> f64 {
        self.inner.total()
    }

    /// ε spent so far, including replayed draws.
    pub fn spent(&self) -> f64 {
        self.inner.spent()
    }

    /// ε still available (zero when replay over-counted past `total`).
    pub fn remaining(&self) -> f64 {
        self.inner.remaining()
    }

    /// Every draw, replayed and fresh, in order.
    pub fn draws(&self) -> &[BudgetDraw] {
        self.inner.draws()
    }

    /// Splits the remaining budget into `k` equal sequential shares.
    pub fn equal_shares(&self, k: usize) -> f64 {
        self.inner.equal_shares(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walpath(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("ppdp-dledger-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d.join("budget.wal")
    }

    #[test]
    fn draws_survive_reopen() {
        let p = walpath("reopen");
        {
            let (mut led, rec) = DurableLedger::open(&p, 1.0, OverdrawPolicy::Strict).unwrap();
            assert_eq!(rec.replayed, 0);
            led.spend(0.25, "laplace", "hist[a]", 1.0).unwrap();
            led.spend(0.5, "exponential", "pick", 2.0).unwrap();
        } // process "dies"
        let (led, rec) = DurableLedger::open(&p, 1.0, OverdrawPolicy::Strict).unwrap();
        assert_eq!(rec.replayed, 2);
        assert!(!rec.torn_tail);
        assert!((rec.recovered_epsilon - 0.75).abs() < 1e-12);
        assert!((led.spent() - 0.75).abs() < 1e-12);
        assert!(led.has_label("pick") && led.has_label("hist[a]"));
        assert_eq!(led.draws()[1].mechanism, "exponential");
        assert_eq!(led.draws()[1].sensitivity, 2.0);
    }

    #[test]
    fn failed_spend_writes_nothing() {
        let p = walpath("refused");
        {
            let (mut led, _) = DurableLedger::open(&p, 0.5, OverdrawPolicy::Strict).unwrap();
            led.spend(0.4, "laplace", "ok", 1.0).unwrap();
            let err = led.spend(0.3, "laplace", "refused", 1.0).unwrap_err();
            assert_eq!(err.kind(), "budget_exhausted");
        }
        let (led, rec) = DurableLedger::open(&p, 0.5, OverdrawPolicy::Strict).unwrap();
        assert_eq!(rec.replayed, 1, "refused draw never reached the wal");
        assert!(!led.has_label("refused"));
    }

    #[test]
    fn torn_tail_drops_only_unacknowledged_draw() {
        let p = walpath("torn");
        {
            let (mut led, _) = DurableLedger::open(&p, 1.0, OverdrawPolicy::Strict).unwrap();
            led.spend(0.25, "laplace", "acked", 1.0).unwrap();
            led.spend(0.25, "laplace", "torn", 1.0).unwrap();
        }
        // Simulate a crash mid-append of the second record: truncate a few
        // bytes off the tail.
        let len = std::fs::metadata(&p).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&p).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let (led, rec) = DurableLedger::open(&p, 1.0, OverdrawPolicy::Strict).unwrap();
        assert!(rec.torn_tail);
        assert_eq!(rec.replayed, 1);
        assert!(led.has_label("acked") && !led.has_label("torn"));
        assert!((led.spent() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn replayed_overdraw_is_absorbed_not_refused() {
        let p = walpath("absorb");
        {
            // A permissive ledger legitimately filled to the brim...
            let (mut led, _) = DurableLedger::open(&p, 1.0, OverdrawPolicy::Strict).unwrap();
            led.spend(0.9, "laplace", "big", 1.0).unwrap();
        }
        // ...reopened with a *smaller* budget (operator error): the history
        // must still replay in full, leaving remaining() = 0.
        let (mut led, rec) = DurableLedger::open(&p, 0.5, OverdrawPolicy::Strict).unwrap();
        assert_eq!(rec.replayed, 1);
        assert!(
            (led.spent() - 0.9).abs() < 1e-12,
            "over-counted, never under"
        );
        assert_eq!(led.remaining(), 0.0);
        assert_eq!(
            led.spend(0.1, "laplace", "more", 1.0).unwrap_err().kind(),
            "budget_exhausted"
        );
    }

    #[test]
    fn interior_corruption_refuses_to_open() {
        let p = walpath("rot");
        {
            let (mut led, _) = DurableLedger::open(&p, 1.0, OverdrawPolicy::Strict).unwrap();
            led.spend(0.1, "laplace", "a", 1.0).unwrap();
            led.spend(0.1, "laplace", "b", 1.0).unwrap();
        }
        let mut bytes = std::fs::read(&p).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&p, &bytes).unwrap();
        // Depending on which byte the flip hit this is either an interior
        // CRC failure (open errors) or a torn final frame (open succeeds
        // with ≤ 1 draw lost); both preserve the never-under-count-
        // without-noticing invariant. Assert no silent full replay.
        match DurableLedger::open(&p, 1.0, OverdrawPolicy::Strict) {
            Err(e) => assert_eq!(e.kind(), "io"),
            Ok((_, rec)) => assert!(rec.torn_tail || rec.replayed < 2),
        }
    }

    #[test]
    fn spend_sequence_matches_in_memory_ledger() {
        // The durable wrapper must not change accounting semantics.
        let p = walpath("parity");
        let (mut durable, _) = DurableLedger::open(&p, 1.0, OverdrawPolicy::Permissive).unwrap();
        let mut plain = BudgetLedger::try_new(1.0, OverdrawPolicy::Permissive).unwrap();
        for (eps, label) in [(0.3, "a"), (0.5, "b"), (0.4, "c")] {
            let d = durable.spend(eps, "laplace", label, 1.0).unwrap();
            let m = plain.spend(eps, "laplace", label, 1.0).unwrap();
            assert_eq!(d.to_bits(), m.to_bits(), "charge parity at {label}");
        }
        assert_eq!(durable.spent().to_bits(), plain.spent().to_bits());
        assert_eq!(durable.draws().len(), plain.draws().len());
    }
}
