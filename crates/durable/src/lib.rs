//! Crash-consistency primitives for the ppdp workspace.
//!
//! Everything above this crate — privacy-budget ledgers, BP message arenas,
//! Gibbs chains, greedy pick journals — is in-memory state whose loss has
//! *semantic* cost: a ledger that forgets an ε draw silently over-releases
//! under sequential composition. This crate supplies the three mechanical
//! building blocks the rest of the workspace composes into crash safety:
//!
//! * [`atomic::write_atomic`] — tmp-in-same-dir → write → `fsync(file)` →
//!   rename → `fsync(dir)`. A reader never observes a half-written file and
//!   a crash between any two steps leaves either the old or the new content.
//! * [`wal::Wal`] — an append-only write-ahead log of length+CRC framed
//!   records. Appends are fsynced before they return; replay tolerates a
//!   torn tail (the one partial record a crash mid-append can leave) by
//!   truncating to the last valid frame, and rejects interior corruption
//!   loudly (bit rot is not a torn tail).
//! * [`checkpoint::CheckpointStore`] — keyed snapshot files written through
//!   [`atomic::write_atomic`]. A checkpoint is only resumed when its full
//!   key (label, seed, exec fingerprint, input digest) matches, so stale or
//!   foreign snapshots degrade to a cold start instead of wrong answers.
//!
//! State travels through [`codec::Codec`], a dependency-free binary
//! encoding that round-trips `f64` as IEEE bit patterns — a requirement,
//! not a convenience, because resume promises *bitwise* identity with an
//! uninterrupted run and decimal text cannot deliver that.
//!
//! # Layering
//!
//! This crate sits at the very bottom of the workspace: it depends only on
//! `ppdp-errors`. That is deliberate — `ppdp-metrics` must be able to use
//! the atomic-write helper, and `ppdp-dp` transitively depends on
//! `ppdp-metrics` through the telemetry tee, so the WAL-backed
//! `DurableLedger` lives in `ppdp-dp::durable` (built *from* these
//! primitives) rather than here. See DESIGN.md §"Crash-consistency
//! model".

pub mod atomic;
pub mod checkpoint;
pub mod codec;
pub mod wal;

pub use atomic::write_atomic;
pub use checkpoint::{CheckpointKey, CheckpointStore};
pub use codec::Codec;
pub use wal::{Replay, Wal};

/// FNV-1a hash of a byte stream; the workspace-standard input digest for
/// checkpoint keys. Stable across platforms and runs (no randomized state).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_is_stable() {
        // Reference vectors for the 64-bit FNV-1a parameters.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }
}
