//! Atomic, durable file replacement.
//!
//! The only safe way to replace a file on POSIX such that a crash at any
//! instant leaves either the complete old content or the complete new
//! content on disk:
//!
//! 1. write the new bytes to a temporary file *in the same directory*
//!    (rename is only atomic within a filesystem),
//! 2. `fsync` the temporary file (data + metadata reach the platter),
//! 3. `rename` it over the destination (atomic replacement),
//! 4. `fsync` the *directory* so the rename itself is durable.
//!
//! Skipping step 2 is the classic "zero-length file after power loss" bug;
//! skipping step 4 means the rename may be rolled back by journal replay.
//! `ppdp-metrics` snapshot files and every checkpoint in the workspace go
//! through this helper.

use ppdp_errors::{PpdpError, Result};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// Atomically replace `path` with `bytes`, durable against crashes.
///
/// The temporary file is named `<file-name>.tmp` next to the destination;
/// a stale `.tmp` left by an earlier crash is silently overwritten (it was
/// never renamed, so it was never visible to readers).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| PpdpError::io(format!("write_atomic: no file name in {path:?}")))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);

    let mut f = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)
        .map_err(|e| PpdpError::io_err(format!("create {tmp:?}"), &e))?;
    f.write_all(bytes)
        .map_err(|e| PpdpError::io_err(format!("write {tmp:?}"), &e))?;
    f.sync_all()
        .map_err(|e| PpdpError::io_err(format!("fsync {tmp:?}"), &e))?;
    drop(f);

    std::fs::rename(&tmp, path)
        .map_err(|e| PpdpError::io_err(format!("rename {tmp:?} -> {path:?}"), &e))?;

    if let Some(dir) = dir {
        sync_dir(dir)?;
    }
    Ok(())
}

/// `fsync` a directory so a rename performed inside it is durable.
pub fn sync_dir(dir: &Path) -> Result<()> {
    let d = File::open(dir).map_err(|e| PpdpError::io_err(format!("open dir {dir:?}"), &e))?;
    d.sync_all()
        .map_err(|e| PpdpError::io_err(format!("fsync dir {dir:?}"), &e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("ppdp-atomic-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn replaces_content_atomically() {
        let d = tmpdir("replace");
        let p = d.join("state.json");
        write_atomic(&p, b"first").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"first");
        write_atomic(&p, b"second").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"second");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn overwrites_stale_tmp_from_earlier_crash() {
        let d = tmpdir("stale");
        let p = d.join("state.json");
        // Simulate a crash that left a half-written tmp behind.
        std::fs::write(d.join("state.json.tmp"), b"garbage-from-dead-run").unwrap();
        write_atomic(&p, b"fresh").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"fresh");
        assert!(!d.join("state.json.tmp").exists(), "tmp consumed by rename");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn rejects_path_without_file_name() {
        let err = write_atomic(Path::new("/"), b"x").unwrap_err();
        assert_eq!(err.kind(), "io");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn surfaces_enospc_as_io_error() {
        // /dev/full returns ENOSPC on write; the tmp file lands next to it
        // in /dev, so use it as the *destination directory* is not possible —
        // instead verify the error path by writing the tmp into /dev itself
        // only when running as root (the CI container does). Otherwise the
        // open fails with EACCES, which is still the io error path.
        let err = write_atomic(Path::new("/proc/ppdp-no-such-dir/x"), b"x").unwrap_err();
        assert_eq!(err.kind(), "io");
    }
}
