//! Dependency-free binary encoding for durable state.
//!
//! Checkpoints and WAL records must round-trip **exactly**: the resume
//! guarantee is bitwise identity with an uninterrupted run, so `f64` fields
//! travel as their IEEE bit patterns (`to_bits`/`from_bits`), never through
//! decimal text. The format is little-endian, length-prefixed, and carries
//! no schema — both sides must agree on field order, which the containing
//! envelope pins with a versioned label.
//!
//! This deliberately reimplements a sliver of what `serde`+`bincode` would
//! give: `ppdp-durable` sits below every other crate (so `ppdp-metrics` can
//! use its atomic writes), and the workspace treats external dependencies
//! in the persistence path as a liability — a checkpoint that cannot be
//! decoded is a cold start, and cold-start behavior must be auditable from
//! this file alone.

use ppdp_errors::{PpdpError, Result};

/// A type that can round-trip through the durable byte format.
pub trait Codec: Sized {
    /// Append this value's encoding to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);
    /// Decode a value from the front of `input`, advancing it.
    fn decode(input: &mut &[u8]) -> Result<Self>;

    /// Encode to a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Decode a value that must consume `input` entirely.
    fn decode_all(mut input: &[u8]) -> Result<Self> {
        let v = Self::decode(&mut input)?;
        if input.is_empty() {
            Ok(v)
        } else {
            Err(PpdpError::io(format!(
                "codec: {} trailing bytes after a complete value",
                input.len()
            )))
        }
    }
}

fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8]> {
    if input.len() < n {
        return Err(PpdpError::io(format!(
            "codec: wanted {n} bytes, only {} remain",
            input.len()
        )));
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

impl Codec for u64 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self> {
        let b = take(input, 8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }
}

impl Codec for u32 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self> {
        let b = take(input, 4)?;
        let mut arr = [0u8; 4];
        arr.copy_from_slice(b);
        Ok(u32::from_le_bytes(arr))
    }
}

impl Codec for u8 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn decode(input: &mut &[u8]) -> Result<Self> {
        Ok(take(input, 1)?[0])
    }
}

impl Codec for usize {
    fn encode_into(&self, out: &mut Vec<u8>) {
        (*self as u64).encode_into(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self> {
        let v = u64::decode(input)?;
        usize::try_from(v).map_err(|_| PpdpError::io(format!("codec: usize overflow ({v})")))
    }
}

impl Codec for f64 {
    /// IEEE bit pattern — NaN payloads and signed zeros survive.
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.to_bits().encode_into(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self> {
        Ok(f64::from_bits(u64::decode(input)?))
    }
}

impl Codec for bool {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(input: &mut &[u8]) -> Result<Self> {
        match take(input, 1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(PpdpError::io(format!("codec: bool byte {b}"))),
        }
    }
}

impl Codec for String {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.len().encode_into(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self> {
        let len = usize::decode(input)?;
        let bytes = take(input, len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| PpdpError::io(format!("codec: invalid utf-8 string: {e}")))
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.len().encode_into(out);
        for item in self {
            item.encode_into(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self> {
        let len = usize::decode(input)?;
        // Corrupt lengths must not allocate terabytes before the first
        // element decode fails; cap the pre-allocation, not the length.
        let mut v = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            v.push(T::decode(input)?);
        }
        Ok(v)
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_into(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self> {
        match take(input, 1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            b => Err(PpdpError::io(format!("codec: option tag {b}"))),
        }
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self> {
        Ok((A::decode(input)?, B::decode(input)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
        self.2.encode_into(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self> {
        Ok((A::decode(input)?, B::decode(input)?, C::decode(input)?))
    }
}

impl<T: Codec, const N: usize> Codec for [T; N] {
    fn encode_into(&self, out: &mut Vec<u8>) {
        for item in self {
            item.encode_into(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self> {
        let mut v = Vec::with_capacity(N);
        for _ in 0..N {
            v.push(T::decode(input)?);
        }
        v.try_into()
            .map_err(|_| PpdpError::io("codec: array length"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut out = Vec::new();
        42u64.encode_into(&mut out);
        (-0.0f64).encode_into(&mut out);
        f64::NAN.encode_into(&mut out);
        true.encode_into(&mut out);
        "héllo".to_string().encode_into(&mut out);
        let mut input = out.as_slice();
        assert_eq!(u64::decode(&mut input).unwrap(), 42);
        let z = f64::decode(&mut input).unwrap();
        assert_eq!(z.to_bits(), (-0.0f64).to_bits(), "signed zero preserved");
        assert!(f64::decode(&mut input).unwrap().is_nan());
        assert!(bool::decode(&mut input).unwrap());
        assert_eq!(String::decode(&mut input).unwrap(), "héllo");
        assert!(input.is_empty());
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<(usize, f64)> = vec![(0, 1.5), (7, f64::MIN_POSITIVE)];
        let o: Option<Vec<String>> = Some(vec!["a".into(), String::new()]);
        let a: [f64; 3] = [1.0, 2.0, 3.0];
        let mut out = Vec::new();
        v.encode_into(&mut out);
        o.encode_into(&mut out);
        a.encode_into(&mut out);
        let mut input = out.as_slice();
        assert_eq!(Vec::<(usize, f64)>::decode(&mut input).unwrap(), v);
        assert_eq!(Option::<Vec<String>>::decode(&mut input).unwrap(), o);
        assert_eq!(<[f64; 3]>::decode(&mut input).unwrap(), a);
        assert!(input.is_empty());
    }

    #[test]
    fn truncation_and_trailing_bytes_error() {
        let bytes = vec![1u8, 2, 3];
        assert_eq!(u64::decode_all(&bytes).unwrap_err().kind(), "io");
        let mut full = 5u64.encode();
        full.push(0xEE);
        assert!(u64::decode_all(&full)
            .unwrap_err()
            .to_string()
            .contains("trailing"));
    }

    #[test]
    fn corrupt_tags_error() {
        assert_eq!(bool::decode_all(&[9]).unwrap_err().kind(), "io");
        assert_eq!(Option::<u8>::decode_all(&[7]).unwrap_err().kind(), "io");
        let bad_len = u64::MAX.encode();
        assert_eq!(Vec::<u8>::decode_all(&bad_len).unwrap_err().kind(), "io");
    }
}
