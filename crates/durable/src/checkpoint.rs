//! Keyed, atomically written checkpoint files.
//!
//! A checkpoint file is `MAGIC ∥ encode(key) ∥ u64 crc ∥ state bytes`,
//! written through [`crate::atomic::write_atomic`]. The key pins everything
//! that must match for a snapshot to be resumable under the workspace's
//! determinism guarantees:
//!
//! * `label` — which stage of which pipeline wrote it (also versions the
//!   state schema: bump the label when the layout changes),
//! * `seed` — the run's root RNG seed (per-item seeds derive from it),
//! * `exec` — a fingerprint of the `ExecPolicy`; artifacts are
//!   policy-invariant (PR 3), so the workspace convention is `"any"` for
//!   policy-invariant state, and a concrete string only where a caller
//!   wants to be strict,
//! * `input_digest` — [`crate::fnv1a`] over a canonical input encoding.
//!
//! [`CheckpointStore::load`] returns `None` — a cold start, never an
//! error — for a missing file, bad magic, CRC mismatch, undecodable bytes,
//! or a key mismatch. Resuming from the wrong snapshot would be a
//! correctness bug; recomputing is only a performance one.

use crate::atomic::write_atomic;
use crate::codec::Codec;
use crate::fnv1a;
use crate::wal::crc32;
use ppdp_errors::{PpdpError, Result};
use std::path::{Path, PathBuf};

/// File magic identifying checkpoint format version 1.
pub const MAGIC: &[u8; 8] = b"PPDPCKP1";

/// Everything that must match for a checkpoint to be resumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointKey {
    /// Pipeline stage that owns the snapshot (e.g. `"gibbs"`, `"sanitize"`).
    pub label: String,
    /// Root RNG seed of the run.
    pub seed: u64,
    /// Execution-policy fingerprint; `"any"` for policy-invariant state.
    pub exec: String,
    /// FNV-1a digest of a canonical input encoding.
    pub input_digest: u64,
}

impl Codec for CheckpointKey {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.label.encode_into(out);
        self.seed.encode_into(out);
        self.exec.encode_into(out);
        self.input_digest.encode_into(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self> {
        Ok(CheckpointKey {
            label: String::decode(input)?,
            seed: u64::decode(input)?,
            exec: String::decode(input)?,
            input_digest: u64::decode(input)?,
        })
    }
}

impl CheckpointKey {
    /// Build a key, digesting `input` with [`fnv1a`].
    pub fn new(label: impl Into<String>, seed: u64, exec: impl Into<String>, input: &[u8]) -> Self {
        CheckpointKey {
            label: label.into(),
            seed,
            exec: exec.into(),
            input_digest: fnv1a(input),
        }
    }

    /// Stable file stem: `{label}-{hash:016x}` where the hash covers the
    /// whole key, so distinct seeds/policies/inputs never collide on disk.
    pub fn file_stem(&self) -> String {
        format!(
            "{}-{:016x}",
            sanitize_label(&self.label),
            fnv1a(&self.encode())
        )
    }
}

/// Replace path-hostile characters so labels can carry `/` or spaces.
fn sanitize_label(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// A directory of keyed checkpoint files.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Open (creating if needed) the checkpoint directory.
    pub fn open(dir: &Path) -> Result<CheckpointStore> {
        std::fs::create_dir_all(dir)
            .map_err(|e| PpdpError::io_err(format!("create checkpoint dir {dir:?}"), &e))?;
        Ok(CheckpointStore {
            dir: dir.to_path_buf(),
        })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path a given key persists to.
    pub fn path_for(&self, key: &CheckpointKey) -> PathBuf {
        self.dir.join(format!("{}.ckpt", key.file_stem()))
    }

    /// Atomically persist `state` under `key`.
    pub fn save<T: Codec>(&self, key: &CheckpointKey, state: &T) -> Result<()> {
        let state_bytes = state.encode();
        let mut file = Vec::with_capacity(MAGIC.len() + 64 + state_bytes.len());
        file.extend_from_slice(MAGIC);
        key.encode_into(&mut file);
        u64::from(crc32(&state_bytes)).encode_into(&mut file);
        file.extend_from_slice(&state_bytes);
        write_atomic(&self.path_for(key), &file)
    }

    /// Load the snapshot for `key`, or `None` when no *exactly matching,
    /// intact* snapshot exists (missing file, corruption, key mismatch).
    pub fn load<T: Codec>(&self, key: &CheckpointKey) -> Option<T> {
        let bytes = std::fs::read(self.path_for(key)).ok()?;
        let mut input = bytes.as_slice();
        if input.len() < MAGIC.len() || input[..MAGIC.len()] != MAGIC[..] {
            return None;
        }
        input = &input[MAGIC.len()..];
        let found_key = CheckpointKey::decode(&mut input).ok()?;
        if found_key != *key {
            return None;
        }
        let crc = u64::decode(&mut input).ok()?;
        if u64::from(crc32(input)) != crc {
            return None;
        }
        T::decode_all(input).ok()
    }

    /// Remove the snapshot for `key` (idempotent — missing files are fine).
    pub fn remove(&self, key: &CheckpointKey) -> Result<()> {
        match std::fs::remove_file(self.path_for(key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(PpdpError::io_err(
                format!("remove checkpoint {:?}", key.label),
                &e,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(tag: &str) -> CheckpointStore {
        let d = std::env::temp_dir().join(format!("ppdp-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        CheckpointStore::open(&d).unwrap()
    }

    #[test]
    fn save_load_round_trip() {
        let s = store("roundtrip");
        let key = CheckpointKey::new("gibbs", 42, "any", b"input-bytes");
        s.save(&key, &vec![1u64, 2, 3]).unwrap();
        assert_eq!(s.load::<Vec<u64>>(&key), Some(vec![1, 2, 3]));
    }

    #[test]
    fn mismatched_key_is_cold_start() {
        let s = store("mismatch");
        let key = CheckpointKey::new("bp", 7, "any", b"x");
        s.save(&key, &"state".to_string()).unwrap();
        for other in [
            CheckpointKey::new("bp", 8, "any", b"x"),
            CheckpointKey::new("bp", 7, "seq", b"x"),
            CheckpointKey::new("bp", 7, "any", b"y"),
        ] {
            // Copy the file onto the other key's path to prove the
            // *envelope* check fires even if paths collided.
            std::fs::copy(s.path_for(&key), s.path_for(&other)).unwrap();
            assert_eq!(s.load::<String>(&other), None);
        }
        assert_eq!(s.load::<String>(&key), Some("state".into()));
    }

    #[test]
    fn corrupt_state_is_cold_start() {
        let s = store("corrupt");
        let key = CheckpointKey::new("sanitize", 1, "any", b"z");
        s.save(&key, &vec![0.5f64; 8]).unwrap();
        let p = s.path_for(&key);
        let mut bytes = std::fs::read(&p).unwrap();
        // Flip a bit in the state payload: the CRC must catch it.
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&p, &bytes).unwrap();
        assert_eq!(s.load::<Vec<f64>>(&key), None);
        // Truncation (torn non-atomic write) is also a cold start.
        let mut short = std::fs::read(&p).unwrap();
        short.truncate(short.len() / 2);
        std::fs::write(&p, &short).unwrap();
        assert_eq!(s.load::<Vec<f64>>(&key), None);
    }

    #[test]
    fn labels_with_separators_stay_in_dir() {
        let s = store("labels");
        let key = CheckpointKey::new("stage/one two", 3, "any", b"");
        s.save(&key, &1u8).unwrap();
        assert_eq!(s.load::<u8>(&key), Some(1));
        let p = s.path_for(&key);
        assert_eq!(p.parent(), Some(s.dir()));
    }

    #[test]
    fn remove_is_idempotent() {
        let s = store("remove");
        let key = CheckpointKey::new("x", 0, "any", b"");
        s.remove(&key).unwrap();
        s.save(&key, &0u8).unwrap();
        s.remove(&key).unwrap();
        assert_eq!(s.load::<u8>(&key), None);
    }
}
