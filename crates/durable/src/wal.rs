//! Append-only write-ahead log with CRC-framed records and torn-tail replay.
//!
//! # On-disk format
//!
//! ```text
//! [ 8-byte magic "PPDPWAL1" ]
//! [ record ]*
//!
//! record := [ u32 LE payload length ] [ u32 LE CRC-32/IEEE of payload ] [ payload ]
//! ```
//!
//! Appends write the full frame with a single `write_all` and then `fsync`
//! before returning, so a record that was acknowledged to the caller is on
//! the platter. A crash *during* an append can leave at most one partial
//! frame at the tail; [`Wal::open`] detects it (short frame, short payload,
//! or CRC mismatch **on the final frame only**) and truncates the file back
//! to the last valid boundary. A CRC mismatch on an *interior* frame is not
//! a torn tail — it is bit rot or tampering — and fails the open loudly.
//!
//! The asymmetry is deliberate: dropping an unacknowledged tail record is
//! exactly the semantics the `DurableLedger` in `ppdp-dp` needs (the draw
//! was never acted on, because noise is only sampled after the fsync
//! returns), while silently dropping an interior record would under-count
//! spent ε — the one unrecoverable failure in a privacy ledger.

use ppdp_errors::{PpdpError, Result};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File magic identifying WAL format version 1.
pub const MAGIC: &[u8; 8] = b"PPDPWAL1";

/// Per-record frame overhead: u32 length + u32 CRC.
pub const FRAME_HEADER: usize = 8;

/// Hard cap on a single record payload (16 MiB) — a length field larger
/// than this is treated as corruption, not a request for 4 GiB of memory.
pub const MAX_RECORD: usize = 16 << 20;

/// CRC-32/IEEE (the zlib/PNG polynomial), computed with a lazily built
/// 256-entry table. Hand-rolled so the bottom-of-stack crate stays
/// dependency-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// What [`Wal::open`] found on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replay {
    /// Every intact record payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// Byte length of the valid prefix (magic + intact frames).
    pub valid_bytes: u64,
    /// True when a torn tail was found and truncated away.
    pub torn_tail: bool,
}

/// An open append-only write-ahead log.
///
/// All appends are durable (fsynced) before they return. The log is
/// single-writer; concurrent writers corrupt each other by design of the
/// format and must be excluded by the caller (one WAL per run directory).
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    len: u64,
}

impl Wal {
    /// Open (or create) the WAL at `path`, replaying existing records.
    ///
    /// A torn tail is truncated in place (and the truncation fsynced) so the
    /// next append starts at a clean frame boundary. Interior corruption —
    /// a bad CRC or impossible length *before* the final frame — returns
    /// [`PpdpError::Io`]; the caller must treat the ledger as compromised.
    pub fn open(path: &Path) -> Result<(Wal, Replay)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| PpdpError::io_err(format!("open wal {path:?}"), &e))?;

        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| PpdpError::io_err(format!("read wal {path:?}"), &e))?;

        let replay = if bytes.is_empty() {
            Replay {
                records: Vec::new(),
                valid_bytes: 0,
                torn_tail: false,
            }
        } else {
            let replay = scan(&bytes, path)?;
            if replay.valid_bytes < bytes.len() as u64 {
                file.set_len(replay.valid_bytes)
                    .map_err(|e| PpdpError::io_err(format!("truncate torn wal {path:?}"), &e))?;
            }
            replay
        };

        // Reposition after read_to_end / set_len: appends must land exactly
        // at the valid boundary, never past a sparse hole.
        file.seek(SeekFrom::Start(replay.valid_bytes))
            .map_err(|e| PpdpError::io_err(format!("seek wal {path:?}"), &e))?;
        let mut len = replay.valid_bytes;
        if len < MAGIC.len() as u64 {
            // Brand-new log, or a crash tore the magic itself (nothing was
            // ever acknowledged): (re)write the header.
            file.write_all(MAGIC)
                .map_err(|e| PpdpError::io_err(format!("write wal magic {path:?}"), &e))?;
            len = MAGIC.len() as u64;
        }
        file.sync_all()
            .map_err(|e| PpdpError::io_err(format!("fsync wal {path:?}"), &e))?;
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                len,
            },
            replay,
        ))
    }

    /// Append one record and fsync. When this returns `Ok`, the record
    /// survives any subsequent crash.
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        if payload.len() > MAX_RECORD {
            return Err(PpdpError::invalid_input(format!(
                "wal record of {} bytes exceeds the {MAX_RECORD}-byte cap",
                payload.len()
            )));
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file
            .write_all(&frame)
            .map_err(|e| PpdpError::io_err(format!("append wal {:?}", self.path), &e))?;
        self.file
            .sync_all()
            .map_err(|e| PpdpError::io_err(format!("fsync wal {:?}", self.path), &e))?;
        self.len += frame.len() as u64;
        Ok(())
    }

    /// Bytes of valid log currently on disk (magic + intact frames).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// The path this WAL lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Scan an in-memory WAL image, classifying the tail.
///
/// Exposed for tests and the chaos harness; [`Wal::open`] is the normal
/// entry point.
pub fn scan(bytes: &[u8], path: &Path) -> Result<Replay> {
    if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC[..] {
        if bytes.len() < MAGIC.len() && MAGIC.starts_with(bytes) {
            // A crash while writing the magic of a brand-new log: nothing
            // was ever acknowledged, treat as empty-and-torn.
            return Ok(Replay {
                records: Vec::new(),
                valid_bytes: 0,
                torn_tail: true,
            });
        }
        return Err(PpdpError::io(format!(
            "wal {path:?}: bad magic (found {:?})",
            &bytes[..bytes.len().min(8)]
        )));
    }

    let mut records = Vec::new();
    let mut off = MAGIC.len();
    loop {
        if off == bytes.len() {
            return Ok(Replay {
                records,
                valid_bytes: off as u64,
                torn_tail: false,
            });
        }
        let torn = |records: Vec<Vec<u8>>, off: usize| {
            Ok(Replay {
                records,
                valid_bytes: off as u64,
                torn_tail: true,
            })
        };
        if bytes.len() - off < FRAME_HEADER {
            return torn(records, off);
        }
        let len = u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
            as usize;
        let crc = u32::from_le_bytes([
            bytes[off + 4],
            bytes[off + 5],
            bytes[off + 6],
            bytes[off + 7],
        ]);
        let start = off + FRAME_HEADER;
        let interior = |ctx: String| -> Result<Replay> { Err(PpdpError::io(ctx)) };
        if len > MAX_RECORD {
            // An impossible length in the *final* frame position is a torn
            // header; anywhere it leaves trailing intact frames impossible
            // to locate, so corrupt-length == tail by construction.
            return torn(records, off);
        }
        if bytes.len() - start < len {
            return torn(records, off);
        }
        let payload = &bytes[start..start + len];
        if crc32(payload) != crc {
            if start + len == bytes.len() {
                // Bad CRC on the very last frame: torn payload write.
                return torn(records, off);
            }
            return interior(format!(
                "wal {path:?}: CRC mismatch on interior record {} (offset {off}) — \
                 interior corruption, refusing to replay",
                records.len()
            ));
        }
        records.push(payload.to_vec());
        off = start + len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpwal(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ppdp-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d.join("ledger.wal")
    }

    #[test]
    fn round_trips_records_across_reopen() {
        let p = tmpwal("roundtrip");
        {
            let (mut w, r) = Wal::open(&p).unwrap();
            assert!(r.records.is_empty() && !r.torn_tail);
            w.append(b"alpha").unwrap();
            w.append(b"").unwrap();
            w.append(&[0xFF; 1000]).unwrap();
        }
        let (_, r) = Wal::open(&p).unwrap();
        assert_eq!(r.records.len(), 3);
        assert_eq!(r.records[0], b"alpha");
        assert_eq!(r.records[1], b"");
        assert_eq!(r.records[2], vec![0xFF; 1000]);
        assert!(!r.torn_tail);
    }

    #[test]
    fn torn_tail_is_truncated_and_append_continues() {
        let p = tmpwal("torn");
        {
            let (mut w, _) = Wal::open(&p).unwrap();
            w.append(b"kept").unwrap();
            w.append(b"torn-away").unwrap();
        }
        // Tear the last record mid-payload.
        let len = std::fs::metadata(&p).unwrap().len();
        let f = OpenOptions::new().write(true).open(&p).unwrap();
        f.set_len(len - 4).unwrap();
        drop(f);

        let (mut w, r) = Wal::open(&p).unwrap();
        assert!(r.torn_tail);
        assert_eq!(r.records, vec![b"kept".to_vec()]);
        w.append(b"after-recovery").unwrap();
        drop(w);

        let (_, r2) = Wal::open(&p).unwrap();
        assert!(!r2.torn_tail);
        assert_eq!(
            r2.records,
            vec![b"kept".to_vec(), b"after-recovery".to_vec()]
        );
    }

    #[test]
    fn interior_bit_rot_fails_loudly() {
        let p = tmpwal("bitrot");
        {
            let (mut w, _) = Wal::open(&p).unwrap();
            w.append(b"first-record").unwrap();
            w.append(b"second-record").unwrap();
        }
        let mut bytes = std::fs::read(&p).unwrap();
        // Flip one payload byte of the *first* record.
        let hit = MAGIC.len() + FRAME_HEADER + 2;
        bytes[hit] ^= 0x40;
        std::fs::write(&p, &bytes).unwrap();
        let err = Wal::open(&p).unwrap_err();
        assert_eq!(err.kind(), "io");
        assert!(err.to_string().contains("interior"), "{err}");
    }

    #[test]
    fn bad_crc_on_final_frame_is_torn_tail() {
        let p = tmpwal("tailrot");
        {
            let (mut w, _) = Wal::open(&p).unwrap();
            w.append(b"first-record").unwrap();
            w.append(b"second-record").unwrap();
        }
        let mut bytes = std::fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&p, &bytes).unwrap();
        let (_, r) = Wal::open(&p).unwrap();
        assert!(r.torn_tail);
        assert_eq!(r.records, vec![b"first-record".to_vec()]);
    }

    #[test]
    fn truncation_inside_magic_is_empty_torn() {
        let p = tmpwal("magic");
        std::fs::write(&p, &MAGIC[..3]).unwrap();
        let (_, r) = Wal::open(&p).unwrap();
        assert!(r.torn_tail);
        assert!(r.records.is_empty());
    }

    #[test]
    fn foreign_magic_is_rejected() {
        let p = tmpwal("foreign");
        std::fs::write(&p, b"NOTAWAL0data").unwrap();
        assert_eq!(Wal::open(&p).unwrap_err().kind(), "io");
    }

    #[test]
    fn oversized_record_is_rejected_at_append() {
        let p = tmpwal("cap");
        let (mut w, _) = Wal::open(&p).unwrap();
        let big = vec![0u8; MAX_RECORD + 1];
        let err = w.append(&big).unwrap_err();
        assert_eq!(err.kind(), "invalid_input");
    }

    #[test]
    fn crc32_reference_vectors() {
        // CRC-32/IEEE of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
