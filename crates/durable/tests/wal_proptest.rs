//! Property tests for the WAL record format and torn-tail replay.
//!
//! Two properties the crash harness leans on:
//! 1. Round trip: any sequence of payloads appended then reopened replays
//!    exactly, with no torn tail reported.
//! 2. Truncated tail: truncating the file at *any* byte offset loses at
//!    most the records whose frames extend past the cut — replay returns a
//!    prefix of the appended sequence, flags `torn_tail` iff the cut fell
//!    inside a frame, and a subsequent append still works.

use ppdp_durable::wal::{Wal, FRAME_HEADER, MAGIC};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn fresh_wal() -> PathBuf {
    let id = CASE.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("ppdp-wal-prop-{}-{id}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d.join("w.wal")
}

fn payloads() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip(records in payloads()) {
        let p = fresh_wal();
        {
            let (mut w, _) = Wal::open(&p).unwrap();
            for r in &records {
                w.append(r).unwrap();
            }
        }
        let (_, replay) = Wal::open(&p).unwrap();
        prop_assert_eq!(&replay.records, &records);
        prop_assert!(!replay.torn_tail);
        let _ = std::fs::remove_dir_all(p.parent().unwrap());
    }

    #[test]
    fn truncated_tail_replays_prefix(records in payloads(), cut_frac in 0.0f64..1.0) {
        let p = fresh_wal();
        {
            let (mut w, _) = Wal::open(&p).unwrap();
            for r in &records {
                w.append(r).unwrap();
            }
        }
        let full = std::fs::metadata(&p).unwrap().len();
        let cut = (full as f64 * cut_frac) as u64;
        let f = std::fs::OpenOptions::new().write(true).open(&p).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let (mut w, replay) = Wal::open(&p).unwrap();
        // The replayed records are a prefix of what was appended.
        prop_assert!(replay.records.len() <= records.len());
        prop_assert_eq!(&replay.records[..], &records[..replay.records.len()]);

        // torn_tail fires iff the cut fell strictly inside a frame (or the
        // magic); a cut exactly on a frame boundary is a clean short log.
        let mut boundaries = vec![MAGIC.len() as u64];
        let mut off = MAGIC.len() as u64;
        for r in &records {
            off += (FRAME_HEADER + r.len()) as u64;
            boundaries.push(off);
        }
        // cut == 0 leaves an empty file, indistinguishable from (and treated
        // as) a brand-new log rather than a torn one.
        let clean = cut == 0 || boundaries.contains(&cut);
        prop_assert_eq!(replay.torn_tail, !clean, "cut={} boundaries={:?}", cut, boundaries);

        // The log must remain appendable after recovery.
        w.append(b"post-recovery").unwrap();
        drop(w);
        let (_, r2) = Wal::open(&p).unwrap();
        prop_assert_eq!(r2.records.last().unwrap().as_slice(), b"post-recovery");
        prop_assert!(!r2.torn_tail);
        let _ = std::fs::remove_dir_all(p.parent().unwrap());
    }
}
