//! Chapter 5 experiment regenerators: Tables 5.1-5.3, Figure 5.1 (the
//! example factor graph) and Figure 5.2 (privacy level vs sanitized SNPs).

use crate::util::{cols, header, row, SEED};
use ppdp::datagen::genomes::amd_like;
use ppdp::datagen::gwas::synthetic_catalog;
use ppdp::errors::Result;
use ppdp::genomic::catalog::TABLE_5_3;
use ppdp::genomic::factor_graph::figure_5_1_catalog;
use ppdp::genomic::sanitize::{greedy_sanitize, Predictor, Target};
use ppdp::genomic::tables::{allele_given_trait, genotype_given_trait};
use ppdp::genomic::{Association, BpConfig, Evidence, FactorGraph, Genotype, SnpId, TraitId};

/// Table 5.1: conditional probability of the risk / non-risk allele given
/// trait status, for a representative association.
pub fn table5_1() -> Result<()> {
    header("Table 5.1", "P(allele | trait) for OR=1.8, f^o=0.25");
    let a = Association {
        snp: SnpId(0),
        trait_id: TraitId(0),
        odds_ratio: 1.8,
        raf_control: 0.25,
    };
    cols(&["t_j", "not t_j"]);
    row(
        "risk allele r",
        &[
            allele_given_trait(&a, true, true),
            allele_given_trait(&a, true, false),
        ],
    );
    row(
        "non-risk allele p",
        &[
            allele_given_trait(&a, false, true),
            allele_given_trait(&a, false, false),
        ],
    );
    println!("(f^a derived from f^o and OR: {:.4})", a.raf_case());
    Ok(())
}

/// Table 5.2: genotype probabilities given trait status (Hardy-Weinberg
/// form; see the substitution note in `ppdp-genomic::tables`).
pub fn table5_2() -> Result<()> {
    header(
        "Table 5.2",
        "P(genotype | trait) for OR=1.8, f^o=0.25 (HWE)",
    );
    let a = Association {
        snp: SnpId(0),
        trait_id: TraitId(0),
        odds_ratio: 1.8,
        raf_control: 0.25,
    };
    cols(&["t_j", "not t_j"]);
    for g in Genotype::ALL {
        row(
            &format!("genotype {g}"),
            &[
                genotype_given_trait(&a, g, true),
                genotype_given_trait(&a, g, false),
            ],
        );
    }
    Ok(())
}

/// Table 5.3: the seven diseases and their prevalence rates.
pub fn table5_3() -> Result<()> {
    header("Table 5.3", "seven popular diseases and prevalence rates");
    for (name, p) in TABLE_5_3 {
        println!("{name:<24} {p}");
    }
    Ok(())
}

/// Figure 5.1: the 3-trait / 5-SNP example factor graph, rendered as an
/// adjacency listing.
pub fn fig5_1() -> Result<()> {
    header("Fig 5.1", "example factor graph (3 traits, 5 SNPs)");
    let cat = figure_5_1_catalog();
    let g = FactorGraph::build(&cat, &Evidence::none())?;
    println!(
        "{} SNP variables, {} trait variables, {} factors; forest = {}",
        g.n_snps(),
        g.n_traits(),
        g.factors.len(),
        g.is_forest()
    );
    for (t, _) in cat.traits() {
        let snps: Vec<String> = cat
            .associations_of_trait(t)
            .map(|a| a.snp.to_string())
            .collect();
        println!("  {t} <- {{{}}}", snps.join(", "));
    }
    Ok(())
}

/// Figure 5.2: privacy level (and attacker estimation error) with an
/// increasing number of sanitized SNPs, under (a) belief propagation and
/// (b) Naive Bayes as the prediction method.
pub fn fig5_2() -> Result<()> {
    header("Fig 5.2", "privacy level vs number of sanitized SNPs");
    let catalog = synthetic_catalog(120, 6, 2, SEED);
    let panel = amd_like(&catalog, TraitId(0), 96, 50, SEED);
    // Victim: the first case individual; protect every disease status.
    let evidence = panel.full_evidence(0);
    let targets: Vec<Target> = (0..catalog.n_traits())
        .map(|i| Target::Trait(TraitId(i)))
        .collect();

    for (label, predictor, budget) in [
        (
            "(a) belief propagation",
            Predictor::BeliefPropagation(BpConfig::default()),
            8usize,
        ),
        ("(b) Naive Bayes", Predictor::NaiveBayes, 5usize),
    ] {
        println!("-- {label} --");
        cols(&["#removed", "privacy", "inf.error"]);
        let out = greedy_sanitize(&catalog, &evidence, &targets, 1.1, budget, predictor)?;
        for (k, (p, e)) in out.history.iter().zip(&out.error_history).enumerate() {
            row("", &[k as f64, *p, *e]);
        }
        println!(
            "removed: {:?}",
            out.removed
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
        );
    }
    Ok(())
}
