//! Chapter 4 experiment regenerators: Table 4.2 and Figures 4.1-4.4.
//!
//! The chapter's machinery is per-user; the figures average latent-data
//! privacy over a fixed sample of target users of the Caltech dataset.
//! Composite privacy combines the attribute channel (Eq. 4.5) with the link
//! channel (1 − relational confidence in the true SLA label) at equal
//! weight — the implementation detail DESIGN.md documents, since a common
//! relational term cancels inside the pure Eq. (4.5) disparity.

use crate::util::{cols, header, known_mask, row, SEED};
use ppdp::classify::{LabeledGraph, LocalKind, RelationalState};
use ppdp::datagen::social::{caltech_like, SocialDataset};
use ppdp::errors::Result;
use ppdp::graph::UserId;
use ppdp::tradeoff::adversary::{Knowledge, ALL_KNOWLEDGE};
use ppdp::tradeoff::optimize::optimize_attribute_strategy_under;
use ppdp::tradeoff::privacy::latent_privacy_vs_powerful;
use ppdp::tradeoff::utility::structure_value;
use ppdp::tradeoff::{
    hamming_disparity, prediction_utility_loss, AttributeStrategy, OptimizeConfig, Profile,
};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Number of sampled target users the figures average over.
const SAMPLE: usize = 25;
/// Public attribute columns used for the per-user variant space (keeping
/// the discretized strategy search tractable).
const PUBLIC_COLS: [usize; 2] = [2, 3];
/// Empirical profiles are truncated to this many top-probability variants
/// before the §4.5.2 discretized search (the search cost is exponential in
/// the output-variant count).
const MAX_VARIANTS: usize = 8;

/// The per-user optimization context shared by all Chapter 4 experiments.
pub struct UserCtx {
    /// Adversary prior over the user's possible (restricted) attribute sets.
    pub profile: Profile,
    /// SLA prediction `Z_X` induced by each variant.
    pub predictions: Vec<Vec<f64>>,
    /// The user's neighbour list with structure-utility costs, plus each
    /// neighbour's one-hot-or-uniform SLA distribution and the user's true
    /// label — the link channel's inputs.
    pub link_costs: Vec<f64>,
    /// Mass each neighbour's current SLA distribution puts on the user's
    /// true label (the link channel's "how much this link helps the
    /// attacker" signal).
    pub neighbor_true_mass: Vec<f64>,
}

/// Builds the Chapter 4 evaluation contexts: one per sampled user.
pub fn build_contexts(d: &SocialDataset) -> Vec<UserCtx> {
    let known = known_mask(d.graph.user_count(), SEED + 1);
    let lg = LabeledGraph::new(&d.graph, d.privacy_cat, known);
    let local = LocalKind::Bayes.fit(&lg);
    let state = RelationalState::new(&lg);

    // Global empirical profile over the restricted variant space.
    let observed: Vec<Vec<Option<u16>>> = d
        .graph
        .users()
        .map(|u| {
            PUBLIC_COLS
                .iter()
                .map(|&c| d.graph.attr_row(u)[c])
                .collect()
        })
        .collect();
    let profile = Profile::empirical(&observed).truncated(MAX_VARIANTS);

    // Z_X per variant: the Bayes SLA prediction from the restricted
    // attribute set (padded to full width with missing values).
    let width = d.graph.schema().len();
    let predictions: Vec<Vec<f64>> = profile
        .variants()
        .iter()
        .map(|v| {
            let mut full = vec![None; width];
            for (slot, &c) in PUBLIC_COLS.iter().enumerate() {
                full[c] = v[slot];
            }
            local.predict_dist(&full)
        })
        .collect();

    let mut rng = ChaCha8Rng::seed_from_u64(SEED + 2);
    let mut users: Vec<UserId> = lg.unknown_users();
    users.shuffle(&mut rng);
    users.truncate(SAMPLE);

    users
        .into_iter()
        .map(|u| {
            let true_label = lg.true_label(u).expect("unknown users are labelled") as usize;
            let (link_costs, neighbor_true_mass) = d
                .graph
                .neighbors(u)
                .iter()
                .map(|&j| (structure_value(&d.graph, u, j), state.dist[j.0][true_label]))
                .unzip();
            UserCtx {
                profile: profile.clone(),
                predictions: predictions.clone(),
                link_costs,
                neighbor_true_mass,
            }
        })
        .collect()
}

/// Link-channel privacy after removing the `removed` most helpful links:
/// 1 − mean true-label mass over the remaining neighbours.
fn link_privacy(ctx: &UserCtx, removed: usize) -> f64 {
    let mut mass: Vec<f64> = ctx.neighbor_true_mass.clone();
    // Remove the links whose far ends lean hardest toward the true label.
    mass.sort_by(|a, b| b.total_cmp(a));
    let kept = &mass[removed.min(mass.len())..];
    if kept.is_empty() {
        return 1.0;
    }
    1.0 - kept.iter().sum::<f64>() / kept.len() as f64
}

/// Structure-utility cost of removing the `removed` most helpful links.
fn link_cost(ctx: &UserCtx, removed: usize) -> f64 {
    let mut paired: Vec<(f64, f64)> = ctx
        .neighbor_true_mass
        .iter()
        .zip(&ctx.link_costs)
        .map(|(&m, &c)| (m, c))
        .collect();
    paired.sort_by(|a, b| b.0.total_cmp(&a.0));
    paired.iter().take(removed).map(|&(_, c)| c).sum()
}

/// Composite latent privacy: equal-weight attribute and link channels.
fn composite(attr: f64, link: f64) -> f64 {
    0.5 * attr + 0.5 * link
}

/// Attribute-channel privacy of a named strategy with `k` columns
/// sanitized.
fn attr_privacy(ctx: &UserCtx, strategy: &str, k: usize) -> f64 {
    let variants = ctx.profile.variants().to_vec();
    let cols: Vec<usize> = (0..k.min(PUBLIC_COLS.len())).collect();
    let s = match strategy {
        "removal" => AttributeStrategy::removal(variants, &cols),
        "perturb" => {
            let buckets: Vec<(usize, u16)> = cols.iter().map(|&c| (c, 4)).collect();
            AttributeStrategy::perturbing(variants, &buckets)
        }
        _ => AttributeStrategy::identity(variants),
    };
    latent_privacy_vs_powerful(&ctx.profile, &s, &ctx.predictions)
}

/// Table 4.2: general information about the Chapter 4 dataset.
pub fn table4_2() -> Result<()> {
    header(
        "Table 4.2",
        "general information about Caltech (Chapter 4 view)",
    );
    let d = caltech_like(SEED);
    println!("users                      : {}", d.graph.user_count());
    println!("social links               : {}", d.graph.edge_count());
    println!("attributes per user        : {}", d.graph.schema().len());
    println!(
        "SLA (flag) attribute values: {}",
        d.graph.schema().arity(d.privacy_cat)
    );
    println!(
        "NSLA (gender) attr values  : {}",
        d.graph.schema().arity(d.utility_cat)
    );
    Ok(())
}

/// Figure 4.1: latent-data privacy vs (a) #attributes sanitized under four
/// strategies and (b) #links sanitized under three strategies.
pub fn fig4_1() -> Result<()> {
    header(
        "Fig 4.1",
        "latent-data privacy vs sanitization effort (eps=180, delta=0.4)",
    );
    let d = caltech_like(SEED);
    let ctxs = build_contexts(&d);
    let mean = |f: &dyn Fn(&UserCtx) -> f64| -> f64 {
        ctxs.iter().map(f).sum::<f64>() / ctxs.len() as f64
    };

    println!("-- (a) attributes sanitized --");
    cols(&[
        "#attrs",
        "AttrRemove",
        "AttrPerturb",
        "LinkRemove",
        "Collective",
    ]);
    for k in 0..=PUBLIC_COLS.len() {
        let removal = mean(&|c| composite(attr_privacy(c, "removal", k), link_privacy(c, 0)));
        let perturb = mean(&|c| composite(attr_privacy(c, "perturb", k), link_privacy(c, 0)));
        let linkrm = mean(&|c| composite(attr_privacy(c, "identity", 0), link_privacy(c, k * 2)));
        let collective =
            mean(&|c| composite(attr_privacy(c, "removal", k), link_privacy(c, k * 2)));
        row("", &[k as f64, removal, perturb, linkrm, collective]);
    }

    println!("-- (b) links sanitized --");
    cols(&["#links", "LinkRemove", "Collective", "RandomLink"]);
    for k in (0..=8).step_by(2) {
        let linkrm = mean(&|c| composite(attr_privacy(c, "identity", 0), link_privacy(c, k)));
        let collective = mean(&|c| composite(attr_privacy(c, "removal", 1), link_privacy(c, k)));
        // Random removal: expected true-mass unchanged → privacy from the
        // unsorted mean over a random subset ≈ baseline with fewer kept.
        let random = mean(&|c| {
            let n = c.neighbor_true_mass.len();
            if n == 0 {
                return composite(attr_privacy(c, "identity", 0), 1.0);
            }
            let kept = n.saturating_sub(k).max(1);
            let mean_mass = c.neighbor_true_mass.iter().sum::<f64>() / n as f64;
            let _ = kept;
            composite(attr_privacy(c, "identity", 0), 1.0 - mean_mass)
        });
        row("", &[k as f64, linkrm, collective, random]);
    }
    Ok(())
}

/// Figure 4.2: utility loss vs latent-data privacy level.
pub fn fig4_2() -> Result<()> {
    header(
        "Fig 4.2",
        "utility loss under different latent-privacy levels",
    );
    let d = caltech_like(SEED);
    let ctxs = build_contexts(&d);

    println!("-- (a) structure utility loss vs privacy (1 vs 2 attrs sanitized) --");
    cols(&["SUL", "priv@1attr", "priv@2attr"]);
    for k in 0..=6 {
        let sul = ctxs.iter().map(|c| link_cost(c, k)).sum::<f64>() / ctxs.len() as f64;
        let priv_at = |attrs: usize| -> f64 {
            ctxs.iter()
                .map(|c| composite(attr_privacy(c, "removal", attrs), link_privacy(c, k)))
                .sum::<f64>()
                / ctxs.len() as f64
        };
        row("", &[sul, priv_at(1), priv_at(2)]);
    }

    println!("-- (b) prediction utility loss vs privacy (2 vs 4 links removed) --");
    cols(&["PUL", "priv@2links", "priv@4links"]);
    for k in 0..=PUBLIC_COLS.len() {
        let pul = ctxs
            .iter()
            .map(|c| {
                let colsv: Vec<usize> = (0..k).collect();
                let s = AttributeStrategy::removal(c.profile.variants().to_vec(), &colsv);
                prediction_utility_loss(&c.profile, &s, hamming_disparity)
            })
            .sum::<f64>()
            / ctxs.len() as f64;
        let priv_at = |links: usize| -> f64 {
            ctxs.iter()
                .map(|c| composite(attr_privacy(c, "removal", k), link_privacy(c, links)))
                .sum::<f64>()
                / ctxs.len() as f64
        };
        row("", &[pul, priv_at(2), priv_at(4)]);
    }
    Ok(())
}

/// Figure 4.3: privacy-utility tradeoff with different adversary prior
/// knowledge: strategies *designed* under each knowledge case, evaluated
/// against the powerful adversary.
pub fn fig4_3() -> Result<()> {
    header(
        "Fig 4.3",
        "latent privacy under four adversary-knowledge cases",
    );
    let d = caltech_like(SEED);
    let ctxs = build_contexts(&d);

    let designed_privacy = |k: Knowledge, delta: f64| -> Result<f64> {
        let mut total = 0.0;
        for c in &ctxs {
            let initial = AttributeStrategy::removal(c.profile.variants().to_vec(), &[0]);
            let pul0 = prediction_utility_loss(&c.profile, &initial, hamming_disparity);
            let cfg = OptimizeConfig {
                grid: 3,
                sweeps: 1,
                delta: delta.max(pul0),
            };
            let (s, _) = optimize_attribute_strategy_under(
                &c.profile,
                &initial,
                &c.predictions,
                hamming_disparity,
                cfg,
                k,
            )?;
            total += composite(
                latent_privacy_vs_powerful(&c.profile, &s, &c.predictions),
                link_privacy(c, 2),
            );
        }
        Ok(total / ctxs.len() as f64)
    };

    println!("-- (c) privacy vs prediction-utility threshold delta --");
    cols(&["delta", "Collective", "Profile", "Strategy", "Unknown"]);
    for delta in [0.8, 1.2, 1.6, 2.0] {
        let vals: Vec<f64> = ALL_KNOWLEDGE
            .iter()
            .map(|&k| designed_privacy(k, delta))
            .collect::<Result<_>>()?;
        row("", &[&[delta], vals.as_slice()].concat());
    }
    Ok(())
}

/// Figure 4.4: latent-data privacy surface over (ε, δ).
pub fn fig4_4() -> Result<()> {
    header("Fig 4.4", "latent privacy over the (eps, delta) grid");
    let d = caltech_like(SEED);
    let ctxs = build_contexts(&d);
    cols(&["eps\\delta", "0.5", "1.0", "1.5", "2.0"]);
    for eps in [0.0, 2.0, 4.0, 8.0] {
        let mut vals = Vec::new();
        for delta in [0.5, 1.0, 1.5, 2.0] {
            let mut total = 0.0;
            for c in &ctxs {
                // ε buys link removals greedily until the structure
                // budget is exhausted.
                let mut removed = 0;
                while link_cost(c, removed + 1) <= eps && removed < c.link_costs.len() {
                    removed += 1;
                }
                let initial = AttributeStrategy::identity(c.profile.variants().to_vec());
                let (_, attr) = optimize_attribute_strategy_under(
                    &c.profile,
                    &initial,
                    &c.predictions,
                    hamming_disparity,
                    OptimizeConfig {
                        grid: 2,
                        sweeps: 1,
                        delta,
                    },
                    Knowledge::Full,
                )?;
                total += composite(attr, link_privacy(c, removed));
            }
            vals.push(total / ctxs.len() as f64);
        }
        row(&format!("{eps}"), &vals);
    }
    Ok(())
}
