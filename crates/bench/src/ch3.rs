//! Chapter 3 experiment regenerators: Tables 3.3-3.12 and Figures 3.2-3.5.

use crate::util::{cols, datasets, header, known_mask, row, SEED};
use ppdp::classify::{run_attack, AttackModel, LabeledGraph, LocalKind};
use ppdp::datagen::social::SocialDataset;
use ppdp::errors::Result;
use ppdp::graph::stats::graph_stats;
use ppdp::graph::SocialGraph;
use ppdp::roughset::{find_reduct, AttrId};
use ppdp::sanitize::depend::{dependency_report, graph_system, most_dependent_attributes};
use ppdp::sanitize::links::indistinguishable_links;
use ppdp::sanitize::metrics::utility_privacy_ratio;
use ppdp::sanitize::{collective_sanitize, generalize::numeric_generalization};

const KINDS: [LocalKind; 3] = [LocalKind::Bayes, LocalKind::Knn(7), LocalKind::Rst];
const MODELS: [(&str, AttackModel); 3] = [
    ("AttrOnly", AttackModel::AttrOnly),
    ("LinkOnly", AttackModel::LinkOnly),
    (
        "CC",
        AttackModel::Collective {
            alpha: 0.5,
            beta: 0.5,
        },
    ),
];

/// Table 3.3: general statistics about the three datasets.
pub fn table3_3() -> Result<()> {
    header("Table 3.3", "general statistics about the three datasets");
    cols(&["SNAP", "Caltech", "MIT"]);
    let stats: Vec<_> = datasets()
        .iter()
        .map(|d| {
            (
                graph_stats(&d.graph, 1_000),
                d.graph.schema().len(),
                d.graph.schema().arity(d.privacy_cat),
            )
        })
        .collect();
    let pick = |f: &dyn Fn(usize) -> f64| -> Vec<f64> { (0..3).map(f).collect() };
    row("nodes", &pick(&|i| stats[i].0.nodes as f64));
    row("friendship links", &pick(&|i| stats[i].0.edges as f64));
    row("attributes per user", &pick(&|i| stats[i].1 as f64));
    row("decision attr values", &pick(&|i| stats[i].2 as f64));
    row("components", &pick(&|i| stats[i].0.components as f64));
    row(
        "largest component nodes",
        &pick(&|i| stats[i].0.largest_component_nodes as f64),
    );
    row(
        "largest component edges",
        &pick(&|i| stats[i].0.largest_component_edges as f64),
    );
    row(
        "diameter (lower bound)",
        &pick(&|i| stats[i].0.diameter as f64),
    );
    Ok(())
}

/// Table 3.4: reduct sizes for the three datasets.
pub fn table3_4() -> Result<()> {
    header(
        "Table 3.4",
        "reduct systems (condition attrs -> reduct size)",
    );
    for d in datasets() {
        let sys = graph_system(&d.graph);
        let cond: Vec<AttrId> = d
            .graph
            .schema()
            .ids()
            .filter(|&c| c != d.privacy_cat)
            .map(|c| AttrId(c.0))
            .collect();
        let reduct = find_reduct(&sys, &cond, &[AttrId(d.privacy_cat.0)]);
        println!(
            "{:<10} sensitive attr: {} condition attrs -> reduct of {}",
            d.name,
            cond.len(),
            reduct.len()
        );
    }
    Ok(())
}

/// Table 3.5: the utility/privacy attribute designation.
pub fn table3_5() -> Result<()> {
    header("Table 3.5", "utility and privacy attribute settings");
    for d in datasets() {
        println!(
            "{:<10} privacy attr = {} ({}), utility attr = {} ({})",
            d.name,
            d.graph.schema().category(d.privacy_cat).name,
            d.privacy_cat,
            d.graph.schema().category(d.utility_cat).name,
            d.utility_cat,
        );
    }
    Ok(())
}

/// Table 3.6: PDA/UDA/Core sizes per dataset.
pub fn table3_6() -> Result<()> {
    header("Table 3.6", "PDAs, UDAs and Core");
    cols(&["UDAs", "PDA-Core", "Core"]);
    for d in datasets() {
        let rep = dependency_report(&d.graph, d.privacy_cat, d.utility_cat);
        row(
            d.name,
            &[
                rep.udas.len() as f64,
                rep.pdas_minus_core().len() as f64,
                rep.core.len() as f64,
            ],
        );
    }
    Ok(())
}

fn ratio_for(g: &SocialGraph, d: &SocialDataset, known: &[bool], mix: (f64, f64)) -> Result<f64> {
    Ok(utility_privacy_ratio(
        g,
        d.privacy_cat,
        d.utility_cat,
        known,
        LocalKind::Bayes,
        mix,
    )?
    .ratio)
}

/// Tables 3.7 / 3.11 / 3.12: maximum utility/privacy ratio under the
/// collective, attribute-removal and link-removal methods at a given α/β.
pub fn table_max_ratio(id: &str, mix: (f64, f64)) -> Result<()> {
    header(
        id,
        &format!("max utility/privacy, alpha={}, beta={}", mix.0, mix.1),
    );
    cols(&["Collective", "AttrRemove", "LinkRemove"]);
    for d in datasets() {
        let known = known_mask(d.graph.user_count(), SEED + 1);

        // Collective: best ratio over generalization levels 5..8.
        let mut collective = f64::NEG_INFINITY;
        for level in 5..=8 {
            let (san, _) = collective_sanitize(&d.graph, d.privacy_cat, d.utility_cat, level)?;
            collective = collective.max(ratio_for(&san, &d, &known, mix)?);
        }

        // Attribute removal: best ratio over removing 0..=3 top PDAs.
        let order = most_dependent_attributes(&d.graph, d.privacy_cat, 3);
        let mut attr_removal = f64::NEG_INFINITY;
        for k in 0..=order.len() {
            let mut g = d.graph.clone();
            for &cat in &order[..k] {
                g.clear_category(cat);
            }
            attr_removal = attr_removal.max(ratio_for(&g, &d, &known, mix)?);
        }

        // Link removal: best ratio over 0/300/600 removed links (prefix of
        // one global indistinguishability ranking).
        let lg = LabeledGraph::new(&d.graph, d.privacy_cat, known.clone());
        let boot = run_attack(&lg, LocalKind::Bayes, AttackModel::AttrOnly)?;
        let scores = indistinguishable_links(&lg, &boot.dists);
        let mut link_removal = f64::NEG_INFINITY;
        for &k in &[0usize, 300, 600] {
            let mut g = d.graph.clone();
            for s in scores.iter().take(k) {
                g.remove_edge(s.user, s.neighbor);
            }
            link_removal = link_removal.max(ratio_for(&g, &d, &known, mix)?);
        }

        row(d.name, &[collective, attr_removal, link_removal]);
    }
    Ok(())
}

/// Tables 3.8-3.10: utility/privacy vs generalization level L, #removed
/// attributes and #removed links, for one dataset.
pub fn table_sweep(id: &str, d: &SocialDataset, link_steps: &[usize]) -> Result<()> {
    header(
        id,
        &format!("utility/privacy sweeps on {} (alpha=beta=0.5)", d.name),
    );
    let known = known_mask(d.graph.user_count(), SEED + 1);
    let mix = (0.5, 0.5);

    println!("-- generalization level L (collective perturbation of the Core) --");
    cols(&["L", "uti/pri"]);
    for level in 5..=8 {
        let (san, _) = collective_sanitize(&d.graph, d.privacy_cat, d.utility_cat, level)?;
        row("", &[level as f64, ratio_for(&san, d, &known, mix)?]);
    }

    println!("-- number of removed privacy-dependent attributes --");
    cols(&["#attrs", "uti/pri"]);
    let order = most_dependent_attributes(&d.graph, d.privacy_cat, 3);
    for k in 0..=order.len() {
        let mut g = d.graph.clone();
        for &cat in &order[..k] {
            g.clear_category(cat);
        }
        row("", &[k as f64, ratio_for(&g, d, &known, mix)?]);
    }

    println!("-- number of removed indistinguishable links --");
    cols(&["#links", "uti/pri"]);
    let lg = LabeledGraph::new(&d.graph, d.privacy_cat, known.clone());
    let boot = run_attack(&lg, LocalKind::Bayes, AttackModel::AttrOnly)?;
    let scores = indistinguishable_links(&lg, &boot.dists);
    for &k in link_steps {
        let mut g = d.graph.clone();
        for s in scores.iter().take(k) {
            g.remove_edge(s.user, s.neighbor);
        }
        row("", &[k as f64, ratio_for(&g, d, &known, mix)?]);
    }
    Ok(())
}

/// Figures 3.2-3.4: sensitive-attribute prediction accuracy vs the number
/// of removed PDAs (panel a-c) and removed indistinguishable links (panel
/// d-f), for the three local classifiers × three attack models.
pub fn fig_accuracy_sweeps(
    id: &str,
    d: &SocialDataset,
    attr_steps: usize,
    link_steps: &[usize],
) -> Result<()> {
    header(id, &format!("accuracy sweeps on {}", d.name));
    let known = known_mask(d.graph.user_count(), SEED + 1);

    let order = most_dependent_attributes(&d.graph, d.privacy_cat, attr_steps);
    for kind in KINDS {
        println!(
            "-- panel: {} as attribute-based classifier, attribute removal --",
            kind.name()
        );
        cols(&["#attrs", "AttrOnly", "LinkOnly", "CC"]);
        for k in 0..=order.len() {
            let mut g = d.graph.clone();
            for &cat in &order[..k] {
                g.clear_category(cat);
            }
            let lg = LabeledGraph::new(&g, d.privacy_cat, known.clone());
            let accs: Vec<f64> = MODELS
                .iter()
                .map(|(_, m)| Ok(run_attack(&lg, kind, *m)?.accuracy))
                .collect::<Result<_>>()?;
            row("", &[&[k as f64], accs.as_slice()].concat());
        }
    }

    let lg = LabeledGraph::new(&d.graph, d.privacy_cat, known.clone());
    let boot = run_attack(&lg, LocalKind::Bayes, AttackModel::AttrOnly)?;
    let scores = indistinguishable_links(&lg, &boot.dists);
    for kind in KINDS {
        println!(
            "-- panel: {} as attribute-based classifier, link removal --",
            kind.name()
        );
        cols(&["#links", "AttrOnly", "LinkOnly", "CC"]);
        for &k in link_steps {
            let mut g = d.graph.clone();
            for s in scores.iter().take(k) {
                g.remove_edge(s.user, s.neighbor);
            }
            let lg = LabeledGraph::new(&g, d.privacy_cat, known.clone());
            let accs: Vec<f64> = MODELS
                .iter()
                .map(|(_, m)| Ok(run_attack(&lg, kind, *m)?.accuracy))
                .collect::<Result<_>>()?;
            row("", &[&[k as f64], accs.as_slice()].concat());
        }
    }
    Ok(())
}

/// Figure 3.5: 2-D sweep (removed attributes × removed links) on MIT with
/// ICA-KNN and ICA-Bayes.
pub fn fig3_5(d: &SocialDataset) -> Result<()> {
    header(
        "Fig 3.5",
        "2-D attr x link removal sweep on MIT (ICA-KNN / ICA-Bayes)",
    );
    let known = known_mask(d.graph.user_count(), SEED + 1);
    let order = most_dependent_attributes(&d.graph, d.privacy_cat, 3);
    let lg0 = LabeledGraph::new(&d.graph, d.privacy_cat, known.clone());
    let boot = run_attack(&lg0, LocalKind::Bayes, AttackModel::AttrOnly)?;
    let scores = indistinguishable_links(&lg0, &boot.dists);
    let link_grid = [0usize, 1_000, 2_500, 5_000];
    for kind in [LocalKind::Knn(7), LocalKind::Bayes] {
        println!("-- ICA-{} accuracy grid --", kind.name());
        cols(&["#attrs\\#links", "0", "1000", "2500", "5000"]);
        for a in 0..=order.len() {
            let mut base = d.graph.clone();
            for &cat in &order[..a] {
                base.clear_category(cat);
            }
            let accs: Vec<f64> = link_grid
                .iter()
                .map(|&k| {
                    let mut g = base.clone();
                    for s in scores.iter().take(k) {
                        g.remove_edge(s.user, s.neighbor);
                    }
                    let lg = LabeledGraph::new(&g, d.privacy_cat, known.clone());
                    Ok(run_attack(
                        &lg,
                        kind,
                        AttackModel::Collective {
                            alpha: 0.5,
                            beta: 0.5,
                        },
                    )?
                    .accuracy)
                })
                .collect::<Result<_>>()?;
            row(&format!("{a}"), &accs);
        }
    }
    Ok(())
}

/// Convenience: run one generalization-perturbation on a clone (exposed for
/// the ablation bench).
pub fn perturb_clone(d: &SocialDataset, level: usize) -> SocialGraph {
    let mut g = d.graph.clone();
    let rep = dependency_report(&g, d.privacy_cat, d.utility_cat);
    for &cat in &rep.core {
        numeric_generalization(&mut g, cat, level);
    }
    g
}
