//! Shared helpers for the experiment regenerators: row printing and the
//! standard dataset/split setup.

use ppdp::datagen::social::{caltech_like, mit_like, snap_like, SocialDataset};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The workspace-wide experiment seed (all regenerated numbers are
/// deterministic functions of this).
pub const SEED: u64 = 42;

/// Fraction of users whose sensitive label the attacker already knows.
pub const KNOWN_FRAC: f64 = 0.7;

/// The three Chapter 3 datasets in the paper's order.
pub fn datasets() -> Vec<SocialDataset> {
    vec![snap_like(SEED), caltech_like(SEED), mit_like(SEED)]
}

/// The two small Chapter 3 datasets (for sweeps where the MIT-scale runs
/// are split into their own experiment ids).
pub fn small_datasets() -> Vec<SocialDataset> {
    vec![snap_like(SEED), caltech_like(SEED)]
}

/// Deterministic known-label mask for a dataset.
pub fn known_mask(n: usize, seed: u64) -> Vec<bool> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_bool(KNOWN_FRAC)).collect()
}

/// Prints a header line for an experiment block.
pub fn header(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
}

/// Prints one row of named f64 cells with 4-decimal formatting.
pub fn row(label: &str, values: &[f64]) {
    print!("{label:<28}");
    for v in values {
        print!(" {v:>9.4}");
    }
    println!();
}

/// Prints a column-header row aligned with [`row`].
pub fn cols(labels: &[&str]) {
    print!("{:<28}", "");
    for l in labels {
        print!(" {l:>9}");
    }
    println!();
}
