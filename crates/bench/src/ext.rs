//! Extension experiments — systems beyond the dissertation's evaluation
//! chapters that its text motivates: kin genomic inference, linkage-
//! disequilibrium reconstruction (the Watson ApoE scenario), structural
//! de-anonymization, and differentially-private synthetic genomes.

use crate::util::{cols, header, row, SEED};
use ppdp::datagen::genomes::amd_like;
use ppdp::datagen::gwas::synthetic_catalog;
use ppdp::datagen::social::caltech_like;
use ppdp::dp::mondrian_anonymize;
use ppdp::errors::Result;
use ppdp::genomic::kinship::{kin_attack, Family};
use ppdp::genomic::ld::{add_ld_factors, LdPair};
use ppdp::genomic::{BpConfig, Evidence, FactorGraph, Genotype, GwasCatalog, SnpId, TraitId};
use ppdp::publish::DpPublisher;
use ppdp::sanitize::deanon::demo_attack;

/// Kin inference: how much of a silent child's genome/phenome leaks per
/// relative released.
pub fn ext_kin() -> Result<()> {
    header(
        "Ext: kin",
        "information leaked about a silent child per released relative",
    );
    let catalog = synthetic_catalog(80, 6, 2, SEED);
    let panel = amd_like(&catalog, TraitId(0), 20, 20, SEED);
    cols(&["relatives", "mean dP(trait)", "max dP(geno)"]);
    for relatives in 0..=3usize {
        let mut family = Family::new();
        let child = family.member(Evidence::none());
        for r in 0..relatives {
            let m = family.member(panel.full_evidence(r));
            family.relate(m, child);
        }
        let (res, idx) = kin_attack(&catalog, &family, BpConfig::default())?;
        // Baseline: the same child alone.
        let mut lone = Family::new();
        let solo = lone.member(Evidence::none());
        let (base, idx0) = kin_attack(&catalog, &lone, BpConfig::default())?;
        let mut trait_shift = 0.0;
        let mut n_traits = 0usize;
        for t in 0..catalog.n_traits() {
            if let (Some(i), Some(j)) =
                (idx.trait_(child, TraitId(t)), idx0.trait_(solo, TraitId(t)))
            {
                trait_shift += (res.trait_marginals[i][1] - base.trait_marginals[j][1]).abs();
                n_traits += 1;
            }
        }
        let mut geno_shift = 0.0f64;
        for s in 0..catalog.n_snps() {
            if let (Some(i), Some(j)) = (idx.snp(child, SnpId(s)), idx0.snp(solo, SnpId(s))) {
                for k in 0..3 {
                    geno_shift =
                        geno_shift.max((res.snp_marginals[i][k] - base.snp_marginals[j][k]).abs());
                }
            }
        }
        row(
            &format!("{relatives}"),
            &[
                relatives as f64,
                trait_shift / n_traits.max(1) as f64,
                geno_shift,
            ],
        );
    }
    Ok(())
}

/// The Watson scenario: reconstruct a withheld sensitive locus through LD
/// of increasing strength.
pub fn ext_ld() -> Result<()> {
    header(
        "Ext: LD",
        "withheld-locus reconstruction vs LD strength (Watson/ApoE)",
    );
    let mut cat = GwasCatalog::new(2);
    let t0 = cat.add_trait("alzheimers-like", 0.02);
    cat.associate(SnpId(0), t0, 1.2, 0.3);
    cat.associate(SnpId(1), t0, 2.5, 0.3);
    let ev = Evidence::none().with_snp(SnpId(0), Genotype::HomRisk);
    cols(&["r", "P(rr at hidden locus)"]);
    for &r in &[0.0, 0.3, 0.6, 0.9, 0.99] {
        let mut g = FactorGraph::build(&cat, &ev)?;
        add_ld_factors(
            &mut g,
            &[LdPair {
                a: SnpId(0),
                b: SnpId(1),
                freq_a: 0.3,
                freq_b: 0.3,
                r,
            }],
        )?;
        let res = BpConfig::default().run(&g);
        let s1 = g.snp_local(SnpId(1)).expect("materialized");
        row("", &[r, res.snp_marginals[s1][0]]);
    }
    Ok(())
}

/// Structural de-anonymization of a pseudonymized Caltech-like graph.
pub fn ext_deanon() -> Result<()> {
    header(
        "Ext: deanon",
        "seed-and-propagate re-identification of pseudonymized Caltech",
    );
    let d = caltech_like(SEED);
    cols(&["edge noise", "seeds", "precision", "recall"]);
    for &(noise, seeds) in &[(0.0, 16usize), (0.05, 16), (0.15, 16), (0.0, 4)] {
        let r = demo_attack(&d.graph, noise, seeds, SEED + 9);
        row("", &[noise, seeds as f64, r.precision, r.recall]);
    }
    Ok(())
}

/// DP synthetic genomes vs Mondrian k-anonymity: utility at matched
/// protection effort.
pub fn ext_dp_genomes() -> Result<()> {
    header(
        "Ext: dp-genomes",
        "DP synthesis vs k-anonymity on a genotype panel",
    );
    let catalog = synthetic_catalog(28, 4, 1, SEED);
    let panel = amd_like(&catalog, TraitId(0), 300, 300, SEED);
    let table = panel.to_table();

    println!("-- DP synthesis (degree-1 network) --");
    cols(&["epsilon", "worst locus tvd"]);
    for &eps in &[0.1, 1.0, 10.0, 100.0] {
        let synth = DpPublisher::new(eps, 1)
            .publish(&table, table.n_rows(), SEED + 3)?
            .table;
        let worst = (0..table.n_cols())
            .map(|s| table.marginal_tvd(&synth, &[s]))
            .fold(0.0f64, f64::max);
        row("", &[eps, worst]);
    }

    println!("-- Mondrian k-anonymity on the first four loci --");
    cols(&["k", "generalization cost", "worst locus tvd"]);
    for &k in &[2usize, 10, 50] {
        let anon = mondrian_anonymize(&table, &[0, 1, 2, 3], k);
        let worst = (0..4)
            .map(|s| table.marginal_tvd(&anon.table, &[s]))
            .fold(0.0f64, f64::max);
        row("", &[k as f64, anon.generalization_cost, worst]);
    }
    Ok(())
}
