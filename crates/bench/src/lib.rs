//! Experiment regenerators and benchmark helpers for the `ppdp` workspace.
//!
//! The `experiments` binary (`cargo run -p ppdp-bench --release --bin
//! experiments -- <id>|all`) regenerates every table and figure of the
//! dissertation's evaluation sections; the Criterion benches under
//! `benches/` measure the performance claims (most importantly the
//! linear-vs-exponential inference-cost headline of Chapter 5).

pub mod ch3;
pub mod ch4;
pub mod ch5;
pub mod ext;
pub mod util;
