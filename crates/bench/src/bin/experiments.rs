//! Regenerates every table and figure of the dissertation's evaluation
//! sections on the synthetic stand-in datasets.
//!
//! Usage:
//!   cargo run -p ppdp-bench --release --bin experiments -- <id> [<id> …]
//!   cargo run -p ppdp-bench --release --bin experiments -- all
//!   cargo run -p ppdp-bench --release --bin experiments -- quick   # skip MIT-scale sweeps
//!   cargo run -p ppdp-bench --release --bin experiments -- fig5.2 --report out.json
//!   cargo run -p ppdp-bench --release --bin experiments -- fig5.2 --json
//!
//! Ids: table3.3 table3.4 table3.5 table3.6 table3.7 table3.8 table3.9
//!      table3.10 table3.11 table3.12 fig3.2 fig3.3 fig3.4 fig3.5
//!      table4.2 fig4.1 fig4.2 fig4.3 fig4.4
//!      table5.1 table5.2 table5.3 fig5.1 fig5.2
//!      ext.kin ext.ld ext.deanon ext.dpgenomes
//!
//! Every run records telemetry (spans, counters, privacy-budget draws);
//! `--report <path>` writes the aggregated [`RunReport`] as JSON to a file
//! and `--json` prints it to stdout. Unknown ids exit with status 1, bad
//! usage with status 2.
//!
//! When any subsystem degraded gracefully during the run (prior
//! fallbacks, distribution repairs, …) a per-(subsystem, reason) summary
//! is printed to stderr and the process exits with status 3 — pass
//! `--allow-degraded` to keep exit 0 for runs where lower-fidelity
//! results are acceptable.
//!
//! Set `PPDP_TRACE=1` to additionally capture a causal event trace of
//! the whole invocation; `PPDP_TRACE_OUT=<path>` writes it as JSONL
//! (default `experiments_trace.jsonl` next to the current directory),
//! ready for `ppdp-report explain` or the Chrome trace converter.
//!
//! Set `PPDP_METRICS=1` (or `PPDP_METRICS_ADDR=<ip:port>`) to expose the
//! live metric registry while the run executes: counters, ε-draws, span
//! timings, progress/ETA and RSS gauges, scrapeable as OpenMetrics text.
//! `--metrics-out <path>` forces metrics on and writes the final merged
//! snapshot to `<path>` on exit (the flag is the CLI spelling of
//! `PPDP_METRICS_OUT`; see README.md for the full `PPDP_METRICS_*`
//! environment table).
//!
//! Every invocation runs under a global audit sink: each published
//! artifact's lineage record and every ε draw (with call-site
//! provenance) are captured, and the run ends with the
//! unattributed-spend lint — a ledgered ε draw not reachable from any
//! release record fails the run with status **5** (privacy loss without
//! provenance is an audit bug, not a warning). `--audit-out <path>`
//! additionally writes the full audit log as JSONL, ready for
//! `ppdp-report audit`.
//!
//! Long sweeps survive interruption: `--checkpoint-dir <dir>` journals
//! every completed experiment id to a write-ahead log (fsynced append),
//! and a rerun with the same directory skips the ids already done. On
//! `SIGTERM` the current experiment finishes, its completion is
//! checkpointed, every report/trace/metrics sink is flushed, and the
//! process exits with status **4** — rerun to resume where it stopped.
//! `PPDP_SELF_TERM_AFTER=<n>` raises SIGTERM from inside the process after
//! `n` experiments (the crash harness's knob for testing the handler).

use ppdp::durable::Wal;
use ppdp::telemetry::{self, fmt_nanos, status_line, Recorder};
use ppdp_bench::util::SEED;
use ppdp_bench::{ch3, ch4, ch5};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Set by the SIGTERM handler; checked between experiments. An atomic
/// store is async-signal-safe, which is all a handler may do.
static TERMINATE: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_sig: i32) {
    TERMINATE.store(true, Ordering::Relaxed);
}

const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
    fn raise(signum: i32) -> i32;
}

fn install_sigterm_handler() {
    // SAFETY: `on_sigterm` only performs an atomic store, and the libc
    // `signal` call itself is sound for any fn(i32) handler address.
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
}

fn run(id: &str) -> ppdp::errors::Result<()> {
    match id {
        "table3.3" => ch3::table3_3(),
        "table3.4" => ch3::table3_4(),
        "table3.5" => ch3::table3_5(),
        "table3.6" => ch3::table3_6(),
        "table3.7" => ch3::table_max_ratio("Table 3.7", (0.5, 0.5)),
        "table3.8" => ch3::table_sweep(
            "Table 3.8",
            &ppdp::datagen::social::snap_like(SEED),
            &[0, 200, 400, 600],
        ),
        "table3.9" => ch3::table_sweep(
            "Table 3.9",
            &ppdp::datagen::social::caltech_like(SEED),
            &[0, 400, 800, 1200],
        ),
        "table3.10" => ch3::table_sweep(
            "Table 3.10",
            &ppdp::datagen::social::mit_like(SEED),
            &[300, 600, 900, 1200],
        ),
        "table3.11" => ch3::table_max_ratio("Table 3.11", (0.1, 0.9)),
        "table3.12" => ch3::table_max_ratio("Table 3.12", (0.9, 0.1)),
        "fig3.2" => ch3::fig_accuracy_sweeps(
            "Fig 3.2",
            &ppdp::datagen::social::snap_like(SEED),
            9,
            &[0, 200, 400, 600, 800, 1000],
        ),
        "fig3.3" => ch3::fig_accuracy_sweeps(
            "Fig 3.3",
            &ppdp::datagen::social::caltech_like(SEED),
            4,
            &[0, 500, 1000, 1500, 2000],
        ),
        "fig3.4" => ch3::fig_accuracy_sweeps(
            "Fig 3.4",
            &ppdp::datagen::social::mit_like(SEED),
            4,
            &[0, 1000, 2000, 3000, 4000, 5000],
        ),
        "fig3.5" => ch3::fig3_5(&ppdp::datagen::social::mit_like(SEED)),
        "table4.2" => ch4::table4_2(),
        "fig4.1" => ch4::fig4_1(),
        "fig4.2" => ch4::fig4_2(),
        "fig4.3" => ch4::fig4_3(),
        "fig4.4" => ch4::fig4_4(),
        "table5.1" => ch5::table5_1(),
        "table5.2" => ch5::table5_2(),
        "table5.3" => ch5::table5_3(),
        "fig5.1" => ch5::fig5_1(),
        "fig5.2" => ch5::fig5_2(),
        "ext.kin" => ppdp_bench::ext::ext_kin(),
        "ext.ld" => ppdp_bench::ext::ext_ld(),
        "ext.deanon" => ppdp_bench::ext::ext_deanon(),
        "ext.dpgenomes" => ppdp_bench::ext::ext_dp_genomes(),
        other => unreachable!("id {other} was validated against ALL before dispatch"),
    }
}

const ALL: &[&str] = &[
    "table3.3",
    "table3.4",
    "table3.5",
    "table3.6",
    "table3.7",
    "table3.8",
    "table3.9",
    "table3.10",
    "table3.11",
    "table3.12",
    "fig3.2",
    "fig3.3",
    "fig3.4",
    "fig3.5",
    "table4.2",
    "fig4.1",
    "fig4.2",
    "fig4.3",
    "fig4.4",
    "table5.1",
    "table5.2",
    "table5.3",
    "fig5.1",
    "fig5.2",
    "ext.kin",
    "ext.ld",
    "ext.deanon",
    "ext.dpgenomes",
];

/// `quick` skips the MIT-scale sweeps (fig3.4, fig3.5, table3.10).
const QUICK: &[&str] = &[
    "table3.3",
    "table3.4",
    "table3.5",
    "table3.6",
    "table3.7",
    "table3.8",
    "table3.9",
    "table3.11",
    "table3.12",
    "fig3.2",
    "fig3.3",
    "table4.2",
    "fig4.1",
    "fig4.2",
    "fig4.3",
    "fig4.4",
    "table5.1",
    "table5.2",
    "table5.3",
    "fig5.1",
    "fig5.2",
    "ext.kin",
    "ext.ld",
    "ext.deanon",
    "ext.dpgenomes",
];

fn usage() -> ! {
    eprintln!(
        "usage: experiments <id>|all|quick [<id> …] [--report <path>] [--json] \
         [--metrics-out <path>] [--checkpoint-dir <dir>] [--audit-out <path>] \
         [--allow-degraded]   (ids: {})",
        ALL.join(" ")
    );
    std::process::exit(2);
}

/// Prints one stderr line per `degraded.<subsystem>.<reason>` counter and
/// returns the total degradation count (0 when every result is full
/// fidelity).
fn report_degradations(report: &ppdp::telemetry::RunReport) -> u64 {
    let total = report.degradations();
    if total == 0 {
        return 0;
    }
    eprintln!(
        "{}",
        status_line(
            "degraded",
            &format!("{total} event(s) produced by fallback paths:")
        )
    );
    for (name, count) in &report.counters {
        let Some(rest) = name.strip_prefix("degraded.") else {
            continue;
        };
        let Some((subsystem, reason)) = rest.split_once('.') else {
            continue; // top-level per-subsystem totals, already summed above
        };
        eprintln!(
            "{}",
            status_line(
                "degraded",
                &format!("subsystem={subsystem} reason={reason} count={count}")
            )
        );
    }
    total
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    let mut report_path: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut audit_out: Option<String> = None;
    let mut checkpoint_dir: Option<std::path::PathBuf> = None;
    let mut json_stdout = false;
    let mut allow_degraded = false;
    let mut ids: Vec<&'static str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--report" => match iter.next() {
                Some(p) => report_path = Some(p.clone()),
                None => {
                    eprintln!("{}", status_line("error", "--report needs a file path"));
                    usage();
                }
            },
            "--metrics-out" => match iter.next() {
                Some(p) => metrics_out = Some(p.clone()),
                None => {
                    eprintln!(
                        "{}",
                        status_line("error", "--metrics-out needs a file path")
                    );
                    usage();
                }
            },
            "--checkpoint-dir" => match iter.next() {
                Some(p) => checkpoint_dir = Some(std::path::PathBuf::from(p)),
                None => {
                    eprintln!(
                        "{}",
                        status_line("error", "--checkpoint-dir needs a directory path")
                    );
                    usage();
                }
            },
            "--audit-out" => match iter.next() {
                Some(p) => audit_out = Some(p.clone()),
                None => {
                    eprintln!("{}", status_line("error", "--audit-out needs a file path"));
                    usage();
                }
            },
            "--json" => json_stdout = true,
            "--allow-degraded" => allow_degraded = true,
            "all" => ids.extend(ALL),
            "quick" => ids.extend(QUICK),
            flag if flag.starts_with('-') => {
                eprintln!("{}", status_line("error", &format!("unknown flag {flag}")));
                usage();
            }
            id => match ALL.iter().find(|&&known| known == id) {
                Some(&id) => ids.push(id),
                None => {
                    eprintln!(
                        "{}",
                        status_line("error", &format!("unknown experiment id: {id}"))
                    );
                    std::process::exit(1);
                }
            },
        }
    }
    if ids.is_empty() {
        usage();
    }
    install_sigterm_handler();
    let self_term_after: Option<usize> = std::env::var("PPDP_SELF_TERM_AFTER")
        .ok()
        .and_then(|v| v.parse().ok());

    // Progress journal: replay completed ids, skip them, append as we go.
    // The WAL's torn-tail tolerance means a kill mid-append forgets at most
    // the one id whose completion was never acknowledged — rerunning it is
    // safe (experiments are deterministic), forgetting ε draws would not be.
    let mut progress = match &checkpoint_dir {
        Some(dir) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!(
                    "{}",
                    status_line("error", &format!("cannot create {}: {e}", dir.display()))
                );
                std::process::exit(1);
            }
            match Wal::open(&dir.join("experiments.wal")) {
                Ok((wal, replay)) => {
                    let done: Vec<String> = replay
                        .records
                        .iter()
                        .map(|r| String::from_utf8_lossy(r).into_owned())
                        .collect();
                    Some((wal, done))
                }
                Err(e) => {
                    eprintln!("{}", status_line("error", &format!("checkpoint wal: {e}")));
                    std::process::exit(1);
                }
            }
        }
        None => None,
    };

    // One recorder for the whole invocation: every instrumented code path
    // in the workspace reports into it, grouped under a per-experiment span.
    let recorder = Recorder::new();
    telemetry::install_global(recorder.clone());
    // Global audit sink: captures every ε draw and release record the
    // invocation produces, feeding the end-of-run unattributed-spend
    // lint (and `--audit-out`).
    let audit_sink = ppdp::audit::AuditSink::new();
    ppdp::audit::install_global(audit_sink.clone());
    // Live metrics tee: `--metrics-out` forces the registry on with a
    // final-snapshot path; otherwise `PPDP_METRICS*` decides. Env knobs
    // (address, heartbeat interval, periodic snapshot) apply either way.
    let live = match &metrics_out {
        Some(path) => {
            let addr = std::env::var("PPDP_METRICS_ADDR").ok();
            let interval_ms = std::env::var("PPDP_METRICS_INTERVAL_MS")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(500);
            let snapshot = std::env::var("PPDP_METRICS_SNAPSHOT")
                .ok()
                .map(std::path::PathBuf::from);
            ppdp::metrics::LiveMetrics::install(
                addr.as_deref(),
                interval_ms,
                snapshot,
                Some(std::path::PathBuf::from(path)),
            )
        }
        None => ppdp::metrics::LiveMetrics::from_env(),
    };
    let tracing = std::env::var("PPDP_TRACE").is_ok_and(|v| v == "1");
    let collector = tracing.then(ppdp::trace::Collector::new);
    if let Some(col) = &collector {
        ppdp::trace::install_global(col.clone());
    }
    let total = Instant::now();
    let mut interrupted = false;
    let mut completed = 0usize;
    for &id in &ids {
        if TERMINATE.load(Ordering::Relaxed) {
            interrupted = true;
            break;
        }
        if let Some((_, done)) = &progress {
            if done.iter().any(|d| d == id) {
                eprintln!("{}", status_line("skip", &format!("{id} (checkpointed)")));
                continue;
            }
        }
        eprintln!("{}", status_line("run", id));
        let started = Instant::now();
        let outcome = {
            let _span = telemetry::span(id);
            run(id)
        };
        if let Err(e) = outcome {
            eprintln!("{}", status_line("error", &format!("{id}: {e}")));
            telemetry::uninstall_global();
            std::process::exit(1);
        }
        if let Some((wal, done)) = &mut progress {
            // Durability point: once this append returns, a rerun skips
            // the id even if we die before printing "done".
            if let Err(e) = wal.append(id.as_bytes()) {
                eprintln!("{}", status_line("error", &format!("checkpoint {id}: {e}")));
                telemetry::uninstall_global();
                std::process::exit(1);
            }
            done.push(id.to_owned());
        }
        let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        eprintln!(
            "{}",
            status_line("done", &format!("{id} in {}", fmt_nanos(nanos)))
        );
        completed += 1;
        if self_term_after == Some(completed) {
            // SAFETY: raising a signal at ourselves; the handler above
            // only flips an atomic.
            unsafe {
                raise(SIGTERM);
            }
        }
    }
    telemetry::uninstall_global();
    let metrics_active = live.active();
    let metrics_snap = live.finish();
    if metrics_active {
        let series = metrics_snap.counters.len()
            + metrics_snap.fcounters.len()
            + metrics_snap.gauges.len()
            + metrics_snap.histograms.len();
        let dest = metrics_out.as_deref().unwrap_or("(env-configured sinks)");
        eprintln!(
            "{}",
            status_line("saved", &format!("{series} metric series → {dest}"))
        );
    }
    if let Some(col) = &collector {
        ppdp::trace::uninstall_global();
        let trace = col.take();
        let out =
            std::env::var("PPDP_TRACE_OUT").unwrap_or_else(|_| "experiments_trace.jsonl".into());
        match std::fs::write(&out, trace.to_jsonl()) {
            Ok(()) => eprintln!(
                "{}",
                status_line(
                    "saved",
                    &format!("{} trace event(s) → {out}", trace.records.len())
                )
            ),
            Err(e) => {
                eprintln!(
                    "{}",
                    status_line("error", &format!("cannot write {out}: {e}"))
                );
                std::process::exit(1);
            }
        }
    }
    ppdp::audit::uninstall_global();
    let audit_log = audit_sink.take();
    if let Some(path) = &audit_out {
        if let Err(e) = std::fs::write(path, audit_log.to_jsonl()) {
            eprintln!(
                "{}",
                status_line("error", &format!("cannot write {path}: {e}"))
            );
            std::process::exit(1);
        }
        eprintln!(
            "{}",
            status_line(
                "saved",
                &format!(
                    "{} draw(s), {} release record(s) → {path}",
                    audit_log.draws.len(),
                    audit_log.releases.len()
                )
            )
        );
    }
    let report = recorder.take();
    let total_nanos = u64::try_from(total.elapsed().as_nanos()).unwrap_or(u64::MAX);
    eprintln!(
        "{}",
        status_line(
            "done",
            &format!("{completed} experiment(s) in {}", fmt_nanos(total_nanos))
        )
    );

    if let Some(path) = &report_path {
        if let Err(e) = std::fs::write(path, report.to_json_pretty()) {
            eprintln!(
                "{}",
                status_line("error", &format!("cannot write {path}: {e}"))
            );
            std::process::exit(1);
        }
        eprintln!(
            "{}",
            status_line("saved", &format!("telemetry report → {path}"))
        );
    }
    if json_stdout {
        println!("{}", report.to_json_pretty());
    }
    let lint = audit_log.lint();
    if !audit_log.is_empty() {
        eprintln!(
            "{}",
            status_line(
                "audit",
                &format!(
                    "{} release(s), {}",
                    audit_log.releases.len(),
                    lint.describe().lines().next().unwrap_or_default()
                )
            )
        );
    }
    if !lint.clean() {
        eprintln!("{}", status_line("error", &lint.describe()));
        eprintln!(
            "{}",
            status_line(
                "error",
                "ledgered ε left a budget without a release record claiming it"
            )
        );
        std::process::exit(5);
    }
    if report_degradations(&report) > 0 && !allow_degraded {
        eprintln!(
            "{}",
            status_line(
                "error",
                "run degraded; inspect the summary above (or pass --allow-degraded)"
            )
        );
        std::process::exit(3);
    }
    if interrupted {
        let resume_hint = match &checkpoint_dir {
            Some(dir) => format!("rerun with --checkpoint-dir {} to resume", dir.display()),
            None => "pass --checkpoint-dir to make interrupted sweeps resumable".to_owned(),
        };
        eprintln!(
            "{}",
            status_line(
                "interrupted",
                &format!("SIGTERM after {completed} experiment(s); {resume_hint}")
            )
        );
        std::process::exit(4);
    }
}
