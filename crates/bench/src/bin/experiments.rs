//! Regenerates every table and figure of the dissertation's evaluation
//! sections on the synthetic stand-in datasets.
//!
//! Usage:
//!   cargo run -p ppdp-bench --release --bin experiments -- <id> [<id> …]
//!   cargo run -p ppdp-bench --release --bin experiments -- all
//!   cargo run -p ppdp-bench --release --bin experiments -- quick   # skip MIT-scale sweeps
//!
//! Ids: table3.3 table3.4 table3.5 table3.6 table3.7 table3.8 table3.9
//!      table3.10 table3.11 table3.12 fig3.2 fig3.3 fig3.4 fig3.5
//!      table4.2 fig4.1 fig4.2 fig4.3 fig4.4
//!      table5.1 table5.2 table5.3 fig5.1 fig5.2

use ppdp_bench::util::SEED;
use ppdp_bench::{ch3, ch4, ch5};

fn run(id: &str) {
    match id {
        "table3.3" => ch3::table3_3(),
        "table3.4" => ch3::table3_4(),
        "table3.5" => ch3::table3_5(),
        "table3.6" => ch3::table3_6(),
        "table3.7" => ch3::table_max_ratio("Table 3.7", (0.5, 0.5)),
        "table3.8" => {
            ch3::table_sweep("Table 3.8", &ppdp::datagen::social::snap_like(SEED), &[0, 200, 400, 600])
        }
        "table3.9" => ch3::table_sweep(
            "Table 3.9",
            &ppdp::datagen::social::caltech_like(SEED),
            &[0, 400, 800, 1200],
        ),
        "table3.10" => ch3::table_sweep(
            "Table 3.10",
            &ppdp::datagen::social::mit_like(SEED),
            &[300, 600, 900, 1200],
        ),
        "table3.11" => ch3::table_max_ratio("Table 3.11", (0.1, 0.9)),
        "table3.12" => ch3::table_max_ratio("Table 3.12", (0.9, 0.1)),
        "fig3.2" => ch3::fig_accuracy_sweeps(
            "Fig 3.2",
            &ppdp::datagen::social::snap_like(SEED),
            9,
            &[0, 200, 400, 600, 800, 1000],
        ),
        "fig3.3" => ch3::fig_accuracy_sweeps(
            "Fig 3.3",
            &ppdp::datagen::social::caltech_like(SEED),
            4,
            &[0, 500, 1000, 1500, 2000],
        ),
        "fig3.4" => ch3::fig_accuracy_sweeps(
            "Fig 3.4",
            &ppdp::datagen::social::mit_like(SEED),
            4,
            &[0, 1000, 2000, 3000, 4000, 5000],
        ),
        "fig3.5" => ch3::fig3_5(&ppdp::datagen::social::mit_like(SEED)),
        "table4.2" => ch4::table4_2(),
        "fig4.1" => ch4::fig4_1(),
        "fig4.2" => ch4::fig4_2(),
        "fig4.3" => ch4::fig4_3(),
        "fig4.4" => ch4::fig4_4(),
        "table5.1" => ch5::table5_1(),
        "table5.2" => ch5::table5_2(),
        "table5.3" => ch5::table5_3(),
        "fig5.1" => ch5::fig5_1(),
        "fig5.2" => ch5::fig5_2(),
        "ext.kin" => ppdp_bench::ext::ext_kin(),
        "ext.ld" => ppdp_bench::ext::ext_ld(),
        "ext.deanon" => ppdp_bench::ext::ext_deanon(),
        "ext.dpgenomes" => ppdp_bench::ext::ext_dp_genomes(),
        other => eprintln!("unknown experiment id: {other}"),
    }
}

const ALL: &[&str] = &[
    "table3.3", "table3.4", "table3.5", "table3.6", "table3.7", "table3.8", "table3.9",
    "table3.10", "table3.11", "table3.12", "fig3.2", "fig3.3", "fig3.4", "fig3.5", "table4.2",
    "fig4.1", "fig4.2", "fig4.3", "fig4.4", "table5.1", "table5.2", "table5.3", "fig5.1",
    "fig5.2", "ext.kin", "ext.ld", "ext.deanon", "ext.dpgenomes",
];

/// `quick` skips the MIT-scale sweeps (fig3.4, fig3.5, table3.10).
const QUICK: &[&str] = &[
    "table3.3", "table3.4", "table3.5", "table3.6", "table3.7", "table3.8", "table3.9",
    "table3.11", "table3.12", "fig3.2", "fig3.3", "table4.2", "fig4.1", "fig4.2", "fig4.3",
    "fig4.4", "table5.1", "table5.2", "table5.3", "fig5.1", "fig5.2", "ext.kin", "ext.ld",
    "ext.deanon", "ext.dpgenomes",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: experiments <id>|all|quick [<id> …]   (ids: {})", ALL.join(" "));
        std::process::exit(2);
    }
    for arg in &args {
        match arg.as_str() {
            "all" => ALL.iter().for_each(|id| run(id)),
            "quick" => QUICK.iter().for_each(|id| run(id)),
            id => run(id),
        }
    }
}
