//! Crash-injection target: a small but real publish pipeline whose every
//! durability boundary is a numbered abort point.
//!
//! The pipeline runs two ε-consuming stages over a [`DurableLedger`] and a
//! [`CheckpointStore`], then writes one deterministic `artifact.json`:
//!
//! 1. `genome` — greedy δ-privacy SNP sanitization via
//!    `GenomePublisher::publish_resumable` (every greedy pick is journaled
//!    to the checkpoint store as it commits);
//! 2. `dp` — PrivBayes-style synthetic microdata release;
//! 3. `artifact` — the released results, written atomically.
//!
//! Each stage draws its ε from the WAL-backed ledger *before* doing work;
//! after its release escapes, the stage appends an idempotent line to
//! `truth.log` (append + fsync) — the harness's lower bound on truly-spent
//! ε. The crash invariant under any kill: recovered `ledger.spent()` ≥ the
//! sum of `truth.log`, and a resumed run produces an `artifact.json` that
//! is byte-identical to an uninterrupted run's.
//!
//! Usage:
//!   crash_child --dir <workdir> [--exec seq|par4] [--kill-at <n>] [--seed <s>]
//!
//! `--kill-at n` aborts the process (`std::process::abort`, as a crash
//! would) at the n-th numbered crash point of a *fresh* run; the points are
//! printed on completion (`COMPLETE points=<total> …`) so a harness can
//! enumerate them. Resume runs renumber (durably finished spends are
//! skipped), so harnesses only pass `--kill-at` on first runs. The
//! `PPDP_CRASH_AT` environment variable is an equivalent spelling.

use ppdp::dp::{DurableLedger, OverdrawPolicy};
use ppdp::durable::{fnv1a, write_atomic, CheckpointStore};
use ppdp::genomic::sanitize::Target;
use ppdp::genomic::TraitId;
use ppdp::prelude::{ExecPolicy, GenomePublisher};
use ppdp::publish::DpPublisher;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Numbered abort gate: every durability boundary calls [`Gate::point`],
/// and the run dies by `abort()` when the counter reaches `--kill-at`.
struct Gate {
    kill_at: Option<u32>,
    counter: u32,
}

impl Gate {
    fn point(&mut self, tag: &str) {
        self.counter += 1;
        if self.kill_at == Some(self.counter) {
            eprintln!("crash_child: abort at point {} ({tag})", self.counter);
            std::process::abort();
        }
    }
}

/// Appends `<stage> <eps_bits>` to `truth.log` and fsyncs — but only once
/// per stage: the truth log records that a release *escaped*, and a resumed
/// run that recomputes an already-released stage must not double-count it.
fn truth_append(path: &Path, stage: &str, epsilon: f64) -> std::io::Result<()> {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let prefix = format!("{stage} ");
    if existing.lines().any(|l| l.starts_with(&prefix)) {
        return Ok(());
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{stage} {}", epsilon.to_bits())?;
    f.sync_all()
}

fn usage() -> ! {
    eprintln!("usage: crash_child --dir <workdir> [--exec seq|par4] [--kill-at <n>] [--seed <s>]");
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("crash_child: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut dir: Option<PathBuf> = None;
    let mut exec = ExecPolicy::Sequential;
    let mut exec_name = "seq";
    let mut kill_at: Option<u32> = std::env::var("PPDP_CRASH_AT")
        .ok()
        .and_then(|v| v.parse().ok());
    let mut seed: u64 = 42;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--dir" => dir = Some(PathBuf::from(iter.next().unwrap_or_else(|| usage()))),
            "--exec" => match iter.next().map(String::as_str) {
                Some("seq") => (exec, exec_name) = (ExecPolicy::Sequential, "seq"),
                Some("par4") => (exec, exec_name) = (ExecPolicy::parallel(4), "par4"),
                _ => usage(),
            },
            "--kill-at" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => kill_at = Some(n),
                None => usage(),
            },
            "--seed" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => usage(),
            },
            _ => usage(),
        }
    }
    let Some(dir) = dir else { usage() };
    if let Err(e) = std::fs::create_dir_all(&dir) {
        fail(&format!("cannot create {dir:?}: {e}"));
    }
    let mut gate = Gate {
        kill_at,
        counter: 0,
    };
    let truth = dir.join("truth.log");

    // -- open: ledger WAL replay + checkpoint store ----------------------
    let store = CheckpointStore::open(&dir.join("ckpt"))
        .unwrap_or_else(|e| fail(&format!("checkpoint store: {e}")));
    let (mut ledger, recovery) =
        DurableLedger::open(&dir.join("budget.wal"), 2.0, OverdrawPolicy::Strict)
            .unwrap_or_else(|e| fail(&format!("ledger: {e}")));
    eprintln!(
        "crash_child: recovered draws={} eps={} torn_tail={}",
        recovery.replayed, recovery.recovered_epsilon, recovery.torn_tail
    );
    gate.point("open");

    // -- stage genome: δ-privacy SNP sanitization ------------------------
    let genome_eps = 0.5;
    if !ledger.has_label("genome") {
        ledger
            .spend(genome_eps, "exponential", "genome", 1.0)
            .unwrap_or_else(|e| fail(&format!("genome spend: {e}")));
        gate.point("genome.wal");
    }
    let catalog = ppdp::datagen::gwas::synthetic_catalog(60, 5, 2, seed);
    let panel = ppdp::datagen::genomes::amd_like(&catalog, TraitId(0), 10, 10, seed);
    let evidence = panel.full_evidence(0);
    let targets = [Target::Trait(TraitId(0)), Target::Trait(TraitId(1))];
    let genome = GenomePublisher::new(&catalog, 0.9999)
        .exec(exec)
        .publish_resumable(&evidence, &targets, &store, "crash")
        .unwrap_or_else(|e| fail(&format!("genome publish: {e}")));
    gate.point("genome.work");
    if let Err(e) = truth_append(&truth, "genome", genome_eps) {
        fail(&format!("truth log: {e}"));
    }
    gate.point("genome.truth");

    // -- stage dp: synthetic microdata release ---------------------------
    let dp_eps = 1.0;
    if !ledger.has_label("dp") {
        ledger
            .spend(dp_eps, "laplace", "dp", 1.0)
            .unwrap_or_else(|e| fail(&format!("dp spend: {e}")));
        gate.point("dp.wal");
    }
    let table = ppdp::datagen::microdata::correlated_microdata(300, 4, 3, 0.8, seed);
    let dp = DpPublisher::new(dp_eps, 1)
        .exec(exec)
        .publish(&table, 200, seed)
        .unwrap_or_else(|e| fail(&format!("dp publish: {e}")));
    gate.point("dp.work");
    if let Err(e) = truth_append(&truth, "dp", dp_eps) {
        fail(&format!("truth log: {e}"));
    }
    gate.point("dp.truth");

    // -- artifact: the released results, atomically ----------------------
    let mut removed: Vec<usize> = genome.outcome.removed.iter().map(|s| s.0).collect();
    removed.sort_unstable();
    let history_bits: Vec<String> = genome
        .outcome
        .history
        .iter()
        .map(|h| h.to_bits().to_string())
        .collect();
    let mut synth_bytes = Vec::new();
    for row in dp.table.rows() {
        for &cell in row {
            synth_bytes.extend_from_slice(&cell.to_le_bytes());
        }
    }
    let draws: Vec<String> = ledger
        .draws()
        .iter()
        .map(|d| {
            format!(
                "{{\"label\":\"{}\",\"mechanism\":\"{}\",\"eps_bits\":{}}}",
                d.label,
                d.mechanism,
                d.epsilon.to_bits()
            )
        })
        .collect();
    let artifact = format!(
        "{{\n  \"exec\": \"{exec_name}\",\n  \"seed\": {seed},\n  \
         \"genome\": {{\"removed\": {removed:?}, \"history_bits\": [{}], \"satisfied\": {}}},\n  \
         \"dp\": {{\"rows\": {}, \"digest\": {}}},\n  \
         \"ledger\": {{\"spent_bits\": {}, \"draws\": [{}]}}\n}}\n",
        history_bits.join(", "),
        genome.outcome.satisfied,
        dp.table.n_rows(),
        fnv1a(&synth_bytes),
        ledger.spent().to_bits(),
        draws.join(", "),
    );
    write_atomic(&dir.join("artifact.json"), artifact.as_bytes())
        .unwrap_or_else(|e| fail(&format!("artifact: {e}")));
    gate.point("artifact");

    // The truth log is a lower bound on durably-accounted ε — verify the
    // recovery invariant from inside the completing process too.
    let truth_sum: f64 = std::fs::read_to_string(&truth)
        .unwrap_or_default()
        .lines()
        .filter_map(|l| l.split_whitespace().nth(1))
        .filter_map(|b| b.parse::<u64>().ok())
        .map(f64::from_bits)
        .sum();
    if ledger.spent() + 1e-9 < truth_sum {
        eprintln!(
            "crash_child: LEDGER UNDER-COUNT: spent={} < truth={truth_sum}",
            ledger.spent()
        );
        std::process::exit(5);
    }
    println!(
        "COMPLETE points={} spent_bits={} truth_bits={}",
        gate.counter,
        ledger.spent().to_bits(),
        truth_sum.to_bits()
    );
}
