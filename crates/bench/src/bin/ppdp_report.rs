//! `ppdp-report`: explain and diff instrumented ppdp runs.
//!
//! Usage:
//!   ppdp-report explain <run.json | trace.jsonl>
//!   ppdp-report diff [--ignore-wall] [--wall-ratio <x>] [--memory-ratio <x>] <baseline> <candidate>
//!   ppdp-report chrome <trace.jsonl> [--out <path>]
//!   ppdp-report flame <trace.jsonl>
//!   ppdp-report audit <audit.jsonl> [--epsilon <ε>] [--delta-slack <δ'>]
//!                     [--dot <path>] [--wal <ledger.wal>]
//!
//! * `explain` prints an annotated trajectory of one run: convergence
//!   curves per inference attempt, greedy picks with marginal gains,
//!   trial commits/rollbacks, every privacy-budget draw with its
//!   call-site, watchdog verdicts and degradations. It accepts either an
//!   aggregated `RunReport`/`BENCH_*.json` document or a causal event
//!   trace (`PPDP_TRACE=1` JSONL output).
//! * `diff` compares two such documents and flags wall-time,
//!   memory-footprint (RSS / allocation columns, e.g. from
//!   `BENCH_SCALE.json`), message-count and ε-spend regressions (see
//!   `ppdp_trace::diff` for the metric classes and thresholds).
//!   `--wall-ratio <x>` / `--memory-ratio <x>` tighten or loosen the
//!   wall-time and memory classes individually.
//!   Exit status: 0 clean, 1 regressions found.
//! * `chrome` converts a JSONL trace to Chrome `trace_event` JSON
//!   (load via `chrome://tracing` or Perfetto); `flame` emits
//!   collapsed-stack lines for flamegraph tooling.
//! * `audit` renders a privacy-loss audit log (`experiments
//!   --audit-out` JSONL): per-tenant remaining-budget timelines with
//!   sparklines, ε broken down by mechanism / label / call-site,
//!   composition bounds (basic vs the tighter advanced bound at slack
//!   `--delta-slack`, default 1e-6), the release lineage, and the
//!   unattributed-spend lint. `--epsilon <ε>` declares the total budget
//!   the timeline counts down from; `--dot <path>` exports the lineage
//!   DAG as Graphviz; `--wal <ledger.wal>` replays a durable ledger's
//!   write-ahead log and reconciles the audit log's ledgered draws
//!   against it **bitwise** (requires `--epsilon`).
//!   Exit status: 0 clean, 1 lint failure or reconciliation mismatch.
//!
//! Bad usage, unreadable files and parse errors exit with status 2.

use ppdp::audit::{reconcile, Accountant, AuditLog};
use ppdp::dp::{DurableLedger, OverdrawPolicy};
use ppdp::trace::json::JsonValue;
use ppdp::trace::{diff, Trace, TraceEvent, TrialPhase};

/// A parsed input file: either an aggregated report document or an
/// event trace.
enum Input {
    /// `RunReport` JSON, `BENCH_*.json`, or any structurally similar doc.
    Report(JsonValue),
    /// JSONL causal event trace.
    Trace(Trace),
}

fn fail(msg: &str) -> ! {
    eprintln!("ppdp-report: {msg}");
    std::process::exit(2);
}

fn usage() -> ! {
    fail(
        "usage: ppdp-report explain <file> | diff [--ignore-wall] [--wall-ratio <x>] \
         [--memory-ratio <x>] <baseline> <candidate> | chrome <trace.jsonl> [--out <path>] | \
         flame <trace.jsonl> | audit <audit.jsonl> [--epsilon <e>] [--delta-slack <d>] \
         [--dot <path>] [--wal <ledger.wal>]",
    );
}

fn read(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => fail(&format!("cannot read {path}: {e}")),
    }
}

/// Loads `path` as a report document or a trace, sniffing the format:
/// a file that parses as one JSON document is a report (unless it is a
/// single trace record); anything else must parse line-by-line as a
/// trace.
fn load(path: &str) -> Input {
    let text = read(path);
    if let Ok(doc) = JsonValue::parse(&text) {
        let single_record = doc.get("key").is_some() && doc.get("event").is_some();
        if !single_record {
            return Input::Report(doc);
        }
    }
    match Trace::from_jsonl(&text) {
        Ok(trace) => Input::Trace(trace),
        Err(e) => fail(&format!(
            "{path} is neither report JSON nor a JSONL trace: {e}"
        )),
    }
}

fn load_trace(path: &str) -> Trace {
    match load(path) {
        Input::Trace(trace) => trace,
        Input::Report(_) => fail(&format!(
            "{path} is a report document, expected a JSONL trace"
        )),
    }
}

// ---------------------------------------------------------------- explain

fn explain(path: &str) {
    match load(path) {
        Input::Report(doc) => explain_report(path, &doc),
        Input::Trace(trace) => explain_trace(path, &trace),
    }
}

fn explain_report(path: &str, doc: &JsonValue) {
    println!("# {path}");
    if let Some(spans) = doc.get("spans").and_then(JsonValue::as_object) {
        println!("\n## spans");
        for (span_path, stats) in spans {
            let count = num_member(stats, "count");
            let total = num_member(stats, "total_nanos");
            println!(
                "  {span_path}: {count:.0} run(s), {:.3} ms total",
                total / 1e6
            );
        }
    }
    if let Some(counters) = doc.get("counters").and_then(JsonValue::as_object) {
        println!("\n## counters");
        for (name, v) in counters {
            println!("  {name} = {:.0}", v.as_f64().unwrap_or(0.0));
        }
    }
    if let Some(histograms) = doc.get("histograms").and_then(JsonValue::as_object) {
        println!("\n## value distributions");
        for (name, h) in histograms {
            let count = num_member(h, "count");
            let sum = num_member(h, "sum");
            let mean = if count > 0.0 { sum / count } else { 0.0 };
            println!(
                "  {name}: n={count:.0} min={} mean={} max={}",
                sig(num_member(h, "min")),
                sig(mean),
                sig(num_member(h, "max")),
            );
        }
    }
    if let Some(draws) = doc.get("budget").and_then(JsonValue::as_array) {
        let eps: f64 = draws.iter().map(|d| num_member(d, "epsilon")).sum();
        let delta: f64 = draws.iter().map(|d| num_member(d, "delta")).sum();
        println!(
            "\n## privacy budget: {} draw(s), ε={} δ={}",
            draws.len(),
            sig(eps),
            sig(delta)
        );
        for d in draws {
            let mech = d
                .get("mechanism")
                .and_then(JsonValue::as_str)
                .unwrap_or("?");
            let label = d.get("label").and_then(JsonValue::as_str).unwrap_or("?");
            println!(
                "  {mech} releases {label}: ε={} (sensitivity {})",
                sig(num_member(d, "epsilon")),
                sig(num_member(d, "sensitivity")),
            );
        }
    }
    // Unstructured documents (e.g. BENCH_*.json): fall back to flat leaves.
    if doc.get("spans").is_none() && doc.get("counters").is_none() {
        println!("\n## metrics");
        if let Some(members) = doc.as_object() {
            for (k, v) in members {
                match v.as_f64() {
                    Some(n) => println!("  {k} = {}", sig(n)),
                    None => println!("  {k} = {}", v.to_json()),
                }
            }
        }
    }
}

fn explain_trace(path: &str, trace: &Trace) {
    println!("# {path}: {} event(s)", trace.records.len());
    if trace.dropped > 0 {
        println!(
            "  warning: {} event(s) dropped at capture (raise capacity)",
            trace.dropped
        );
    }

    // Belief propagation, grouped into attempts at each round-counter reset.
    let mut attempts: Vec<Vec<(u64, f64, u64)>> = Vec::new();
    let mut refreshes = (0u64, 0u64, 0u64, 0u64); // passes, frontier, updates, converged
    let mut ica: Vec<(u64, f64, u64)> = Vec::new();
    let mut gibbs = (0u64, 0u64, 0u64); // chains(max+1), sweeps, flips
    let mut picks: Vec<(String, u64, f64, f64)> = Vec::new();
    let mut trials = (0u64, 0u64, 0u64, 0u64); // begins, commits, rollbacks, restored
    let mut draws: Vec<(String, String, f64, String)> = Vec::new();
    let mut watchdogs: Vec<String> = Vec::new();
    let mut degradations: Vec<String> = Vec::new();
    for r in &trace.records {
        match &r.event {
            TraceEvent::BpRound {
                round,
                residual,
                messages,
                ..
            } => {
                if *round == 1 || attempts.is_empty() {
                    attempts.push(Vec::new());
                }
                if let Some(a) = attempts.last_mut() {
                    a.push((*round, *residual, *messages));
                }
            }
            TraceEvent::BpRefresh {
                frontier,
                updates,
                converged,
                ..
            } => {
                refreshes.0 += 1;
                refreshes.1 += frontier;
                refreshes.2 += updates;
                refreshes.3 += u64::from(*converged);
            }
            TraceEvent::IcaSweep {
                sweep,
                delta,
                flips,
            } => ica.push((*sweep, *delta, *flips)),
            TraceEvent::GibbsSweep { chain, flips, .. } => {
                gibbs.0 = gibbs.0.max(chain + 1);
                gibbs.1 += 1;
                gibbs.2 += flips;
            }
            TraceEvent::GreedyPick {
                solver,
                item,
                value,
                gain,
            } => {
                picks.push((solver.clone(), *item, *value, *gain));
            }
            TraceEvent::Trial { phase, entries } => match phase {
                TrialPhase::Begin => trials.0 += 1,
                TrialPhase::Commit => trials.1 += 1,
                TrialPhase::Rollback => {
                    trials.2 += 1;
                    trials.3 += entries;
                }
            },
            TraceEvent::BudgetDraw {
                mechanism,
                label,
                epsilon,
                call_site,
                ..
            } => {
                draws.push((
                    mechanism.clone(),
                    label.clone(),
                    *epsilon,
                    call_site.clone(),
                ));
            }
            TraceEvent::Watchdog {
                subsystem,
                verdict,
                iteration,
                ..
            } => {
                watchdogs.push(format!(
                    "{subsystem} flagged {verdict} at iteration {iteration}"
                ));
            }
            TraceEvent::Degradation {
                subsystem, reason, ..
            } => {
                degradations.push(format!("{subsystem}: {reason}"));
            }
            _ => {}
        }
    }

    if !attempts.is_empty() {
        let total_rounds: usize = attempts.iter().map(Vec::len).sum();
        println!(
            "\n## belief propagation: {} attempt(s), {total_rounds} sweep(s)",
            attempts.len()
        );
        for (i, a) in attempts.iter().enumerate() {
            let Some((_, last_res, _)) = a.last() else {
                continue;
            };
            let messages: u64 = a.iter().map(|(.., m)| m).sum();
            print!(
                "  attempt {i}: {} sweep(s), final residual {}, {messages} message(s)",
                a.len(),
                sig(*last_res)
            );
            println!("{}", residual_curve(a));
        }
    }
    if refreshes.0 > 0 {
        println!(
            "\n## incremental BP: {} refresh(es), frontier {} factor(s) total, {} update(s), {} converged",
            refreshes.0, refreshes.1, refreshes.2, refreshes.3
        );
    }
    if !ica.is_empty() {
        let flips: u64 = ica.iter().map(|(.., f)| f).sum();
        let Some((sweeps, final_delta, _)) = ica.last() else {
            unreachable!("non-empty")
        };
        println!(
            "\n## ICA: {sweeps} sweep(s), final delta {}, {flips} label flip(s)",
            sig(*final_delta)
        );
    }
    if gibbs.1 > 0 {
        println!(
            "\n## Gibbs: {} chain(s), {} sweep(s), {} label flip(s)",
            gibbs.0, gibbs.1, gibbs.2
        );
    }
    if !picks.is_empty() {
        println!("\n## greedy picks");
        for (solver, item, value, gain) in &picks {
            println!(
                "  {solver} picked item {item}: objective {} (gain {})",
                sig(*value),
                sig(*gain)
            );
        }
    }
    if trials.0 > 0 {
        println!(
            "\n## trials: {} opened, {} committed, {} rolled back ({} journal entries restored)",
            trials.0, trials.1, trials.2, trials.3
        );
    }
    if !draws.is_empty() {
        let eps: f64 = draws.iter().map(|(_, _, e, _)| e).sum();
        println!(
            "\n## privacy budget: {} draw(s), ε={}",
            draws.len(),
            sig(eps)
        );
        for (mech, label, eps, site) in &draws {
            println!("  {mech} releases {label}: ε={} at {site}", sig(*eps));
        }
    }
    if !watchdogs.is_empty() {
        println!("\n## watchdog verdicts");
        for w in &watchdogs {
            println!("  {w}");
        }
    }
    if !degradations.is_empty() {
        println!("\n## degradations");
        for d in &degradations {
            println!("  {d}");
        }
    }
}

/// A coarse log-scale sparkline of an attempt's residual trajectory,
/// sampled down to at most 16 points.
fn residual_curve(rounds: &[(u64, f64, u64)]) -> String {
    const GLYPHS: [char; 5] = ['▁', '▂', '▄', '▆', '█'];
    if rounds.len() < 2 {
        return String::new();
    }
    let stride = rounds.len().div_ceil(16);
    let sampled: Vec<f64> = rounds.iter().step_by(stride).map(|(_, r, _)| *r).collect();
    let logs: Vec<f64> = sampled.iter().map(|r| r.max(1e-300).log10()).collect();
    let (lo, hi) = logs
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let span = (hi - lo).max(1e-12);
    let curve: String = logs
        .iter()
        .map(|&v| GLYPHS[(((v - lo) / span) * 4.0).round().clamp(0.0, 4.0) as usize])
        .collect();
    format!("  {curve}")
}

// ------------------------------------------------------------------- diff

/// Reduces a trace to a comparable summary document so `diff` can
/// compare two traces (or a trace against itself across runs) with the
/// same metric classes used for reports.
fn trace_summary(trace: &Trace) -> JsonValue {
    let mut kinds: Vec<(String, f64)> = Vec::new();
    let mut bump = |name: &str, by: f64| match kinds.iter_mut().find(|(k, _)| k == name) {
        Some((_, v)) => *v += by,
        None => kinds.push((name.to_owned(), by)),
    };
    let mut wall = 0.0f64;
    let mut epsilon = 0.0f64;
    let mut delta = 0.0f64;
    let mut messages = 0.0f64;
    for r in &trace.records {
        bump(r.event.kind(), 1.0);
        match &r.event {
            TraceEvent::SpanExit { path, dur_nanos } if !path.contains('/') => {
                wall += *dur_nanos as f64;
            }
            TraceEvent::BudgetDraw {
                epsilon: e,
                delta: d,
                ..
            } => {
                epsilon += e;
                delta += d;
            }
            TraceEvent::BpRound { messages: m, .. } | TraceEvent::BpRefresh { messages: m, .. } => {
                messages += *m as f64;
            }
            _ => {}
        }
    }
    kinds.sort_by(|a, b| a.0.cmp(&b.0));
    JsonValue::Object(vec![
        (
            "events".into(),
            JsonValue::Object(
                kinds
                    .into_iter()
                    .map(|(k, v)| (k, JsonValue::Num(v)))
                    .collect(),
            ),
        ),
        ("bp_messages".into(), JsonValue::Num(messages)),
        ("epsilon_total".into(), JsonValue::Num(epsilon)),
        ("delta_total".into(), JsonValue::Num(delta)),
        ("span_wall_nanos".into(), JsonValue::Num(wall)),
    ])
}

fn as_diffable(input: Input) -> JsonValue {
    match input {
        Input::Report(doc) => doc,
        Input::Trace(trace) => trace_summary(&trace),
    }
}

fn run_diff(
    baseline: &str,
    candidate: &str,
    ignore_wall: bool,
    wall_ratio: Option<f64>,
    memory_ratio: Option<f64>,
) -> ! {
    let defaults = diff::DiffThresholds::default();
    let thresholds = diff::DiffThresholds {
        ignore_wall,
        wall_ratio: wall_ratio.unwrap_or(defaults.wall_ratio),
        memory_ratio: memory_ratio.unwrap_or(defaults.memory_ratio),
        ..defaults
    };
    let base = as_diffable(load(baseline));
    let cand = as_diffable(load(candidate));
    let report = diff::diff_values(&base, &cand, &thresholds);
    print!("{baseline} -> {candidate}\n{}", report.to_text());
    std::process::exit(i32::from(!report.is_clean()));
}

// ------------------------------------------------------------------ audit

struct AuditOpts {
    /// Declared total ε budget: timelines count down from it, and WAL
    /// replay opens the recovered ledger against it.
    epsilon: Option<f64>,
    /// δ' slack for the advanced composition bound.
    delta_slack: f64,
    /// Write the lineage DAG as Graphviz DOT to this path.
    dot: Option<String>,
    /// Reconcile against this durable ledger WAL (needs `epsilon`).
    wal: Option<String>,
}

fn load_audit(path: &str) -> AuditLog {
    match AuditLog::from_jsonl(&read(path)) {
        Ok(log) => log,
        Err(e) => fail(&format!("{path} is not an audit JSONL log: {e}")),
    }
}

/// A linear-scale sparkline of `values`, sampled down to at most 32
/// points. Unlike [`residual_curve`] (log-scale, built for residuals
/// spanning orders of magnitude) budget levels live on one scale.
fn spark(values: &[f64]) -> String {
    const GLYPHS: [char; 5] = ['▁', '▂', '▄', '▆', '█'];
    if values.len() < 2 {
        return String::new();
    }
    let stride = values.len().div_ceil(32);
    let sampled: Vec<f64> = values.iter().step_by(stride).copied().collect();
    let (lo, hi) = sampled
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let span = (hi - lo).max(1e-12);
    sampled
        .iter()
        .map(|&v| GLYPHS[(((v - lo) / span) * 4.0).round().clamp(0.0, 4.0) as usize])
        .collect()
}

fn print_breakdown(title: &str, groups: &std::collections::BTreeMap<String, f64>) {
    if groups.is_empty() {
        return;
    }
    println!("  ε by {title}:");
    let mut rows: Vec<(&String, &f64)> = groups.iter().collect();
    rows.sort_by(|a, b| b.1.partial_cmp(a.1).unwrap_or(std::cmp::Ordering::Equal));
    for (key, eps) in rows {
        println!("    {} {key}", sig(*eps));
    }
}

fn print_tenant(tenant: &str, acct: &Accountant, log: &AuditLog, opts: &AuditOpts) {
    println!("\n## tenant {tenant}: {} draw(s)", acct.len());
    let basic = acct.basic();
    let tight = acct.tight(opts.delta_slack);
    println!(
        "  composed: ε={} δ={} (basic); ε={} δ={} (tight at δ'={})",
        sig(basic.epsilon),
        sig(basic.delta),
        sig(tight.epsilon),
        sig(tight.delta),
        sig(opts.delta_slack),
    );

    // Remaining-budget timeline over this tenant's ledgered draws, in
    // spend order: the level after each charge.
    let ledgered: Vec<f64> = log
        .draws
        .iter()
        .filter(|d| d.tenant == tenant && d.ledgered)
        .map(|d| d.epsilon)
        .collect();
    if !ledgered.is_empty() {
        let mut level = opts.epsilon.unwrap_or(0.0);
        let sign = if opts.epsilon.is_some() { -1.0 } else { 1.0 };
        let timeline: Vec<f64> = ledgered
            .iter()
            .map(|eps| {
                level += sign * eps;
                level
            })
            .collect();
        let (name, last) = match opts.epsilon {
            Some(_) => ("remaining", timeline.last().copied().unwrap_or(0.0)),
            None => ("spent", timeline.last().copied().unwrap_or(0.0)),
        };
        println!(
            "  {name} over {} ledgered draw(s): {}  {}",
            ledgered.len(),
            sig(last),
            spark(&timeline)
        );
    }

    print_breakdown("mechanism", &acct.by_mechanism());
    print_breakdown("label", &acct.by_label());
    print_breakdown("call-site", &acct.by_call_site());
}

/// Replays the WAL at `path` and reconciles `log`'s ledgered draws for
/// `tenant` against the recovered ledger, bitwise. Returns whether the
/// reconciliation was exact.
fn reconcile_wal(log: &AuditLog, tenant: &str, path: &str, epsilon: f64) -> bool {
    let (ledger, recovery) = match DurableLedger::open(
        std::path::Path::new(path),
        epsilon,
        OverdrawPolicy::Permissive,
    ) {
        Ok(pair) => pair,
        Err(e) => fail(&format!("cannot replay WAL {path}: {e}")),
    };
    println!(
        "\n## WAL reconciliation: {path} ({} draw(s) replayed, ε={} recovered{})",
        recovery.replayed,
        sig(recovery.recovered_epsilon),
        if recovery.torn_tail {
            ", torn tail discarded"
        } else {
            ""
        }
    );
    let mut acct = Accountant::with_budget(tenant, epsilon);
    for d in log
        .draws
        .iter()
        .filter(|d| d.tenant == tenant && d.ledgered)
    {
        acct.record(d);
    }
    let rec = reconcile(&acct, ledger.ledger().draws(), ledger.spent());
    if rec.exact() {
        println!(
            "  exact: {} draw(s) matched, audited ε bits == ledger ε bits ({:016x})",
            rec.matched, rec.accountant_bits
        );
        true
    } else {
        println!(
            "  MISMATCH: {} matched, audited bits {:016x} vs ledger bits {:016x}",
            rec.matched, rec.accountant_bits, rec.ledger_bits
        );
        for m in &rec.mismatches {
            println!("    {m}");
        }
        false
    }
}

fn run_audit(path: &str, opts: &AuditOpts) -> ! {
    let log = load_audit(path);
    let mut clean = true;

    let ledgered = log.draws.iter().filter(|d| d.ledgered).count();
    println!(
        "# {path}: {} release(s), {} draw(s) ({ledgered} ledgered, {} off-ledger)",
        log.releases.len(),
        log.draws.len(),
        log.draws.len() - ledgered,
    );

    if !log.releases.is_empty() {
        println!("\n## release lineage");
        for r in &log.releases {
            let parents = if r.parents.is_empty() {
                String::new()
            } else {
                format!(
                    " <- {}",
                    r.parents
                        .iter()
                        .map(|p| format!("{p:016x}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            println!(
                "  {:016x} {} via {} [{}] tenant={} ε={} δ={} {} draw(s){parents}",
                r.id,
                r.pipeline,
                r.mechanism,
                r.exec_fingerprint,
                r.tenant,
                sig(r.epsilon()),
                sig(r.delta()),
                r.draws.len(),
            );
        }
    }

    for (tenant, acct) in &log.accountants() {
        print_tenant(tenant, acct, &log, opts);
    }

    let lint = log.lint();
    println!("\n## unattributed-spend lint\n  {}", lint.describe());
    clean &= lint.clean();

    if let Some(out) = &opts.dot {
        if let Err(e) = std::fs::write(out, log.to_dot()) {
            fail(&format!("cannot write {out}: {e}"));
        }
        eprintln!("ppdp-report: lineage DOT → {out}");
    }

    if let Some(wal) = &opts.wal {
        let Some(epsilon) = opts.epsilon else {
            fail("--wal needs --epsilon <total budget> to replay the ledger against");
        };
        let tenant = log
            .draws
            .iter()
            .find(|d| d.ledgered)
            .map_or_else(|| "default".to_owned(), |d| d.tenant.clone());
        clean &= reconcile_wal(&log, &tenant, wal, epsilon);
    }

    std::process::exit(i32::from(!clean));
}

// ------------------------------------------------------------------- misc

fn num_member(v: &JsonValue, key: &str) -> f64 {
    v.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0)
}

/// Compact numeric rendering: integral values print without a fraction,
/// everything else with 4 significant digits.
fn sig(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.4e}")
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    match strs.as_slice() {
        ["explain", path] => explain(path),
        ["diff", rest @ ..] => {
            let mut ignore_wall = false;
            let mut wall_ratio: Option<f64> = None;
            let mut memory_ratio: Option<f64> = None;
            let mut files: Vec<&str> = Vec::new();
            let mut iter = rest.iter();
            while let Some(arg) = iter.next() {
                match *arg {
                    "--ignore-wall" => ignore_wall = true,
                    "--wall-ratio" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                        Some(x) if x >= 1.0 => wall_ratio = Some(x),
                        _ => fail("--wall-ratio needs a ratio >= 1.0"),
                    },
                    "--memory-ratio" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                        Some(x) if x >= 1.0 => memory_ratio = Some(x),
                        _ => fail("--memory-ratio needs a ratio >= 1.0"),
                    },
                    flag if flag.starts_with('-') => fail(&format!("unknown diff flag {flag}")),
                    path => files.push(path),
                }
            }
            match files.as_slice() {
                [baseline, candidate] => {
                    run_diff(baseline, candidate, ignore_wall, wall_ratio, memory_ratio)
                }
                _ => usage(),
            }
        }
        ["chrome", path, rest @ ..] => {
            let json = load_trace(path).to_chrome_json();
            match rest {
                [] => print!("{json}"),
                ["--out", out] => {
                    if let Err(e) = std::fs::write(out, &json) {
                        fail(&format!("cannot write {out}: {e}"));
                    }
                    eprintln!("ppdp-report: Chrome trace → {out}");
                }
                _ => usage(),
            }
        }
        ["flame", path] => print!("{}", load_trace(path).flame()),
        ["audit", rest @ ..] => {
            let mut opts = AuditOpts {
                epsilon: None,
                delta_slack: 1e-6,
                dot: None,
                wal: None,
            };
            let mut files: Vec<&str> = Vec::new();
            let mut iter = rest.iter();
            while let Some(arg) = iter.next() {
                match *arg {
                    "--epsilon" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                        Some(x) if x > 0.0 => opts.epsilon = Some(x),
                        _ => fail("--epsilon needs a total budget > 0"),
                    },
                    "--delta-slack" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                        Some(x) if x > 0.0 && x < 1.0 => opts.delta_slack = x,
                        _ => fail("--delta-slack needs a slack in (0, 1)"),
                    },
                    "--dot" => match iter.next() {
                        Some(out) => opts.dot = Some((*out).to_owned()),
                        None => fail("--dot needs an output path"),
                    },
                    "--wal" => match iter.next() {
                        Some(wal) => opts.wal = Some((*wal).to_owned()),
                        None => fail("--wal needs a ledger WAL path"),
                    },
                    flag if flag.starts_with('-') => fail(&format!("unknown audit flag {flag}")),
                    path => files.push(path),
                }
            }
            match files.as_slice() {
                [path] => run_audit(path, &opts),
                _ => usage(),
            }
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spark_is_monotone_over_a_countdown() {
        let levels: Vec<f64> = (0..40).map(|i| 5.0 - 0.1 * i as f64).collect();
        let curve = spark(&levels);
        assert_eq!(curve.chars().count(), 20, "40 points stride down to 20");
        assert!(curve.starts_with('█') && curve.ends_with('▁'));
    }

    #[test]
    fn wal_reconciliation_is_bitwise_through_the_report_path() {
        let dir = std::env::temp_dir().join(format!("ppdp-report-audit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join("ledger.wal");

        let sink = ppdp::audit::AuditSink::new();
        let log = {
            let _scope = sink.enter();
            let (mut ledger, _) = DurableLedger::open(&wal, 1.0, OverdrawPolicy::Strict).unwrap();
            for i in 0..6 {
                ledger
                    .spend(0.1, "laplace", &format!("cpd[{i}]"), 1.0)
                    .unwrap();
            }
            sink.take()
        };
        assert!(reconcile_wal(&log, "default", wal.to_str().unwrap(), 1.0));

        // A tampered audit log (one draw dropped) must not reconcile.
        let mut tampered = log.clone();
        tampered.draws.pop();
        assert!(!reconcile_wal(
            &tampered,
            "default",
            wal.to_str().unwrap(),
            1.0
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
