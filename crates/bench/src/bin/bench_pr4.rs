//! PR gate: warm-started incremental BP vs strict full recomputation on
//! the GPUT greedy-sanitization workload.
//!
//! Runs the same greedy search twice through the [`IncrementalBp`]-backed
//! delta oracle — once warm-started (messages persist across oracle calls,
//! only the dirtied region refreshes) and once in strict mode (every probe
//! resets and recomputes all messages) — and asserts the PR's performance
//! contract:
//!
//! * identical removal sequences (warm-starting changes cost, not answers);
//! * privacy trajectories agreeing to 1e-9;
//! * ≥ 5× wall-clock speedup for the warm-started engine;
//! * warm-started message updates ≤ 25% of the strict engine's.
//!
//! Writes the measurements to `BENCH_PR4.json` at the workspace root and
//! exits non-zero if any gate fails, so `ci.sh` can run it directly.
//!
//! Set `PPDP_TRACE=1` to capture a causal event trace of the whole
//! invocation (`PPDP_TRACE_OUT=<path>` selects the JSONL destination,
//! default `bench_pr4_trace.jsonl`); `ci.sh` reruns the bench in this
//! mode to bound the tracing wall-clock overhead. `PPDP_METRICS=1`
//! likewise tees the run into the live metric registry (see README.md
//! for the `PPDP_METRICS_*` surface); `ci.sh` bounds that overhead the
//! same way.
//!
//! [`IncrementalBp`]: ppdp::genomic::IncrementalBp

use ppdp::exec::ExecPolicy;
use ppdp::genomic::sanitize::{SanitizeOutcome, Target};
use ppdp::genomic::{
    greedy_sanitize_full_recompute, greedy_sanitize_incremental, BpConfig, GwasCatalog, TraitId,
};
use ppdp::telemetry::{Recorder, RunReport};
use std::time::Instant;

struct Measured {
    out: SanitizeOutcome,
    wall_ns: u128,
    report: RunReport,
}

fn run(strict: bool, catalog: &GwasCatalog, evidence: &ppdp::genomic::Evidence) -> Measured {
    let targets: Vec<Target> = (0..catalog.n_traits())
        .map(|i| Target::Trait(TraitId(i)))
        .collect();
    let solver = if strict {
        greedy_sanitize_full_recompute
    } else {
        greedy_sanitize_incremental
    };
    // Best of 3 runs: the workload is deterministic, so the minimum is the
    // least-noisy wall-clock estimate on a shared machine.
    let mut best: Option<Measured> = None;
    for _ in 0..3 {
        let rec = Recorder::new();
        let start = Instant::now();
        let out = {
            let _scope = rec.enter();
            solver(
                ExecPolicy::Sequential,
                catalog,
                evidence,
                &targets,
                0.95,
                6,
                BpConfig::default(),
            )
            .unwrap_or_else(|e| {
                eprintln!("bench_pr4: solver failed: {e}");
                std::process::exit(1);
            })
        };
        let wall_ns = start.elapsed().as_nanos();
        let m = Measured {
            out,
            wall_ns,
            report: rec.take(),
        };
        if best.as_ref().map_or(true, |b| m.wall_ns < b.wall_ns) {
            best = Some(m);
        }
    }
    best.unwrap_or_else(|| unreachable!("three runs always produce a best"))
}

/// SNP pool size; the seven Table-5.3 traits each claim [`ASSOC_PER_TRAIT`]
/// loci, so the factor graph is large enough for inference to dominate the
/// greedy search's wall time.
const N_SNPS: usize = 400;
/// Associations per trait in the synthetic catalog.
const ASSOC_PER_TRAIT: usize = 50;

fn main() {
    let catalog = ppdp::datagen::gwas::synthetic_catalog(N_SNPS, ASSOC_PER_TRAIT, 2, 5);
    let panel = ppdp::datagen::genomes::amd_like(&catalog, TraitId(0), 4, 4, 5);
    let evidence = panel.full_evidence(0);

    let tracing = std::env::var("PPDP_TRACE").is_ok_and(|v| v == "1");
    let collector = tracing.then(ppdp::trace::Collector::new);
    if let Some(col) = &collector {
        ppdp::trace::install_global(col.clone());
    }
    // `PPDP_METRICS*` tees the whole bench into the live registry;
    // `ci.sh` reruns in this mode to bound the metrics overhead the
    // same way it bounds tracing overhead.
    let live = ppdp::metrics::LiveMetrics::from_env();

    let strict = run(true, &catalog, &evidence);
    let warm = run(false, &catalog, &evidence);

    live.finish();
    if let Some(col) = &collector {
        ppdp::trace::uninstall_global();
        let trace = col.take();
        let out =
            std::env::var("PPDP_TRACE_OUT").unwrap_or_else(|_| "bench_pr4_trace.jsonl".into());
        if let Err(e) = std::fs::write(&out, trace.to_jsonl()) {
            eprintln!("bench_pr4: cannot write {out}: {e}");
            std::process::exit(1);
        }
        eprintln!("bench_pr4: {} trace event(s) → {out}", trace.records.len());
    }

    let strict_msgs = strict.report.counter("bp.messages_updated");
    let warm_msgs = warm.report.counter("bp.messages_updated");
    let speedup = strict.wall_ns as f64 / warm.wall_ns.max(1) as f64;
    let msg_ratio = warm_msgs as f64 / strict_msgs.max(1) as f64;
    let picks_identical = warm.out.removed == strict.out.removed;
    let max_history_diff = warm
        .out
        .history
        .iter()
        .zip(&strict.out.history)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);

    let mode_json = |label: &str, m: &Measured| {
        format!(
            "  \"{label}\": {{\"wall_ns\": {}, \"messages_updated\": {}, \
             \"refreshes\": {}, \"evaluations\": {}, \"oracle_calls_saved\": {}}}",
            m.wall_ns,
            m.report.counter("bp.messages_updated"),
            m.report.counter("bp.incremental.refreshes"),
            m.report.counter("greedy.cardinality.evaluations"),
            m.report.counter("sanitize.greedy.oracle_calls_saved"),
        )
    };
    let json = format!(
        "{{\n  \"fixture\": {{\"snps\": {N_SNPS}, \"associations_per_trait\": {ASSOC_PER_TRAIT}, \
         \"delta\": 0.95, \"max_removals\": 6}},\n{},\n{},\n  \"speedup\": {speedup:?},\n  \
         \"messages_ratio\": {msg_ratio:?},\n  \"picks_identical\": {picks_identical},\n  \
         \"max_history_diff\": {max_history_diff:?},\n  \"removed\": {:?}\n}}\n",
        mode_json("full_recompute", &strict),
        mode_json("incremental", &warm),
        warm.out.removed.iter().map(|s| s.0).collect::<Vec<_>>(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR4.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("bench_pr4: cannot write {path}: {e}");
        std::process::exit(1);
    }
    print!("{json}");

    let mut failed = false;
    if !picks_identical {
        eprintln!(
            "GATE FAIL: removal sequences differ (warm {:?} vs strict {:?})",
            warm.out.removed, strict.out.removed
        );
        failed = true;
    }
    if max_history_diff > 1e-9 {
        eprintln!("GATE FAIL: privacy trajectories diverge by {max_history_diff} (> 1e-9)");
        failed = true;
    }
    if speedup < 5.0 {
        eprintln!("GATE FAIL: incremental speedup {speedup:.2}x < 5x");
        failed = true;
    }
    if msg_ratio > 0.25 {
        eprintln!(
            "GATE FAIL: incremental message updates {warm_msgs} are {:.1}% of full recompute's \
             {strict_msgs} (> 25%)",
            100.0 * msg_ratio
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "bench_pr4 OK: {speedup:.1}x faster, {:.1}% of the messages, identical picks",
        100.0 * msg_ratio
    );
}
