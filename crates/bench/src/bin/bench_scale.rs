//! Paper-scale sweep harness: genomes to 10⁵ SNPs and social graphs
//! toward 10⁶ nodes, with live metrics and full resource accounting.
//!
//! ROADMAP items 1-2 need runs far beyond the unit-test fixtures; this
//! binary is both the proof that the workspace survives those sizes and
//! the baseline every later PR must beat. For each size in the selected
//! profile it
//!
//! 1. generates the synthetic dataset (GWAS catalog + genotype panel, or
//!    a Table-3.3-shaped social graph scaled up),
//! 2. runs the paper's inference kernel on it (sum-product BP for
//!    genomes; Gibbs-sampling collective classification for graphs),
//! 3. records wall time, RSS / peak RSS (`/proc/self/status`), and exact
//!    allocation deltas from the instrumented global allocator,
//!
//! writing the trajectory to `BENCH_SCALE.json` at the workspace root
//! (`ppdp-report diff` understands the file; see the `memory` metric
//! class). The whole run is observable live: a `ppdp-metrics` registry
//! with heartbeat and an ephemeral HTTP listener is installed up front,
//! and the harness *scrapes itself* mid-run, validates the OpenMetrics
//! payload, and records whether the BP round-progress gauge and per-span
//! allocation series were present — the acceptance probes for the live
//! observability layer.
//!
//! Usage: `bench_scale [--profile ci|paper|gate] [--out <path>]
//! [--max-peak-rss-bytes <n>]`. The `ci` profile keeps CI wall time low;
//! `paper` sweeps to the full sizes (10⁵ SNPs, 10⁶ graph nodes) and is
//! what generates the checked-in baseline; `gate` runs only the extreme
//! sizes under an optional peak-RSS budget (the ci.sh scale gate).
//! Genome sizes run under both message domains (`genome` rows are the
//! linear kernel, `genome_log` rows the log-sum-exp kernel). The harness
//! fails if a log row converges slower than its linear sibling, fails to
//! converge, or reports any `bp.renormalized` underflow repairs — at
//! paper scale the catalog's degree-2000 hub trait underflows the linear
//! kernel (visible in the `renormalized` column), and the log kernel is
//! the row that must stay exact. `PPDP_THREADS` selects the execution
//! policy as usual.

use ppdp::classify::{gibbs_run, GibbsConfig, LabeledGraph};
use ppdp::datagen::social::{generate, SocialConfig};
use ppdp::exec::ExecPolicy;
use ppdp::genomic::{BpConfig, Evidence, FactorGraph, Genotype, MessageDomain, SnpId, TraitId};
use ppdp::metrics::alloc::CountingAlloc;
use ppdp::metrics::{http, LiveMetrics};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// Every allocation in this binary flows through the counting allocator,
/// so the per-row allocation columns are exact (not sampled).
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// One measured sweep point.
struct Row {
    kind: &'static str,
    size: usize,
    /// Factor count (genomes) or edge count (graphs).
    structure: usize,
    gen_wall_ns: u128,
    wall_ns: u128,
    /// BP sweeps or Gibbs sweeps actually performed.
    work_units: usize,
    converged: bool,
    /// `bp.renormalized` underflow repairs during the run. The linear
    /// kernel pays these at hub-trait sizes; the log kernel must report
    /// zero. Graph rows (Gibbs, no message products) are always zero.
    renormalized: u64,
    rss_bytes: u64,
    peak_rss_bytes: u64,
    alloc_bytes: u64,
    alloc_count: u64,
    peak_live_bytes: u64,
}

fn resource() -> (u64, u64) {
    ppdp::metrics::resource::sample()
        .map(|s| (s.rss_bytes, s.peak_rss_bytes))
        .unwrap_or((0, 0))
}

fn alloc_totals() -> (u64, u64, u64) {
    ppdp::metrics::alloc::totals()
        .map(|t| (t.bytes, t.count, t.peak_live_bytes))
        .unwrap_or((0, 0, 0))
}

fn genome_row(n_snps: usize, exec: ExecPolicy, domain: MessageDomain) -> Row {
    let _span = ppdp::telemetry::span("scale.genome");
    let (bytes0, count0, _) = alloc_totals();
    let gen_start = Instant::now();
    // The SNP pool scales; catalogued associations per trait are capped
    // at 2 000, mirroring real panels where most of a 10⁵-locus array
    // carries no association for any given trait. The cap also keeps the
    // trait-side message product (quadratic in trait degree) from
    // dominating the sweep: the scaled dimensions are the per-SNP
    // marginal extraction and the O(n) graph state.
    let assoc_per_trait = (n_snps / 10).min(2_000);
    let catalog = ppdp::datagen::gwas::synthetic_catalog(n_snps, assoc_per_trait, 2, 7);
    let evidence = Evidence::none()
        .with_snp(SnpId(0), Genotype::HomRisk)
        .with_snp(SnpId(5), Genotype::Het)
        .with_trait(TraitId(2), true);
    let graph = match FactorGraph::build(&catalog, &evidence) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("bench_scale: factor graph build failed at {n_snps} SNPs: {e}");
            std::process::exit(1);
        }
    };
    let gen_wall_ns = gen_start.elapsed().as_nanos();
    let n_factors = 7 * assoc_per_trait;

    let recorder = ppdp::telemetry::Recorder::new();
    let scope = recorder.enter();
    let start = Instant::now();
    let bp = BpConfig {
        exec,
        domain,
        ..Default::default()
    }
    .run(&graph);
    let wall_ns = start.elapsed().as_nanos();
    drop(scope);
    let renormalized = recorder.take().counter("bp.renormalized");
    let (bytes1, count1, peak_live) = alloc_totals();
    let (rss, peak_rss) = resource();
    Row {
        kind: match domain {
            MessageDomain::Linear => "genome",
            MessageDomain::Log => "genome_log",
        },
        size: n_snps,
        structure: n_factors,
        gen_wall_ns,
        wall_ns,
        work_units: bp.iterations,
        converged: bp.converged,
        renormalized,
        rss_bytes: rss,
        peak_rss_bytes: peak_rss,
        alloc_bytes: bytes1 - bytes0,
        alloc_count: count1 - count0,
        peak_live_bytes: peak_live,
    }
}

fn graph_row(nodes: usize, exec: ExecPolicy) -> Row {
    let _span = ppdp::telemetry::span("scale.graph");
    let (bytes0, count0, _) = alloc_totals();
    let gen_start = Instant::now();
    // Caltech-shaped attributes scaled up; edges ≈ 8·|V| keeps the mean
    // degree in the band of the paper's datasets at any size.
    let edges = 8 * nodes;
    let data = generate(&SocialConfig {
        name: "scaled",
        nodes,
        edges,
        n_attrs: 7,
        label_arity: 4,
        utility_arity: 2,
        other_arity: 8,
        majority_frac: 0.72,
        components: 4,
        attr_corr: 0.52,
        homophily: 0.3,
        missing_frac: 0.1,
        seed: 42,
    });
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let known: Vec<bool> = (0..data.graph.user_count())
        .map(|_| rng.gen_bool(0.7))
        .collect();
    let lg = LabeledGraph::new(&data.graph, data.privacy_cat, known);
    let local = ppdp::classify::LocalKind::Bayes.fit(&lg);
    let gen_wall_ns = gen_start.elapsed().as_nanos();

    let start = Instant::now();
    // Short chains: the sweep cost (not the estimate quality) is what a
    // scale baseline pins, and 25 sweeps over 10⁵ unknowns is already
    // an order of magnitude beyond any test fixture.
    let out = match gibbs_run(
        &lg,
        local.as_ref(),
        GibbsConfig {
            burn_in: 5,
            samples: 20,
            exec,
            ..Default::default()
        },
    ) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bench_scale: gibbs failed at {nodes} nodes: {e}");
            std::process::exit(1);
        }
    };
    let wall_ns = start.elapsed().as_nanos();
    let (bytes1, count1, peak_live) = alloc_totals();
    let (rss, peak_rss) = resource();
    Row {
        kind: "graph",
        size: nodes,
        structure: edges,
        gen_wall_ns,
        wall_ns,
        work_units: out.sweeps,
        converged: !out.degraded,
        renormalized: 0,
        rss_bytes: rss,
        peak_rss_bytes: peak_rss,
        alloc_bytes: bytes1 - bytes0,
        alloc_count: count1 - count0,
        peak_live_bytes: peak_live,
    }
}

/// Scrape the harness's own endpoint mid-run and probe the payload for
/// the acceptance series: valid OpenMetrics, the `bp.round` progress
/// gauge, and per-span allocation attribution.
struct ScrapeProbe {
    series: usize,
    validated: bool,
    bp_round_gauge: bool,
    span_alloc_series: bool,
}

fn self_scrape(addr: &std::net::SocketAddr) -> ScrapeProbe {
    let body = match http::scrape(addr) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_scale: self-scrape failed: {e}");
            std::process::exit(1);
        }
    };
    let stats = match ppdp::metrics::validate(&body) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_scale: scrape is not valid OpenMetrics: {e}");
            std::process::exit(1);
        }
    };
    ScrapeProbe {
        series: stats.samples,
        validated: true,
        bp_round_gauge: body.contains("\nbp_round "),
        span_alloc_series: body.contains("alloc_span_"),
    }
}

fn row_json(r: &Row) -> String {
    format!(
        "    {{\"kind\": \"{}\", \"size\": {}, \"structure\": {}, \"gen_wall_ns\": {}, \
         \"wall_ns\": {}, \"work_units\": {}, \"converged\": {}, \"renormalized\": {}, \
         \"rss_bytes\": {}, \
         \"peak_rss_bytes\": {}, \"alloc_bytes\": {}, \"alloc_count\": {}, \
         \"peak_live_bytes\": {}}}",
        r.kind,
        r.size,
        r.structure,
        r.gen_wall_ns,
        r.wall_ns,
        r.work_units,
        r.converged,
        r.renormalized,
        r.rss_bytes,
        r.peak_rss_bytes,
        r.alloc_bytes,
        r.alloc_count,
        r.peak_live_bytes,
    )
}

fn main() {
    let mut profile = String::from("ci");
    let mut out_path: Option<String> = None;
    let mut max_peak_rss: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--profile" => {
                profile = args
                    .next()
                    .unwrap_or_else(|| usage("--profile needs ci|paper|gate"))
            }
            "--out" => out_path = Some(args.next().unwrap_or_else(|| usage("--out needs a path"))),
            "--max-peak-rss-bytes" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--max-peak-rss-bytes needs a byte count"));
                max_peak_rss = Some(v.parse().unwrap_or_else(|_| {
                    usage(&format!("--max-peak-rss-bytes: bad byte count {v}"))
                }));
            }
            other => usage(&format!("unknown argument {other}")),
        }
    }
    let (genome_sizes, graph_sizes): (&[usize], &[usize]) = match profile.as_str() {
        "ci" => (&[2_000, 10_000], &[5_000, 20_000]),
        "paper" => (
            &[10_000, 50_000, 100_000],
            &[25_000, 100_000, 250_000, 1_000_000],
        ),
        // CI regression gate at the paper's extreme sizes only: the
        // 10⁵-SNP genome (both message domains) and the 10⁶-node graph,
        // typically bounded by --max-peak-rss-bytes.
        "gate" => (&[100_000], &[1_000_000]),
        other => usage(&format!("unknown profile {other} (want ci|paper|gate)")),
    };
    let out_path = out_path
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_SCALE.json").into());
    let exec = ExecPolicy::from_env();

    // Live observability for the whole run: registry + heartbeat +
    // ephemeral scrape port. Headless consumers can additionally set
    // PPDP_METRICS_SNAPSHOT; the listener here is for the self-probe.
    let live = LiveMetrics::install(Some("127.0.0.1:0"), 200, None, None);
    let addr = match live.addr() {
        Some(a) => a,
        None => {
            eprintln!("bench_scale: metrics listener failed to bind");
            std::process::exit(1);
        }
    };

    let mut rows: Vec<Row> = Vec::new();
    let mut probe: Option<ScrapeProbe> = None;
    for &n in genome_sizes {
        for domain in [MessageDomain::Linear, MessageDomain::Log] {
            eprintln!("bench_scale: genome sweep at {n} SNPs ({domain:?}) …");
            rows.push(genome_row(n, exec, domain));
            if probe.is_none() {
                // Mid-run on purpose: the registry must already carry the
                // BP round gauge and span attribution while work continues.
                probe = Some(self_scrape(&addr));
            }
        }
    }
    for &n in graph_sizes {
        eprintln!("bench_scale: graph sweep at {n} nodes …");
        rows.push(graph_row(n, exec));
    }
    let probe = probe.unwrap_or_else(|| usage("profile has no genome sizes"));
    let snap = live.finish();

    let json = format!(
        "{{\n  \"profile\": \"{profile}\",\n  \"threads\": {},\n  \"scrape\": {{\"series\": {}, \
         \"validated\": {}, \"bp_round_gauge\": {}, \"span_alloc_series\": {}}},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        exec.threads(),
        probe.series,
        probe.validated,
        probe.bp_round_gauge,
        probe.span_alloc_series,
        rows.iter().map(row_json).collect::<Vec<_>>().join(",\n"),
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("bench_scale: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    print!("{json}");

    let mut failed = false;
    if !probe.bp_round_gauge {
        eprintln!("GATE FAIL: mid-run scrape is missing the bp_round progress gauge");
        failed = true;
    }
    if !probe.span_alloc_series {
        eprintln!("GATE FAIL: mid-run scrape is missing per-span allocation series");
        failed = true;
    }
    if snap.counters.get("alloc.bytes").copied().unwrap_or(0) == 0 {
        eprintln!("GATE FAIL: counting allocator reported no traffic");
        failed = true;
    }
    for r in &rows {
        if r.peak_rss_bytes == 0 && std::path::Path::new("/proc/self/status").exists() {
            eprintln!("GATE FAIL: {} row at {} has no RSS sample", r.kind, r.size);
            failed = true;
        }
    }
    if let Some(budget) = max_peak_rss {
        for r in &rows {
            if r.peak_rss_bytes > budget {
                eprintln!(
                    "GATE FAIL: {} row at {} peaked at {} RSS bytes (budget {budget})",
                    r.kind, r.size, r.peak_rss_bytes
                );
                failed = true;
            }
        }
    }
    // Kernel-health gates. Sweep counts are NOT required to match across
    // domains: paper-scale catalogs carry a degree-2000 hub trait whose
    // cavity product underflows the linear kernel, which then burns extra
    // sweeps on per-message underflow repair (the `renormalized` column
    // counts them). The log kernel must instead be repair-free at every
    // size — one nonzero `bp.renormalized` in a genome_log row means the
    // LSE path lost mass and fell back to linear-style clamping.
    for r in rows.iter().filter(|r| r.kind == "genome_log") {
        if r.renormalized != 0 {
            eprintln!(
                "GATE FAIL: log-domain row at {} SNPs needed {} underflow repairs",
                r.size, r.renormalized
            );
            failed = true;
        }
        if !r.converged {
            eprintln!(
                "GATE FAIL: log-domain row at {} SNPs did not converge",
                r.size
            );
            failed = true;
        }
        if let Some(lin) = rows.iter().find(|l| l.kind == "genome" && l.size == r.size) {
            if r.work_units > lin.work_units {
                eprintln!(
                    "GATE FAIL: log kernel needed {} sweeps vs linear {} at {} SNPs",
                    r.work_units, lin.work_units, r.size
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    let max_rss = rows.iter().map(|r| r.peak_rss_bytes).max().unwrap_or(0);
    println!(
        "bench_scale OK: {} rows, peak RSS {:.1} MiB → {out_path}",
        rows.len(),
        max_rss as f64 / (1024.0 * 1024.0)
    );
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "bench_scale: {msg}\nusage: bench_scale [--profile ci|paper|gate] \
         [--out <path>] [--max-peak-rss-bytes <n>]"
    );
    std::process::exit(2)
}
