//! Paper-scale sweep harness: genomes to 10⁵ SNPs and social graphs
//! toward 10⁶ nodes, with live metrics and full resource accounting.
//!
//! ROADMAP items 1-2 need runs far beyond the unit-test fixtures; this
//! binary is both the proof that the workspace survives those sizes and
//! the baseline every later PR must beat. For each size in the selected
//! profile it
//!
//! 1. generates the synthetic dataset once (GWAS catalog + genotype
//!    panel, or a Table-3.3-shaped social graph scaled up),
//! 2. runs the paper's inference kernel on it (sum-product BP for
//!    genomes; Gibbs-sampling collective classification for graphs)
//!    across the kernel-variant × threads grid — the `scalar` baseline at
//!    one thread, the cache-blocked `blocked` kernels at 1/4/8 threads —
//! 3. records wall time, RSS / peak RSS (`/proc/self/status`), exact
//!    allocation deltas from the instrumented global allocator, and a
//!    content digest of the inference artifact (marginals / label
//!    distributions) so cross-thread bitwise identity is checkable from
//!    the JSON alone,
//!
//! writing the trajectory to `BENCH_SCALE.json` at the workspace root
//! (`ppdp-report diff` understands the file; see the `memory` metric
//! class). The whole run is observable live: a `ppdp-metrics` registry
//! with heartbeat and an ephemeral HTTP listener is installed up front,
//! and the harness *scrapes itself* mid-run, validates the OpenMetrics
//! payload, and records whether the BP round-progress gauge and per-span
//! allocation series were present — the acceptance probes for the live
//! observability layer.
//!
//! Usage: `bench_scale [--profile ci|paper|gate] [--out <path>]
//! [--max-peak-rss-bytes <n>] [--min-speedup <x>]`. The `ci` profile
//! keeps CI wall time low; `paper` sweeps to the full sizes (10⁵ SNPs,
//! 10⁶ graph nodes) and is what generates the checked-in baseline;
//! `gate` runs only the extreme sizes under an optional peak-RSS budget
//! (the ci.sh scale gate). `--min-speedup` demands that the fastest
//! blocked row beat the single-thread scalar row by at least the given
//! ratio on the largest `genome_log` and `graph` sizes — the scalar row
//! *is* the pre-blocking kernel, so the ratio gates the blocked/
//! vectorized path against the old baseline on the same machine and
//! dataset, with no wall-clock portability assumptions.
//!
//! Genome sizes run under both message domains (`genome` rows are the
//! linear kernel, `genome_log` rows the log-sum-exp kernel). The harness
//! fails if a log row converges slower than its linear sibling, fails to
//! converge, or reports any `bp.renormalized` underflow repairs — at
//! paper scale the catalog's degree-2000 hub traits underflow the linear
//! kernel (visible in the `renormalized` column), and the log kernel is
//! the row that must stay exact. Rows of the same dataset and variant
//! must agree digest-for-digest across thread counts, and the linear
//! `blocked` rows must reproduce the `scalar` digest bit-for-bit.

use ppdp::classify::{gibbs_run, GibbsConfig, GibbsSweep, LabeledGraph};
use ppdp::datagen::social::{generate, SocialConfig};
use ppdp::exec::ExecPolicy;
use ppdp::genomic::{
    BpConfig, Evidence, FactorGraph, Genotype, KernelVariant, MessageDomain, SnpId, TraitId,
};
use ppdp::metrics::alloc::CountingAlloc;
use ppdp::metrics::{http, LiveMetrics};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// Every allocation in this binary flows through the counting allocator,
/// so the per-row allocation columns are exact (not sampled).
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Catalogued associations per trait are capped here, mirroring real
/// panels where most of a 10⁵-locus array carries no association for any
/// given trait; past the cap the *trait list* grows instead
/// (`scaled_catalog`), so the factor count keeps scaling with the pool.
/// The cap also bounds the trait-side message product (quadratic in trait
/// degree). Recorded in every genome row as `assoc_cap`.
const ASSOC_CAP: usize = 2_000;

/// Unknown users per Jacobi tile in the blocked Gibbs rows: 4 096 users'
/// labels, cached weights and draws stay L2-resident.
const GIBBS_TILE: usize = 4_096;

/// The kernel-variant × threads grid every dataset is swept under.
const GRID: [(&str, usize); 4] = [
    ("scalar", 1),
    ("blocked", 1),
    ("blocked", 4),
    ("blocked", 8),
];

/// One measured sweep point.
struct Row {
    kind: &'static str,
    size: usize,
    /// Factor count (genomes) or edge count (graphs).
    structure: usize,
    /// Kernel variant: `scalar` (the pre-blocking baseline) or `blocked`.
    variant: &'static str,
    /// Worker threads the inference ran under (dataset generation is
    /// shared across the grid and always sequential).
    threads: usize,
    /// Tile size for blocked rows (0 for scalar rows).
    tile: usize,
    /// Per-trait association cap behind `structure` (0 for graph rows).
    assoc_cap: usize,
    /// FNV-1a over the inference artifact's f64 bits: equal digests mean
    /// bitwise-identical marginals / label distributions.
    digest: String,
    gen_wall_ns: u128,
    wall_ns: u128,
    /// BP sweeps or Gibbs sweeps actually performed.
    work_units: usize,
    converged: bool,
    /// `bp.renormalized` underflow repairs during the run. The linear
    /// kernel pays these at hub-trait sizes; the log kernel must report
    /// zero. Graph rows (Gibbs, no message products) are always zero.
    renormalized: u64,
    rss_bytes: u64,
    peak_rss_bytes: u64,
    alloc_bytes: u64,
    alloc_count: u64,
    peak_live_bytes: u64,
}

fn resource() -> (u64, u64) {
    ppdp::metrics::resource::sample()
        .map(|s| (s.rss_bytes, s.peak_rss_bytes))
        .unwrap_or((0, 0))
}

fn alloc_totals() -> (u64, u64, u64) {
    ppdp::metrics::alloc::totals()
        .map(|t| (t.bytes, t.count, t.peak_live_bytes))
        .unwrap_or((0, 0, 0))
}

/// FNV-1a 64 over a stream of f64 bit patterns.
fn fnv1a(h: &mut u64, x: f64) {
    for b in x.to_bits().to_le_bytes() {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn exec_for(threads: usize) -> ExecPolicy {
    if threads <= 1 {
        ExecPolicy::Sequential
    } else {
        ExecPolicy::parallel(threads)
    }
}

/// One BP run over a pre-built factor graph; the dataset is shared by the
/// whole variant × threads grid, so rows differ only in the kernel path.
fn genome_row(
    graph: &FactorGraph,
    n_snps: usize,
    structure: usize,
    gen_wall_ns: u128,
    domain: MessageDomain,
    variant: &'static str,
    threads: usize,
) -> Row {
    let _span = ppdp::telemetry::span("scale.genome");
    let (bytes0, count0, _) = alloc_totals();
    let kernel = match variant {
        "scalar" => KernelVariant::Scalar,
        _ => KernelVariant::Blocked,
    };
    let recorder = ppdp::telemetry::Recorder::new();
    let scope = recorder.enter();
    let start = Instant::now();
    let bp = BpConfig {
        exec: exec_for(threads),
        domain,
        variant: kernel,
        ..Default::default()
    }
    .run(graph);
    let wall_ns = start.elapsed().as_nanos();
    drop(scope);
    let renormalized = recorder.take().counter("bp.renormalized");
    let mut h = FNV_OFFSET;
    for m in &bp.snp_marginals {
        for &p in m {
            fnv1a(&mut h, p);
        }
    }
    for m in &bp.trait_marginals {
        for &p in m {
            fnv1a(&mut h, p);
        }
    }
    let (bytes1, count1, peak_live) = alloc_totals();
    let (rss, peak_rss) = resource();
    Row {
        kind: match domain {
            MessageDomain::Linear => "genome",
            MessageDomain::Log => "genome_log",
        },
        size: n_snps,
        structure,
        variant,
        threads,
        tile: if kernel == KernelVariant::Blocked {
            4096
        } else {
            0
        },
        assoc_cap: ASSOC_CAP,
        digest: format!("{h:016x}"),
        gen_wall_ns,
        wall_ns,
        work_units: bp.iterations,
        converged: bp.converged,
        renormalized,
        rss_bytes: rss,
        peak_rss_bytes: peak_rss,
        alloc_bytes: bytes1 - bytes0,
        alloc_count: count1 - count0,
        peak_live_bytes: peak_live,
    }
}

/// Pre-built graph dataset shared by the Gibbs grid at one size.
struct GraphData {
    data: ppdp::datagen::social::SocialDataset,
    known: Vec<bool>,
    gen_wall_ns: u128,
}

fn graph_dataset(nodes: usize) -> GraphData {
    let gen_start = Instant::now();
    // Caltech-shaped attributes scaled up; edges ≈ 8·|V| keeps the mean
    // degree in the band of the paper's datasets at any size.
    let edges = 8 * nodes;
    let data = generate(&SocialConfig {
        name: "scaled",
        nodes,
        edges,
        n_attrs: 7,
        label_arity: 4,
        utility_arity: 2,
        other_arity: 8,
        majority_frac: 0.72,
        components: 4,
        attr_corr: 0.52,
        homophily: 0.3,
        missing_frac: 0.1,
        seed: 42,
    });
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let known: Vec<bool> = (0..data.graph.user_count())
        .map(|_| rng.gen_bool(0.7))
        .collect();
    let gen_wall_ns = gen_start.elapsed().as_nanos();
    GraphData {
        data,
        known,
        gen_wall_ns,
    }
}

fn graph_row(gd: &GraphData, nodes: usize, variant: &'static str, threads: usize) -> Row {
    let _span = ppdp::telemetry::span("scale.graph");
    let (bytes0, count0, _) = alloc_totals();
    let lg = LabeledGraph::new(&gd.data.graph, gd.data.privacy_cat, gd.known.clone());
    let local = ppdp::classify::LocalKind::Bayes.fit(&lg);
    // The scalar row *is* the pre-blocking kernel: the historical scan
    // schedule with the historical per-edge `masked_weight` recomputation
    // (no weight cache), so the speedup ratio charges the blocked rows
    // for everything this PR's scheduling work bought.
    let sweep = match variant {
        "scalar" => GibbsSweep::Scan,
        _ => GibbsSweep::Tiled { tile: GIBBS_TILE },
    };

    let start = Instant::now();
    // Short chains: the sweep cost (not the estimate quality) is what a
    // scale baseline pins, and 25 sweeps over 10⁵ unknowns is already
    // an order of magnitude beyond any test fixture.
    let out = match gibbs_run(
        &lg,
        local.as_ref(),
        GibbsConfig {
            burn_in: 5,
            samples: 20,
            exec: exec_for(threads),
            sweep,
            weight_cache: variant != "scalar",
            ..Default::default()
        },
    ) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bench_scale: gibbs failed at {nodes} nodes: {e}");
            std::process::exit(1);
        }
    };
    let wall_ns = start.elapsed().as_nanos();
    let mut h = FNV_OFFSET;
    for d in &out.dists {
        for &p in d {
            fnv1a(&mut h, p);
        }
    }
    let (bytes1, count1, peak_live) = alloc_totals();
    let (rss, peak_rss) = resource();
    Row {
        kind: "graph",
        size: nodes,
        structure: 8 * nodes,
        variant,
        threads,
        tile: match sweep {
            GibbsSweep::Tiled { tile } => tile,
            GibbsSweep::Scan => 0,
        },
        assoc_cap: 0,
        digest: format!("{h:016x}"),
        gen_wall_ns: gd.gen_wall_ns,
        wall_ns,
        work_units: out.sweeps,
        converged: !out.degraded,
        renormalized: 0,
        rss_bytes: rss,
        peak_rss_bytes: peak_rss,
        alloc_bytes: bytes1 - bytes0,
        alloc_count: count1 - count0,
        peak_live_bytes: peak_live,
    }
}

/// Scrape the harness's own endpoint mid-run and probe the payload for
/// the acceptance series: valid OpenMetrics, the `bp.round` progress
/// gauge, and per-span allocation attribution.
struct ScrapeProbe {
    series: usize,
    validated: bool,
    bp_round_gauge: bool,
    span_alloc_series: bool,
}

fn self_scrape(addr: &std::net::SocketAddr) -> ScrapeProbe {
    let body = match http::scrape(addr) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_scale: self-scrape failed: {e}");
            std::process::exit(1);
        }
    };
    let stats = match ppdp::metrics::validate(&body) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_scale: scrape is not valid OpenMetrics: {e}");
            std::process::exit(1);
        }
    };
    ScrapeProbe {
        series: stats.samples,
        validated: true,
        bp_round_gauge: body.contains("\nbp_round "),
        span_alloc_series: body.contains("alloc_span_"),
    }
}

fn row_json(r: &Row) -> String {
    format!(
        "    {{\"kind\": \"{}\", \"size\": {}, \"structure\": {}, \"variant\": \"{}\", \
         \"threads\": {}, \"tile\": {}, \"assoc_cap\": {}, \"digest\": \"{}\", \
         \"gen_wall_ns\": {}, \
         \"wall_ns\": {}, \"work_units\": {}, \"converged\": {}, \"renormalized\": {}, \
         \"rss_bytes\": {}, \
         \"peak_rss_bytes\": {}, \"alloc_bytes\": {}, \"alloc_count\": {}, \
         \"peak_live_bytes\": {}}}",
        r.kind,
        r.size,
        r.structure,
        r.variant,
        r.threads,
        r.tile,
        r.assoc_cap,
        r.digest,
        r.gen_wall_ns,
        r.wall_ns,
        r.work_units,
        r.converged,
        r.renormalized,
        r.rss_bytes,
        r.peak_rss_bytes,
        r.alloc_bytes,
        r.alloc_count,
        r.peak_live_bytes,
    )
}

fn main() {
    let mut profile = String::from("ci");
    let mut out_path: Option<String> = None;
    let mut max_peak_rss: Option<u64> = None;
    let mut min_speedup: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--profile" => {
                profile = args
                    .next()
                    .unwrap_or_else(|| usage("--profile needs ci|paper|gate"))
            }
            "--out" => out_path = Some(args.next().unwrap_or_else(|| usage("--out needs a path"))),
            "--max-peak-rss-bytes" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--max-peak-rss-bytes needs a byte count"));
                max_peak_rss = Some(v.parse().unwrap_or_else(|_| {
                    usage(&format!("--max-peak-rss-bytes: bad byte count {v}"))
                }));
            }
            "--min-speedup" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--min-speedup needs a ratio"));
                let parsed: f64 = v
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("--min-speedup: bad ratio {v}")));
                if !(parsed.is_finite() && parsed >= 1.0) {
                    usage(&format!("--min-speedup: ratio must be ≥ 1, got {v}"));
                }
                min_speedup = Some(parsed);
            }
            other => usage(&format!("unknown argument {other}")),
        }
    }
    let (genome_sizes, graph_sizes): (&[usize], &[usize]) = match profile.as_str() {
        "ci" => (&[2_000, 10_000], &[5_000, 20_000]),
        "paper" => (
            &[10_000, 50_000, 100_000],
            &[25_000, 100_000, 250_000, 1_000_000],
        ),
        // CI regression gate at the paper's extreme sizes only: the
        // 10⁵-SNP genome (both message domains) and the 10⁶-node graph,
        // typically bounded by --max-peak-rss-bytes and --min-speedup.
        "gate" => (&[100_000], &[1_000_000]),
        other => usage(&format!("unknown profile {other} (want ci|paper|gate)")),
    };
    let out_path = out_path
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_SCALE.json").into());

    // Live observability for the whole run: registry + heartbeat +
    // ephemeral scrape port. Headless consumers can additionally set
    // PPDP_METRICS_SNAPSHOT; the listener here is for the self-probe.
    let live = LiveMetrics::install(Some("127.0.0.1:0"), 200, None, None);
    let addr = match live.addr() {
        Some(a) => a,
        None => {
            eprintln!("bench_scale: metrics listener failed to bind");
            std::process::exit(1);
        }
    };

    let mut rows: Vec<Row> = Vec::new();
    let mut probe: Option<ScrapeProbe> = None;
    for &n in genome_sizes {
        eprintln!("bench_scale: generating {n}-SNP catalog …");
        let gen_start = Instant::now();
        let catalog = ppdp::datagen::gwas::scaled_catalog(n, ASSOC_CAP, 2, 7);
        let evidence = Evidence::none()
            .with_snp(SnpId(0), Genotype::HomRisk)
            .with_snp(SnpId(5), Genotype::Het)
            .with_trait(TraitId(2), true);
        let graph = match FactorGraph::build(&catalog, &evidence) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("bench_scale: factor graph build failed at {n} SNPs: {e}");
                std::process::exit(1);
            }
        };
        let structure = catalog.associations().len();
        let gen_wall_ns = gen_start.elapsed().as_nanos();
        for domain in [MessageDomain::Linear, MessageDomain::Log] {
            for (variant, threads) in GRID {
                eprintln!(
                    "bench_scale: genome sweep at {n} SNPs ({domain:?}, {variant}@{threads}) …"
                );
                rows.push(genome_row(
                    &graph,
                    n,
                    structure,
                    gen_wall_ns,
                    domain,
                    variant,
                    threads,
                ));
                if probe.is_none() {
                    // Mid-run on purpose: the registry must already carry
                    // the BP round gauge and span attribution while work
                    // continues.
                    probe = Some(self_scrape(&addr));
                }
            }
        }
    }
    for &n in graph_sizes {
        eprintln!("bench_scale: generating {n}-node graph …");
        let gd = graph_dataset(n);
        for (variant, threads) in GRID {
            eprintln!("bench_scale: graph sweep at {n} nodes ({variant}@{threads}) …");
            rows.push(graph_row(&gd, n, variant, threads));
        }
    }
    let probe = probe.unwrap_or_else(|| usage("profile has no genome sizes"));
    let snap = live.finish();

    let max_threads = GRID.iter().map(|&(_, t)| t).max().unwrap_or(1);
    let json = format!(
        "{{\n  \"profile\": \"{profile}\",\n  \"threads\": {max_threads},\n  \
         \"scrape\": {{\"series\": {}, \
         \"validated\": {}, \"bp_round_gauge\": {}, \"span_alloc_series\": {}}},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        probe.series,
        probe.validated,
        probe.bp_round_gauge,
        probe.span_alloc_series,
        rows.iter().map(row_json).collect::<Vec<_>>().join(",\n"),
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("bench_scale: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    print!("{json}");

    let mut failed = false;
    if !probe.bp_round_gauge {
        eprintln!("GATE FAIL: mid-run scrape is missing the bp_round progress gauge");
        failed = true;
    }
    if !probe.span_alloc_series {
        eprintln!("GATE FAIL: mid-run scrape is missing per-span allocation series");
        failed = true;
    }
    if snap.counters.get("alloc.bytes").copied().unwrap_or(0) == 0 {
        eprintln!("GATE FAIL: counting allocator reported no traffic");
        failed = true;
    }
    for r in &rows {
        if r.peak_rss_bytes == 0 && std::path::Path::new("/proc/self/status").exists() {
            eprintln!("GATE FAIL: {} row at {} has no RSS sample", r.kind, r.size);
            failed = true;
        }
    }
    if let Some(budget) = max_peak_rss {
        for r in &rows {
            if r.peak_rss_bytes > budget {
                eprintln!(
                    "GATE FAIL: {} row at {} peaked at {} RSS bytes (budget {budget})",
                    r.kind, r.size, r.peak_rss_bytes
                );
                failed = true;
            }
        }
    }
    // Determinism gates, checkable from the digests alone: within one
    // (dataset, variant) group every thread count must produce the same
    // artifact bit-for-bit, and the *linear* blocked kernel must
    // reproduce the scalar kernel exactly (the log kernel's lane
    // reassociation is ≤ 1e-12 but not bitwise; Gibbs Scan and Tiled are
    // different samplers by construction).
    for r in &rows {
        if let Some(first) = rows
            .iter()
            .find(|o| (o.kind, o.size, o.variant) == (r.kind, r.size, r.variant))
        {
            if first.digest != r.digest {
                eprintln!(
                    "GATE FAIL: {} row at {} ({}@{}) digest {} deviates from {} at {} threads \
                     — thread count changed the artifact",
                    r.kind, r.size, r.variant, r.threads, r.digest, first.digest, first.threads
                );
                failed = true;
            }
        }
    }
    for r in rows.iter().filter(|r| r.kind == "genome") {
        if let Some(scalar) = rows
            .iter()
            .find(|o| o.kind == r.kind && o.size == r.size && o.variant == "scalar")
        {
            if scalar.digest != r.digest {
                eprintln!(
                    "GATE FAIL: linear blocked kernel at {} SNPs drifted from scalar \
                     ({} vs {})",
                    r.size, r.digest, scalar.digest
                );
                failed = true;
            }
        }
    }
    // Kernel-health gates. Sweep counts are NOT required to match across
    // domains: paper-scale catalogs carry degree-2000 hub traits whose
    // cavity product underflows the linear kernel, which then burns extra
    // sweeps on per-message underflow repair (the `renormalized` column
    // counts them). The log kernel must instead be repair-free at every
    // size — one nonzero `bp.renormalized` in a genome_log row means the
    // LSE path lost mass and fell back to linear-style clamping.
    for r in rows.iter().filter(|r| r.kind == "genome_log") {
        if r.renormalized != 0 {
            eprintln!(
                "GATE FAIL: log-domain row at {} SNPs needed {} underflow repairs",
                r.size, r.renormalized
            );
            failed = true;
        }
        if !r.converged {
            eprintln!(
                "GATE FAIL: log-domain row at {} SNPs did not converge",
                r.size
            );
            failed = true;
        }
        if let Some(lin) = rows
            .iter()
            .find(|l| l.kind == "genome" && l.size == r.size && l.variant == r.variant)
        {
            if r.work_units > lin.work_units {
                eprintln!(
                    "GATE FAIL: log kernel needed {} sweeps vs linear {} at {} SNPs",
                    r.work_units, lin.work_units, r.size
                );
                failed = true;
            }
        }
    }
    // Speedup gate: on the largest genome_log and graph datasets, the
    // fastest blocked row must beat the single-thread scalar row (the
    // pre-blocking kernel, measured in the same process on the same
    // dataset) by the requested ratio.
    if let Some(ratio) = min_speedup {
        for kind in ["genome_log", "graph"] {
            let Some(max_size) = rows.iter().filter(|r| r.kind == kind).map(|r| r.size).max()
            else {
                continue;
            };
            let at = |variant: &str| {
                rows.iter()
                    .filter(|r| r.kind == kind && r.size == max_size && r.variant == variant)
                    .map(|r| r.wall_ns)
                    .min()
            };
            match (at("scalar"), at("blocked")) {
                (Some(scalar_ns), Some(blocked_ns)) if blocked_ns > 0 => {
                    let speedup = scalar_ns as f64 / blocked_ns as f64;
                    eprintln!(
                        "bench_scale: {kind} at {max_size}: blocked speedup {speedup:.2}× \
                         (scalar {scalar_ns} ns, best blocked {blocked_ns} ns)"
                    );
                    if speedup < ratio {
                        eprintln!(
                            "GATE FAIL: {kind} blocked speedup {speedup:.2}× is below the \
                             required {ratio:.2}×"
                        );
                        failed = true;
                    }
                }
                _ => {
                    eprintln!("GATE FAIL: {kind} rows missing a scalar/blocked pair at {max_size}");
                    failed = true;
                }
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    let max_rss = rows.iter().map(|r| r.peak_rss_bytes).max().unwrap_or(0);
    println!(
        "bench_scale OK: {} rows, peak RSS {:.1} MiB → {out_path}",
        rows.len(),
        max_rss as f64 / (1024.0 * 1024.0)
    );
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "bench_scale: {msg}\nusage: bench_scale [--profile ci|paper|gate] \
         [--out <path>] [--max-peak-rss-bytes <n>] [--min-speedup <x>]"
    );
    std::process::exit(2)
}
