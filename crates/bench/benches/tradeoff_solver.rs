#![allow(missing_docs)] // criterion macros expand undocumented functions

//! Chapter 4 strategy-search cost: coordinate-ascent over the discretized
//! simplex as a function of the grid denominator `d` and the variant count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppdp::tradeoff::{
    hamming_disparity, optimize_attribute_strategy, AttributeStrategy, OptimizeConfig, Profile,
};

fn setup(n_variants: usize) -> (Profile, Vec<Vec<f64>>) {
    let variants: Vec<Vec<Option<u16>>> = (0..n_variants)
        .map(|i| vec![Some((i % 4) as u16), Some((i / 4) as u16)])
        .collect();
    let profile = Profile::new(
        variants.clone(),
        (1..=n_variants).map(|i| i as f64).collect(),
    );
    let predictions: Vec<Vec<f64>> = (0..n_variants)
        .map(|i| {
            let p = (i as f64 + 0.5) / n_variants as f64;
            vec![p, 1.0 - p]
        })
        .collect();
    (profile, predictions)
}

fn bench_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategy_search_by_grid");
    group.sample_size(10);
    let (profile, predictions) = setup(6);
    for &grid in &[2usize, 3, 4, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(grid), &grid, |b, &grid| {
            b.iter(|| {
                let initial = AttributeStrategy::removal(profile.variants().to_vec(), &[0]);
                optimize_attribute_strategy(
                    std::hint::black_box(&profile),
                    &initial,
                    &predictions,
                    hamming_disparity,
                    OptimizeConfig {
                        grid,
                        sweeps: 2,
                        delta: 2.0,
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategy_search_by_variants");
    group.sample_size(10);
    for &n in &[4usize, 8, 12] {
        let (profile, predictions) = setup(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let initial = AttributeStrategy::removal(profile.variants().to_vec(), &[0]);
                optimize_attribute_strategy(
                    std::hint::black_box(&profile),
                    &initial,
                    &predictions,
                    hamming_disparity,
                    OptimizeConfig {
                        grid: 3,
                        sweeps: 1,
                        delta: 2.0,
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grid, bench_variants);
criterion_main!(benches);
