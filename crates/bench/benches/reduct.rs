#![allow(missing_docs)] // criterion macros expand undocumented functions

//! Rough-Set reduct search cost: scaling in the number of condition
//! attributes and rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppdp::roughset::{find_reduct, AttrId, InformationSystem};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A table whose decision equals attribute 0 XOR attribute 1, with noisy
/// filler columns — so the reduct search has real work to do.
fn table(rows: usize, attrs: usize, seed: u64) -> InformationSystem {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let data: Vec<Vec<Option<u16>>> = (0..rows)
        .map(|_| {
            let a: u16 = rng.gen_range(0..2);
            let b: u16 = rng.gen_range(0..2);
            let mut row: Vec<Option<u16>> = vec![Some(a), Some(b)];
            for _ in 2..attrs {
                row.push(Some(rng.gen_range(0..4)));
            }
            row.push(Some(a ^ b)); // decision
            row
        })
        .collect();
    InformationSystem::from_rows(&data)
}

fn bench_reduct_vs_attrs(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduct_vs_attrs");
    for &attrs in &[5usize, 10, 20, 40] {
        let sys = table(500, attrs, 1);
        let cond: Vec<AttrId> = (0..attrs).map(AttrId).collect();
        group.bench_with_input(BenchmarkId::from_parameter(attrs), &sys, |b, sys| {
            b.iter(|| find_reduct(std::hint::black_box(sys), &cond, &[AttrId(attrs)]))
        });
    }
    group.finish();
}

fn bench_reduct_vs_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduct_vs_rows");
    for &rows in &[200usize, 1_000, 5_000, 20_000] {
        let sys = table(rows, 10, 2);
        let cond: Vec<AttrId> = (0..10).map(AttrId).collect();
        group.bench_with_input(BenchmarkId::from_parameter(rows), &sys, |b, sys| {
            b.iter(|| find_reduct(std::hint::black_box(sys), &cond, &[AttrId(10)]))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reduct_vs_attrs, bench_reduct_vs_rows);
criterion_main!(benches);
