#![allow(missing_docs)] // criterion macros expand undocumented functions

//! DP synthesis throughput and the network-degree ablation (DESIGN.md #5):
//! fitting cost grows with the marginal dimensionality `k`, which is the
//! utility/noise tradeoff the dissertation's high-dimensional publishing
//! recipe navigates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppdp::datagen::microdata::correlated_microdata;
use ppdp::dp::{BayesNet, NoisyCdf, SynthesisConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_fit_by_degree(c: &mut Criterion) {
    let mut group = c.benchmark_group("bayesnet_fit_by_degree");
    group.sample_size(20);
    let table = correlated_microdata(5_000, 10, 4, 0.85, 3);
    for &degree in &[0usize, 1, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(degree), &degree, |b, &k| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(4);
                BayesNet::fit(
                    &mut rng,
                    std::hint::black_box(&table),
                    SynthesisConfig {
                        degree: k,
                        epsilon: 1.0,
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_sampling_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("bayesnet_sample");
    let table = correlated_microdata(5_000, 10, 4, 0.85, 3);
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let net = BayesNet::fit(
        &mut rng,
        &table,
        SynthesisConfig {
            degree: 2,
            epsilon: 1.0,
        },
    )
    .expect("bench data is well-formed");
    for &n in &[1_000usize, 10_000, 50_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(5);
                net.sample(&mut rng, std::hint::black_box(n))
            })
        });
    }
    group.finish();
}

fn bench_dp_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_aggregation");
    let table = correlated_microdata(100_000, 3, 16, 0.5, 6);
    group.bench_function("noisy_cdf_build_100k", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            NoisyCdf::build(&mut rng, std::hint::black_box(&table), 0, 1.0)
        })
    });
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let cdf = NoisyCdf::build(&mut rng, &table, 0, 1.0);
    group.bench_function("range_query_postprocessing", |b| {
        b.iter(|| std::hint::black_box(&cdf).range_count(2, 11))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fit_by_degree,
    bench_sampling_throughput,
    bench_dp_aggregation
);
criterion_main!(benches);
