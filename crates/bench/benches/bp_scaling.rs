#![allow(missing_docs)] // criterion macros expand undocumented functions

//! The Chapter 5 headline claim: belief-propagation inference cost is
//! *linear* in the number of SNPs, while direct marginalization (Eq. 5.1)
//! is exponential. Also ablates the BP damping factor (DESIGN.md ablation
//! #3).

use criterion::{criterion_group, BenchmarkId, Criterion};
use ppdp::exec::ExecPolicy;
use ppdp::genomic::{
    exhaustive_marginals, BpConfig, Evidence, FactorGraph, Genotype, GwasCatalog, SnpId,
};

/// Chain catalog: `n` SNPs strung across traits of 4 SNPs each, each trait
/// sharing one SNP with its predecessor (a long tree).
fn chain_catalog(n_snps: usize) -> GwasCatalog {
    let mut c = GwasCatalog::new(n_snps);
    let mut s = 0usize;
    let mut t_idx = 0usize;
    while s + 4 <= n_snps {
        let t = c.add_trait(format!("t{t_idx}"), 0.05 + 0.01 * ((t_idx % 10) as f64));
        let start = s.saturating_sub(1); // share one SNP with the previous trait
        for i in start..s + 3 {
            c.associate(
                SnpId(i),
                t,
                1.2 + 0.1 * ((i % 5) as f64),
                0.2 + 0.05 * ((i % 7) as f64),
            );
        }
        s += 3;
        t_idx += 1;
    }
    c
}

fn evidence_half(n_snps: usize) -> Evidence {
    let mut ev = Evidence::none();
    for s in (0..n_snps).step_by(2) {
        ev.snps.insert(SnpId(s), Genotype::HomRisk);
    }
    ev
}

fn bench_bp_linear(c: &mut Criterion) {
    let mut group = c.benchmark_group("bp_linear_in_snps");
    for &n in &[64usize, 256, 1024, 4096] {
        let cat = chain_catalog(n);
        let g = FactorGraph::build(&cat, &evidence_half(n)).expect("bench data is well-formed");
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| BpConfig::default().run(std::hint::black_box(g)))
        });
    }
    group.finish();
}

fn bench_exhaustive_exponential(c: &mut Criterion) {
    let mut group = c.benchmark_group("exhaustive_exponential_in_snps");
    group.sample_size(10);
    for &n in &[6usize, 9, 12] {
        let cat = chain_catalog(n + 1);
        // Leave `n` SNPs unknown by releasing none.
        let g = FactorGraph::build(&cat, &Evidence::none()).expect("bench data is well-formed");
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| exhaustive_marginals(std::hint::black_box(g)))
        });
    }
    group.finish();
}

/// The thread axis: the same headline BP workload under the execution
/// policies the equivalence harness proves interchangeable. The interesting
/// read is `4` (and `8`) vs `seq` — the acceptance floor is ≥ 1.5× at four
/// threads on this workload.
fn bench_bp_thread_axis(c: &mut Criterion) {
    let mut group = c.benchmark_group("bp_thread_axis");
    let cat = chain_catalog(4096);
    let g = FactorGraph::build(&cat, &evidence_half(4096)).expect("bench data is well-formed");
    for (label, exec) in [
        ("seq", ExecPolicy::Sequential),
        ("2", ExecPolicy::parallel(2)),
        ("4", ExecPolicy::parallel(4)),
        ("8", ExecPolicy::parallel(8)),
    ] {
        let cfg = BpConfig {
            exec,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| cfg.run(std::hint::black_box(&g)))
        });
    }
    group.finish();
}

fn bench_damping_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("bp_damping_ablation");
    let cat = chain_catalog(512);
    let g = FactorGraph::build(&cat, &evidence_half(512)).expect("bench data is well-formed");
    for &damping in &[0.0, 0.25, 0.5] {
        let cfg = BpConfig {
            damping,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{damping}")),
            &cfg,
            |b, cfg| b.iter(|| cfg.run(std::hint::black_box(&g))),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bp_linear,
    bench_bp_thread_axis,
    bench_exhaustive_exponential,
    bench_damping_ablation
);

/// One instrumented pass over the headline workload, dumped as a telemetry
/// `RunReport` so criterion timings can be cross-read against BP iteration
/// counts and residuals. Also times a sequential-vs-4-thread pair and
/// records the measured speedup into the report.
fn dump_telemetry_report(path: &str) {
    let rec = ppdp::telemetry::Recorder::new();
    let speedup;
    {
        let _scope = rec.enter();
        let _span = ppdp::telemetry::span("bench.bp_scaling");
        let cat = chain_catalog(4096);
        let g = FactorGraph::build(&cat, &evidence_half(4096)).expect("bench data is well-formed");
        let time = |exec: ExecPolicy| {
            let cfg = BpConfig {
                exec,
                ..Default::default()
            };
            let started = std::time::Instant::now();
            for _ in 0..3 {
                let _ = cfg.run(&g);
            }
            started.elapsed().as_secs_f64()
        };
        let seq = time(ExecPolicy::Sequential);
        let par = time(ExecPolicy::parallel(4));
        speedup = seq / par.max(1e-12);
    }
    let mut report = rec.take();
    report.record_speedup("bp.run@4", speedup);
    use ppdp::telemetry::status_line;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "{}",
        status_line(
            "speedup",
            &format!("bp.run sequential/parallel(4) = {speedup:.2}x on {cores} host core(s)")
        )
    );
    match std::fs::write(path, report.to_json_pretty()) {
        Ok(()) => eprintln!(
            "{}",
            status_line("saved", &format!("telemetry report → {path}"))
        ),
        Err(e) => eprintln!(
            "{}",
            status_line(
                "error",
                &format!("cannot write telemetry report {path}: {e}")
            )
        ),
    }
}

fn main() {
    if let Ok(path) = std::env::var("PPDP_BENCH_REPORT") {
        dump_telemetry_report(&path);
    }
    benches();
}
