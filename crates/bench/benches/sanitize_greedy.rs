#![allow(missing_docs)] // criterion macros expand undocumented functions

//! Greedy-solver ablation (DESIGN.md #4): lazy vs naive cost-benefit greedy
//! on the vulnerable-link selection workload, plus the genomic GPUT greedy.

use criterion::{criterion_group, BenchmarkId, Criterion};
use ppdp::datagen::genomes::amd_like;
use ppdp::datagen::gwas::synthetic_catalog;
use ppdp::exec::ExecPolicy;
use ppdp::genomic::sanitize::{greedy_sanitize, Predictor, Target};
use ppdp::genomic::{greedy_sanitize_with, BpConfig, TraitId};
use ppdp::opt::{lazy_greedy_knapsack, naive_greedy_knapsack};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

/// Synthetic coverage instance of the shape the link selector produces.
fn coverage_instance(n: usize, seed: u64) -> (Vec<Vec<usize>>, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let items: Vec<Vec<usize>> = (0..n)
        .map(|_| {
            let k = rng.gen_range(1..6);
            (0..k).map(|_| rng.gen_range(0..n)).collect()
        })
        .collect();
    let costs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..3.0)).collect();
    (items, costs)
}

fn bench_lazy_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_lazy_vs_naive");
    group.sample_size(10);
    for &n in &[50usize, 150, 400] {
        let (items, costs) = coverage_instance(n, 7);
        let cover = |sel: &[usize]| -> f64 {
            let mut seen: HashSet<usize> = HashSet::new();
            for &i in sel {
                seen.extend(items[i].iter().copied());
            }
            seen.len() as f64
        };
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| naive_greedy_knapsack(&costs, n as f64 / 16.0, cover))
        });
        group.bench_with_input(BenchmarkId::new("lazy", n), &n, |b, _| {
            b.iter(|| lazy_greedy_knapsack(&costs, n as f64 / 16.0, cover))
        });
    }
    group.finish();
}

fn bench_gput_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("gput_greedy");
    group.sample_size(10);
    for &(snps, assoc) in &[(60usize, 4usize), (120, 6)] {
        let catalog = synthetic_catalog(snps, assoc, 2, 5);
        let panel = amd_like(&catalog, TraitId(0), 4, 4, 5);
        let ev = panel.full_evidence(0);
        let targets: Vec<Target> = (0..catalog.n_traits())
            .map(|i| Target::Trait(TraitId(i)))
            .collect();
        let id = format!("{snps}snps_{assoc}assoc");
        group.bench_with_input(BenchmarkId::from_parameter(id), &catalog, |b, cat| {
            b.iter(|| {
                greedy_sanitize(
                    std::hint::black_box(cat),
                    &ev,
                    &targets,
                    0.95,
                    6,
                    Predictor::BeliefPropagation(BpConfig::default()),
                )
            })
        });
    }
    group.finish();
}

/// The thread axis: per-candidate marginal-gain evaluation of the GPUT
/// greedy fanned out across worker pools. The picks are bitwise identical
/// at every size (see `tests/equivalence.rs`); only the wall-clock moves —
/// the acceptance floor is ≥ 1.5× at four threads on this workload.
fn bench_gput_thread_axis(c: &mut Criterion) {
    let mut group = c.benchmark_group("gput_thread_axis");
    group.sample_size(10);
    let catalog = synthetic_catalog(120, 6, 2, 5);
    let panel = amd_like(&catalog, TraitId(0), 4, 4, 5);
    let ev = panel.full_evidence(0);
    let targets: Vec<Target> = (0..catalog.n_traits())
        .map(|i| Target::Trait(TraitId(i)))
        .collect();
    for (label, exec) in [
        ("seq", ExecPolicy::Sequential),
        ("2", ExecPolicy::parallel(2)),
        ("4", ExecPolicy::parallel(4)),
        ("8", ExecPolicy::parallel(8)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &exec, |b, &exec| {
            b.iter(|| {
                greedy_sanitize_with(
                    exec,
                    std::hint::black_box(&catalog),
                    &ev,
                    &targets,
                    0.95,
                    6,
                    Predictor::BeliefPropagation(BpConfig::default()),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lazy_vs_naive,
    bench_gput_greedy,
    bench_gput_thread_axis
);

/// One instrumented pass of the GPUT greedy workload, dumped as a telemetry
/// `RunReport` (BP sweeps, lazy-greedy hit rates) next to criterion output.
/// Also times a sequential-vs-4-thread pair and records the measured
/// speedup into the report.
fn dump_telemetry_report(path: &str) {
    let rec = ppdp::telemetry::Recorder::new();
    let speedup;
    {
        let _scope = rec.enter();
        let _span = ppdp::telemetry::span("bench.sanitize_greedy");
        let catalog = synthetic_catalog(120, 6, 2, 5);
        let panel = amd_like(&catalog, TraitId(0), 4, 4, 5);
        let ev = panel.full_evidence(0);
        let targets: Vec<Target> = (0..catalog.n_traits())
            .map(|i| Target::Trait(TraitId(i)))
            .collect();
        let time = |exec: ExecPolicy| {
            let started = std::time::Instant::now();
            let _ = greedy_sanitize_with(
                exec,
                &catalog,
                &ev,
                &targets,
                0.95,
                6,
                Predictor::BeliefPropagation(BpConfig::default()),
            );
            started.elapsed().as_secs_f64()
        };
        let seq = time(ExecPolicy::Sequential);
        let par = time(ExecPolicy::parallel(4));
        speedup = seq / par.max(1e-12);
    }
    let mut report = rec.take();
    report.record_speedup("sanitize.greedy@4", speedup);
    use ppdp::telemetry::status_line;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "{}",
        status_line(
            "speedup",
            &format!("gput greedy sequential/parallel(4) = {speedup:.2}x on {cores} host core(s)")
        )
    );
    match std::fs::write(path, report.to_json_pretty()) {
        Ok(()) => eprintln!(
            "{}",
            status_line("saved", &format!("telemetry report → {path}"))
        ),
        Err(e) => eprintln!(
            "{}",
            status_line(
                "error",
                &format!("cannot write telemetry report {path}: {e}")
            )
        ),
    }
}

fn main() {
    if let Ok(path) = std::env::var("PPDP_BENCH_REPORT") {
        dump_telemetry_report(&path);
    }
    benches();
}
