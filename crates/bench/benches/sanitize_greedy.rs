#![allow(missing_docs)] // criterion macros expand undocumented functions

//! Greedy-solver ablation (DESIGN.md #4): lazy vs naive cost-benefit greedy
//! on the vulnerable-link selection workload, plus the genomic GPUT greedy.

use criterion::{criterion_group, BenchmarkId, Criterion};
use ppdp::datagen::genomes::amd_like;
use ppdp::datagen::gwas::synthetic_catalog;
use ppdp::genomic::sanitize::{greedy_sanitize, Predictor, Target};
use ppdp::genomic::{BpConfig, TraitId};
use ppdp::opt::{lazy_greedy_knapsack, naive_greedy_knapsack};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

/// Synthetic coverage instance of the shape the link selector produces.
fn coverage_instance(n: usize, seed: u64) -> (Vec<Vec<usize>>, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let items: Vec<Vec<usize>> = (0..n)
        .map(|_| {
            let k = rng.gen_range(1..6);
            (0..k).map(|_| rng.gen_range(0..n)).collect()
        })
        .collect();
    let costs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..3.0)).collect();
    (items, costs)
}

fn bench_lazy_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_lazy_vs_naive");
    group.sample_size(10);
    for &n in &[50usize, 150, 400] {
        let (items, costs) = coverage_instance(n, 7);
        let cover = |sel: &[usize]| -> f64 {
            let mut seen: HashSet<usize> = HashSet::new();
            for &i in sel {
                seen.extend(items[i].iter().copied());
            }
            seen.len() as f64
        };
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| naive_greedy_knapsack(&costs, n as f64 / 16.0, cover))
        });
        group.bench_with_input(BenchmarkId::new("lazy", n), &n, |b, _| {
            b.iter(|| lazy_greedy_knapsack(&costs, n as f64 / 16.0, cover))
        });
    }
    group.finish();
}

fn bench_gput_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("gput_greedy");
    group.sample_size(10);
    for &(snps, assoc) in &[(60usize, 4usize), (120, 6)] {
        let catalog = synthetic_catalog(snps, assoc, 2, 5);
        let panel = amd_like(&catalog, TraitId(0), 4, 4, 5);
        let ev = panel.full_evidence(0);
        let targets: Vec<Target> = (0..catalog.n_traits())
            .map(|i| Target::Trait(TraitId(i)))
            .collect();
        let id = format!("{snps}snps_{assoc}assoc");
        group.bench_with_input(BenchmarkId::from_parameter(id), &catalog, |b, cat| {
            b.iter(|| {
                greedy_sanitize(
                    std::hint::black_box(cat),
                    &ev,
                    &targets,
                    0.95,
                    6,
                    Predictor::BeliefPropagation(BpConfig::default()),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lazy_vs_naive, bench_gput_greedy);

/// One instrumented pass of the GPUT greedy workload, dumped as a telemetry
/// `RunReport` (BP sweeps, lazy-greedy hit rates) next to criterion output.
fn dump_telemetry_report(path: &str) {
    let rec = ppdp::telemetry::Recorder::new();
    {
        let _scope = rec.enter();
        let _span = ppdp::telemetry::span("bench.sanitize_greedy");
        let catalog = synthetic_catalog(60, 4, 2, 5);
        let panel = amd_like(&catalog, TraitId(0), 4, 4, 5);
        let ev = panel.full_evidence(0);
        let targets: Vec<Target> = (0..catalog.n_traits())
            .map(|i| Target::Trait(TraitId(i)))
            .collect();
        let _ = greedy_sanitize(
            &catalog,
            &ev,
            &targets,
            0.95,
            6,
            Predictor::BeliefPropagation(BpConfig::default()),
        );
    }
    use ppdp::telemetry::status_line;
    match std::fs::write(path, rec.take().to_json_pretty()) {
        Ok(()) => eprintln!(
            "{}",
            status_line("saved", &format!("telemetry report → {path}"))
        ),
        Err(e) => eprintln!(
            "{}",
            status_line(
                "error",
                &format!("cannot write telemetry report {path}: {e}")
            )
        ),
    }
}

fn main() {
    if let Ok(path) = std::env::var("PPDP_BENCH_REPORT") {
        dump_telemetry_report(&path);
    }
    benches();
    Criterion::default().configure_from_args().final_summary();
}
