#![allow(missing_docs)] // criterion macros expand undocumented functions

//! Collective-inference (ICA) cost per dataset and local classifier —
//! ablation #1 of DESIGN.md (the local-classifier choice).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppdp::classify::{run_attack, AttackModel, LabeledGraph, LocalKind};
use ppdp::datagen::social::{caltech_like, snap_like};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn known(n: usize) -> Vec<bool> {
    let mut rng = ChaCha8Rng::seed_from_u64(43);
    (0..n).map(|_| rng.gen_bool(0.7)).collect()
}

fn bench_ica(c: &mut Criterion) {
    let mut group = c.benchmark_group("ica_attack");
    group.sample_size(10);
    for data in [snap_like(42), caltech_like(42)] {
        let mask = known(data.graph.user_count());
        for kind in [LocalKind::Bayes, LocalKind::Knn(7), LocalKind::Rst] {
            let id = format!("{}_{}", data.name, kind.name());
            group.bench_with_input(BenchmarkId::from_parameter(id), &data, |b, d| {
                let lg = LabeledGraph::new(&d.graph, d.privacy_cat, mask.clone());
                b.iter(|| {
                    run_attack(
                        std::hint::black_box(&lg),
                        kind,
                        AttackModel::Collective {
                            alpha: 0.5,
                            beta: 0.5,
                        },
                    )
                    .expect("bench data is well-formed")
                    .accuracy
                })
            });
        }
    }
    group.finish();
}

fn bench_attack_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack_model_cost");
    group.sample_size(10);
    let data = caltech_like(42);
    let mask = known(data.graph.user_count());
    let lg = LabeledGraph::new(&data.graph, data.privacy_cat, mask);
    for (name, model) in [
        ("attr_only", AttackModel::AttrOnly),
        ("link_only", AttackModel::LinkOnly),
        (
            "collective",
            AttackModel::Collective {
                alpha: 0.5,
                beta: 0.5,
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                run_attack(std::hint::black_box(&lg), LocalKind::Bayes, model)
                    .expect("bench data is well-formed")
                    .accuracy
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ica, bench_attack_models);
criterion_main!(benches);
