#!/usr/bin/env bash
# Local CI gate: build, test, lint, format — in the order that fails fastest
# on real breakage. Run from the workspace root before pushing.
set -euo pipefail

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --workspace --release

# The suite must pass — with identical results — whether the execution
# layer resolves to one thread or many (ExecPolicy::from_env reads
# PPDP_THREADS, then RAYON_NUM_THREADS).
echo "==> cargo test -q (1 thread)"
RAYON_NUM_THREADS=1 cargo test --workspace -q

echo "==> cargo test -q (4 threads)"
RAYON_NUM_THREADS=4 cargo test --workspace -q

echo "==> sequential-vs-parallel equivalence harness"
cargo test -q -p ppdp --test equivalence

echo "==> causal-trace equivalence harness"
cargo test -q -p ppdp --test trace

echo "==> golden-value regression suite"
cargo test -q -p ppdp --test golden

echo "==> chaos suite (fault injection: no panics allowed)"
cargo test -q -p ppdp --test chaos

# Perf contract of the incremental inference engine: warm-started BP must
# reproduce the full-recompute picks exactly while updating ≤ 25% of its
# messages and running ≥ 5× faster. Writes BENCH_PR4.json, exits non-zero
# on any gate miss.
echo "==> incremental-BP bench gate (bench_pr4)"
cargo run -q --release -p ppdp-bench --bin bench_pr4

# Tracing overhead gate: re-run the bench with the causal-event collector
# live and bound the slowdown of the traced full-recompute pass to < 5%
# relative to the untraced run above. The untraced BENCH_PR4.json is the
# artifact of record and is restored afterwards.
echo "==> tracing overhead gate (< 5% on bench_pr4)"
cp BENCH_PR4.json BENCH_PR4.untraced.json
PPDP_TRACE=1 PPDP_TRACE_OUT=bench_pr4_trace.jsonl \
  cargo run -q --release -p ppdp-bench --bin bench_pr4
awk '
  /"full_recompute"/ { if (match($0, /"wall_ns": *[0-9]+/)) \
      print substr($0, RSTART + 11, RLENGTH - 11) }
' BENCH_PR4.untraced.json BENCH_PR4.json | awk '
  NR == 1 { base = $1 }
  NR == 2 { traced = $1 }
  END {
    if (base == "" || traced == "") { print "missing wall_ns"; exit 1 }
    ratio = traced / base
    printf "untraced %d ns, traced %d ns, ratio %.3f\n", base, traced, ratio
    if (ratio >= 1.05) { print "FAIL: tracing overhead >= 5%"; exit 1 }
  }
'

# Cross-run regression diff gate: the traced re-run must be metric-clean
# against the untraced baseline (wall-time ignored — the overhead gate
# above owns that axis).
echo "==> ppdp-report diff gate"
cargo run -q --release -p ppdp-bench --bin ppdp-report -- \
  diff --ignore-wall BENCH_PR4.untraced.json BENCH_PR4.json
mv BENCH_PR4.untraced.json BENCH_PR4.json
rm -f bench_pr4_trace.jsonl

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Library code of the Result-converted crates must not panic on corrupt
# input: unwrap/expect are reserved for tests, benches, and examples.
# disallowed_methods (clippy.toml) additionally denies raw
# std::thread::spawn — all library threading goes through ppdp-exec.
echo "==> cargo clippy (no unwrap/expect/raw-spawn in lib code)"
for crate in ppdp-errors ppdp-graph ppdp-classify ppdp-sanitize \
    ppdp-tradeoff ppdp-genomic ppdp-dp ppdp-opt ppdp-exec ppdp-telemetry \
    ppdp-trace ppdp; do
  cargo clippy -q -p "$crate" --lib -- \
    -D clippy::unwrap_used -D clippy::expect_used \
    -D clippy::disallowed_methods
done

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "CI OK"
