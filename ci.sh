#!/usr/bin/env bash
# Local CI gate: build, test, lint, format — in the order that fails fastest
# on real breakage. Run from the workspace root before pushing.
set -euo pipefail

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "CI OK"
