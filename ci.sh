#!/usr/bin/env bash
# Local CI gate: build, test, lint, format — in the order that fails fastest
# on real breakage. Run from the workspace root before pushing.
set -euo pipefail

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --workspace --release

# The suite must pass — with identical results — whether the execution
# layer resolves to one thread or many (ExecPolicy::from_env reads
# PPDP_THREADS, then RAYON_NUM_THREADS).
echo "==> cargo test -q (1 thread)"
RAYON_NUM_THREADS=1 cargo test --workspace -q

echo "==> cargo test -q (4 threads)"
RAYON_NUM_THREADS=4 cargo test --workspace -q

echo "==> sequential-vs-parallel equivalence harness"
cargo test -q -p ppdp --test equivalence

echo "==> golden-value regression suite"
cargo test -q -p ppdp --test golden

echo "==> chaos suite (fault injection: no panics allowed)"
cargo test -q -p ppdp --test chaos

# Perf contract of the incremental inference engine: warm-started BP must
# reproduce the full-recompute picks exactly while updating ≤ 25% of its
# messages and running ≥ 5× faster. Writes BENCH_PR4.json, exits non-zero
# on any gate miss.
echo "==> incremental-BP bench gate (bench_pr4)"
cargo run -q --release -p ppdp-bench --bin bench_pr4

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Library code of the Result-converted crates must not panic on corrupt
# input: unwrap/expect are reserved for tests, benches, and examples.
# disallowed_methods (clippy.toml) additionally denies raw
# std::thread::spawn — all library threading goes through ppdp-exec.
echo "==> cargo clippy (no unwrap/expect/raw-spawn in lib code)"
for crate in ppdp-errors ppdp-graph ppdp-classify ppdp-sanitize \
    ppdp-tradeoff ppdp-genomic ppdp-dp ppdp-opt ppdp-exec ppdp-telemetry ppdp; do
  cargo clippy -q -p "$crate" --lib -- \
    -D clippy::unwrap_used -D clippy::expect_used \
    -D clippy::disallowed_methods
done

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "CI OK"
