#!/usr/bin/env bash
# Local CI gate: build, test, lint, format — in the order that fails fastest
# on real breakage. Run from the workspace root before pushing.
set -euo pipefail

cd "$(dirname "$0")"

# The repo must never track machine-local cargo config: its
# [patch.crates-io] entries point at absolute container-image paths
# (/tmp/stubs/*), which break resolution on any other machine and
# silently replace real crates where the paths do exist.
if git ls-files --error-unmatch .cargo >/dev/null 2>&1; then
  echo "FAIL: .cargo/ is tracked by git — it is machine-local offline"
  echo "      wiring and must stay gitignored (see .gitignore)."
  exit 1
fi

# Offline-stub environment notice. When the local (gitignored)
# .cargo/config.toml patches crates-io to /tmp/stubs, two dev-only deps
# are reduced harnesses, so treat those stages accordingly:
#   - proptest: no shrinking, simplified case generation — property
#     suites run as smoke tests only; re-run against the real crate in
#     networked CI before trusting green property results.
#   - criterion: minimal harness — `cargo bench` numbers are NOT
#     comparable to real criterion output. The checked-in BENCH_*.json
#     artifacts are written by the bench_pr4/bench_scale *bins* (plain
#     std::time measurements, no criterion), so they are unaffected.
# Production code is stub-free: JSON (reports, snapshots, traces) is
# hand-rolled in-workspace via ppdp_trace::json.
if grep -qs '/tmp/stubs' .cargo/config.toml; then
  echo "NOTE: offline stub patches active (.cargo/config.toml):"
  echo "      property tests are smoke-level (stub proptest, no"
  echo "      shrinking) and criterion bench numbers are not"
  echo "      comparable to real criterion runs."
  # The checked-in linear golden snapshots were minted with the real
  # rand crates; the stub RNG draws a different stream, so those four
  # comparisons can never match here. Skip them loudly (the golden
  # tests print a SKIPPED notice per snapshot); every other golden —
  # including the environment-minted bootstrapped log-domain snapshot —
  # still compares byte-for-byte.
  export PPDP_SKIP_LINEAR_GOLDEN=1
  echo "      linear golden snapshots: SKIPPED (PPDP_SKIP_LINEAR_GOLDEN=1)"
fi

echo "==> cargo build --release"
cargo build --workspace --release

# Bench harnesses must at least compile against whichever criterion
# (real or stub) is resolved — a bench-only compile break otherwise
# hides until someone runs `cargo bench`.
echo "==> cargo build --benches"
cargo build --workspace --benches

# The suite must pass — with identical results — whether the execution
# layer resolves to one thread or many (ExecPolicy::from_env reads
# PPDP_THREADS, then RAYON_NUM_THREADS).
echo "==> cargo test -q (1 thread)"
RAYON_NUM_THREADS=1 cargo test --workspace -q

echo "==> cargo test -q (4 threads)"
RAYON_NUM_THREADS=4 cargo test --workspace -q

echo "==> sequential-vs-parallel equivalence harness"
cargo test -q -p ppdp --test equivalence

echo "==> causal-trace equivalence harness"
cargo test -q -p ppdp --test trace

echo "==> golden-value regression suite"
cargo test -q -p ppdp --test golden

# Privacy-loss observability gates: all four publish pipelines emit
# lineage records, the composition accountant reconciles **bitwise**
# against live and WAL-recovered ledgers, the audit snapshot is
# policy-invariant byte-for-byte across Sequential/Parallel{1,2,8},
# the release cache answers repeats without re-spending ε, and the
# unattributed-spend lint holds.
echo "==> privacy-audit reconciliation suite"
cargo test -q -p ppdp --test audit

# End-to-end audit trail: a real experiments run must export a parseable
# audit log, pass its own in-process unattributed-spend lint (exit 5 on
# a violation), and render clean through `ppdp-report audit` (exit 1 on
# lint failure), including the lineage DOT export.
echo "==> experiments --audit-out + ppdp-report audit gate"
cargo run -q --release -p ppdp-bench --bin experiments -- \
  ext.dpgenomes --audit-out audit_ci.jsonl >/dev/null
cargo run -q --release -p ppdp-bench --bin ppdp-report -- \
  audit audit_ci.jsonl --dot audit_ci.dot >/dev/null
test -s audit_ci.dot || { echo "FAIL: no lineage DOT written"; exit 1; }
rm -f audit_ci.jsonl audit_ci.dot

# Kernel-equivalence gate: the log-domain (LSE) BP kernel must agree with
# the linear kernel to 1e-9 on golden fixtures, make identical greedy
# sanitize picks, stay bitwise across exec policies and checkpoint/resume
# with warm arenas, and survive the adversarial fixtures (degree-1500 hub
# traits, 10⁴-deep kin chains, near-zero factor tables) that underflow
# the linear kernel.
echo "==> differential kernel-equivalence suite (linear vs log domain)"
cargo test -q -p ppdp --test kernels

# Arena-reuse gate: 50 back-to-back publishes on one publisher must show
# flat per-publish allocation growth and warm-arena hits in the metrics
# registry (its own test binary: it swaps in the counting allocator).
echo "==> BP arena-reuse leak gate"
cargo test -q -p ppdp --test arena

echo "==> chaos suite (fault injection: no panics allowed)"
cargo test -q -p ppdp --test chaos

# Crash-injection gate: SIGKILL/abort a real publish pipeline at every
# deterministic durability boundary plus randomized timed kills, under
# both execution policies. Each kill must recover to a byte-identical
# artifact with a ledger that never under-counts spent ε; also covers the
# experiments driver's SIGTERM checkpoint/resume path.
echo "==> crash-injection harness (kill-mid-run recovery)"
cargo test -q -p ppdp-bench --test crash

# Perf contract of the incremental inference engine: warm-started BP must
# reproduce the full-recompute picks exactly while updating ≤ 25% of its
# messages and running ≥ 5× faster. Writes BENCH_PR4.json, exits non-zero
# on any gate miss.
echo "==> incremental-BP bench gate (bench_pr4)"
cargo run -q --release -p ppdp-bench --bin bench_pr4

# Tracing overhead gate: re-run the bench with the causal-event collector
# live and bound the slowdown of the traced full-recompute pass to < 5%
# relative to the untraced run above. The untraced BENCH_PR4.json is the
# artifact of record and is restored afterwards.
echo "==> tracing overhead gate (< 5% on bench_pr4)"
cp BENCH_PR4.json BENCH_PR4.untraced.json
PPDP_TRACE=1 PPDP_TRACE_OUT=bench_pr4_trace.jsonl \
  cargo run -q --release -p ppdp-bench --bin bench_pr4
awk '
  /"full_recompute"/ { if (match($0, /"wall_ns": *[0-9]+/)) \
      print substr($0, RSTART + 11, RLENGTH - 11) }
' BENCH_PR4.untraced.json BENCH_PR4.json | awk '
  NR == 1 { base = $1 }
  NR == 2 { traced = $1 }
  END {
    if (base == "" || traced == "") { print "missing wall_ns"; exit 1 }
    ratio = traced / base
    printf "untraced %d ns, traced %d ns, ratio %.3f\n", base, traced, ratio
    if (ratio >= 1.05) { print "FAIL: tracing overhead >= 5%"; exit 1 }
  }
'

# Cross-run regression diff gate: the traced re-run must be metric-clean
# against the untraced baseline (wall-time ignored — the overhead gate
# above owns that axis).
echo "==> ppdp-report diff gate"
cargo run -q --release -p ppdp-bench --bin ppdp-report -- \
  diff --ignore-wall BENCH_PR4.untraced.json BENCH_PR4.json
mv BENCH_PR4.untraced.json BENCH_PR4.json
rm -f bench_pr4_trace.jsonl

# Metrics overhead gate: same shape as the tracing gate — re-run the
# bench with the live registry, heartbeat and allocation tee enabled and
# bound the slowdown of the full-recompute pass to < 5%. The plain
# BENCH_PR4.json stays the artifact of record.
echo "==> metrics overhead gate (< 5% on bench_pr4)"
cp BENCH_PR4.json BENCH_PR4.plain.json
PPDP_METRICS=1 PPDP_METRICS_OUT=bench_pr4_metrics.om \
  cargo run -q --release -p ppdp-bench --bin bench_pr4
awk '
  /"full_recompute"/ { if (match($0, /"wall_ns": *[0-9]+/)) \
      print substr($0, RSTART + 11, RLENGTH - 11) }
' BENCH_PR4.plain.json BENCH_PR4.json | awk '
  NR == 1 { base = $1 }
  NR == 2 { metered = $1 }
  END {
    if (base == "" || metered == "") { print "missing wall_ns"; exit 1 }
    ratio = metered / base
    printf "plain %d ns, metered %d ns, ratio %.3f\n", base, metered, ratio
    if (ratio >= 1.05) { print "FAIL: metrics overhead >= 5%"; exit 1 }
  }
'
test -s bench_pr4_metrics.om || { echo "FAIL: no metrics snapshot written"; exit 1; }
mv BENCH_PR4.plain.json BENCH_PR4.json
rm -f bench_pr4_metrics.om

# Live-exposition smoke test + paper-scale harness (ci profile): the
# run must complete, self-scrape a valid OpenMetrics payload containing
# the BP progress gauge and per-span allocation series, and produce
# RSS/allocation columns; its JSON must then diff clean against itself
# with the wall-time class armed at 1.5× (exercises the wall and memory
# metric classes end-to-end, so a stored-baseline BENCH_SCALE diff
# regression fails loudly rather than skipping the wall axis).
echo "==> bench_scale scrape + resource-accounting gate (ci profile)"
cargo run -q --release -p ppdp-bench --bin bench_scale -- \
  --profile ci --out BENCH_SCALE.ci.json
cargo run -q --release -p ppdp-bench --bin ppdp-report -- \
  diff --wall-ratio 1.5 BENCH_SCALE.ci.json BENCH_SCALE.ci.json
rm -f BENCH_SCALE.ci.json

# Paper-extreme scale gate: the 10⁶-node graph row and the 10⁵-SNP genome
# row (both message domains) must complete within a 3 GiB peak-RSS budget,
# the log-domain row must converge with zero underflow repairs, it must
# not need more sweeps than the linear row, and the blocked kernels must
# beat the in-run scalar rows (the pre-blocking kernels) by ≥ 1.5× wall
# time on the genome_log and 10⁶-node graph rows. The checked-in
# BENCH_SCALE.json baseline is left untouched.
echo "==> bench_scale 10⁶-node gate (gate profile, 3 GiB RSS, ≥1.5× blocked)"
cargo run -q --release -p ppdp-bench --bin bench_scale -- \
  --profile gate --out BENCH_SCALE.gate.json \
  --max-peak-rss-bytes 3221225472 --min-speedup 1.5
rm -f BENCH_SCALE.gate.json

# Kernel hot-loop idiom lint: the blocked BP kernels must stay on
# iterator/chunks_exact form — indexed `for i in 0..N` inner loops defeat
# the bounds-check elision LLVM needs to vectorize them.
echo "==> kernel vectorization lint (no indexed inner loops)"
if grep -nE 'for [A-Za-z_]+ in 0\.\.[0-9]' crates/genomic/src/kernels.rs; then
  echo "FAIL: indexed inner loop in crates/genomic/src/kernels.rs —"
  echo "      use iterators / chunks_exact so the loop vectorizes."
  exit 1
fi

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Library code of the Result-converted crates must not panic on corrupt
# input: unwrap/expect are reserved for tests, benches, and examples.
# disallowed_methods (clippy.toml) additionally denies raw
# std::thread::spawn — all library threading goes through ppdp-exec.
echo "==> cargo clippy (no unwrap/expect/raw-spawn in lib code)"
for crate in ppdp-errors ppdp-durable ppdp-graph ppdp-classify ppdp-sanitize \
    ppdp-tradeoff ppdp-genomic ppdp-dp ppdp-opt ppdp-exec ppdp-telemetry \
    ppdp-metrics ppdp-trace ppdp-audit ppdp; do
  cargo clippy -q -p "$crate" --lib -- \
    -D clippy::unwrap_used -D clippy::expect_used \
    -D clippy::disallowed_methods
done

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "CI OK"
