#!/usr/bin/env bash
# Local CI gate: build, test, lint, format — in the order that fails fastest
# on real breakage. Run from the workspace root before pushing.
set -euo pipefail

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> chaos suite (fault injection: no panics allowed)"
cargo test -q -p ppdp --test chaos

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Library code of the Result-converted crates must not panic on corrupt
# input: unwrap/expect are reserved for tests, benches, and examples.
echo "==> cargo clippy (no unwrap/expect in converted lib code)"
for crate in ppdp-errors ppdp-graph ppdp-classify ppdp-sanitize \
    ppdp-tradeoff ppdp-genomic ppdp-dp ppdp-opt ppdp; do
  cargo clippy -q -p "$crate" --lib -- \
    -D clippy::unwrap_used -D clippy::expect_used
done

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "CI OK"
