//! The Chapter 3 attack matrix: three attack models (attributes only,
//! links only, collective inference) × three local classifiers (Naive
//! Bayes, KNN, Rough-Set rules), before and after sanitization.
//!
//! Run with: `cargo run --release --example social_inference_attack`

use ppdp::classify::run_attack;
use ppdp::datagen::social::snap_like;
use ppdp::prelude::*;
use ppdp::sanitize::depend::most_dependent_attributes;
use ppdp::sanitize::{dependency_report, remove_indistinguishable_links};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<()> {
    let data = snap_like(42);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let known: Vec<bool> = (0..data.graph.user_count())
        .map(|_| rng.gen_bool(0.7))
        .collect();

    let kinds = [LocalKind::Bayes, LocalKind::Knn(7), LocalKind::Rst];
    let models = [
        ("AttrOnly", AttackModel::AttrOnly),
        ("LinkOnly", AttackModel::LinkOnly),
        (
            "CC(ICA) ",
            AttackModel::Collective {
                alpha: 0.5,
                beta: 0.5,
            },
        ),
    ];

    println!("== attack accuracy on the sensitive attribute (original graph) ==");
    println!("{:<10} {:>8} {:>8} {:>8}", "model", "Bayes", "KNN", "RST");
    for (name, model) in models {
        print!("{name:<10}");
        for kind in kinds {
            let lg = LabeledGraph::new(&data.graph, data.privacy_cat, known.clone());
            print!(" {:>8.3}", run_attack(&lg, kind, model)?.accuracy);
        }
        println!();
    }

    // Dependency analysis: which public attributes drive the prediction?
    let rep = dependency_report(&data.graph, data.privacy_cat, data.utility_cat);
    println!(
        "\nPDAs (reduct for the sensitive attribute): {:?}",
        rep.pdas
    );
    println!("UDAs (reduct for the utility attribute)  : {:?}", rep.udas);
    println!("Core (shared)                            : {:?}", rep.core);

    // Sanitize: hide the 4 most privacy-dependent attributes and remove
    // 400 indistinguishable links.
    let mut sanitized = data.graph.clone();
    for cat in most_dependent_attributes(&data.graph, data.privacy_cat, 4) {
        sanitized.clear_category(cat);
    }
    let sanitized = remove_indistinguishable_links(
        &sanitized,
        data.privacy_cat,
        &known,
        LocalKind::Bayes,
        400,
    )?;

    println!("\n== after removing 4 PDAs and 400 indistinguishable links ==");
    println!("{:<10} {:>8} {:>8} {:>8}", "model", "Bayes", "KNN", "RST");
    for (name, model) in models {
        print!("{name:<10}");
        for kind in kinds {
            let lg = LabeledGraph::new(&sanitized, data.privacy_cat, known.clone());
            print!(" {:>8.3}", run_attack(&lg, kind, model)?.accuracy);
        }
        println!();
    }
    Ok(())
}
