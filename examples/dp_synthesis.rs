//! Differentially-private publishing of high-dimensional categorical data:
//! fit a noisy low-dimensional (Bayesian-network) approximation, sample
//! synthetic records, and measure utility across ε — the recipe the
//! dissertation proposes for genomic/IoT-scale data.
//!
//! Run with: `cargo run --release --example dp_synthesis`

use ppdp::datagen::microdata::correlated_microdata;
use ppdp::dp::{dp_quantile, dp_range_count, is_k_anonymous, NoisyCdf};
use ppdp::prelude::Result;
use ppdp::publish::DpPublisher;

fn main() -> Result<()> {
    // A chain-correlated table: 5 000 records × 8 categorical columns.
    let original = correlated_microdata(5_000, 8, 4, 0.85, 42);
    println!(
        "original table: {} rows × {} cols (chain-correlated)",
        original.n_rows(),
        original.n_cols()
    );

    println!("\nε sweep — synthetic-data utility (total variation distance, lower = better):");
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "epsilon", "tvd[c0]", "tvd[c0,c1]", "MI(c0,c1)"
    );
    for &eps in &[0.05, 0.2, 1.0, 5.0, 50.0] {
        let synth = DpPublisher::new(eps, 1).publish(&original, 5_000, 7)?.table;
        println!(
            "{:>8.2} {:>12.4} {:>12.4} {:>12.4}",
            eps,
            original.marginal_tvd(&synth, &[0]),
            original.marginal_tvd(&synth, &[0, 1]),
            synth.mutual_information(0, 1),
        );
    }
    println!(
        "(true MI(c0,c1) in the original: {:.4})",
        original.mutual_information(0, 1)
    );

    // DP aggregation: one noisy histogram answers any number of range /
    // quantile queries.
    let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(7);
    let cdf = NoisyCdf::build(&mut rng, &original, 0, 1.0);
    println!("\nDP aggregation over column 0 at ε = 1:");
    println!("  noisy total            : {:.0}", cdf.total());
    println!("  noisy count of [1, 2]  : {:.0}", cdf.range_count(1, 2));
    println!("  noisy median           : {}", cdf.quantile(0.5));
    println!(
        "  one-shot range [0, 1]  : {:.0}",
        dp_range_count(&mut rng, &original, 0, (0, 1), 1.0)
    );
    println!(
        "  one-shot 90th pct      : {}",
        dp_quantile(&mut rng, &original, 0, 0.9, 1.0)
    );

    // Baseline contrast: the synthetic table's k-anonymity w.r.t. the
    // first two columns as quasi-identifiers.
    let synth = DpPublisher::new(1.0, 1).publish(&original, 5_000, 7)?.table;
    for k in [2, 5, 20] {
        println!(
            "synthetic table is {k}-anonymous on (c0, c1): {}",
            is_k_anonymous(&synth, &[0, 1], k)
        );
    }
    Ok(())
}
