//! Chapter 4 per-user optimization: maximize a user's latent-data privacy
//! under a δ prediction-utility-loss budget, and show how the adversary's
//! knowledge (profile / strategy) changes what they can infer.
//!
//! Run with: `cargo run --release --example latent_tradeoff`

use ppdp::prelude::Result;
use ppdp::tradeoff::adversary::ALL_KNOWLEDGE;
use ppdp::tradeoff::{
    hamming_disparity, latent_privacy, optimize_attribute_strategy, prediction_utility_loss,
    AttributeStrategy, OptimizeConfig, Profile,
};

fn main() -> Result<()> {
    // A user with four plausible attribute sets: (music taste, club
    // membership). The adversary's profile ψ(X) says the first is likely.
    let variants = vec![
        vec![Some(0), Some(0)],
        vec![Some(0), Some(1)],
        vec![Some(1), Some(0)],
        vec![Some(1), Some(1)],
    ];
    let profile = Profile::new(variants.clone(), vec![0.4, 0.3, 0.2, 0.1]);

    // Z_X: the SLA (say, political view) prediction each true attribute set
    // would induce — club membership is highly indicative.
    let predictions = vec![
        vec![0.9, 0.1],
        vec![0.2, 0.8],
        vec![0.8, 0.2],
        vec![0.1, 0.9],
    ];

    println!("δ sweep — privacy the optimizer can buy with utility loss:");
    println!("{:>6} {:>12} {:>12}", "delta", "privacy", "PUL used");
    for &delta in &[0.0, 0.3, 0.6, 1.0, 2.0] {
        let initial = AttributeStrategy::identity(variants.clone());
        let (strategy, privacy) = optimize_attribute_strategy(
            &profile,
            &initial,
            &predictions,
            hamming_disparity,
            OptimizeConfig {
                grid: 4,
                sweeps: 4,
                delta,
            },
        )?;
        let pul = prediction_utility_loss(&profile, &strategy, hamming_disparity);
        println!("{delta:>6.1} {privacy:>12.4} {pul:>12.4}");
    }

    // Fix one sanitization (hide the club-membership attribute) and vary
    // the adversary's knowledge — Fig. 4.3's four cases.
    let strategy = AttributeStrategy::removal(variants.clone(), &[1]);
    println!("\nadversary knowledge cases (strategy: hide attribute 1):");
    for k in ALL_KNOWLEDGE {
        let (bp, bs) = k.believed(&profile, &strategy);
        let privacy = latent_privacy(&profile, &strategy, &bp, &bs, &predictions);
        println!("  {:<24} latent-data privacy = {:.4}", k.name(), privacy);
    }
    Ok(())
}
