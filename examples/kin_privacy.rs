//! Kin genomic privacy: a relative's published genome threatens *your*
//! genotype and phenotype privacy even if you never release anything —
//! the Lacks-family scenario that motivates Chapter 5.
//!
//! Run with: `cargo run --release --example kin_privacy`

use ppdp::datagen::genomes::amd_like;
use ppdp::datagen::gwas::synthetic_catalog;
use ppdp::genomic::kinship::{kin_attack, kin_greedy_sanitize, Family, KinTarget};
use ppdp::genomic::{entropy_privacy, Evidence};
use ppdp::prelude::*;

fn main() -> Result<()> {
    let catalog = synthetic_catalog(80, 6, 2, 42);
    let panel = amd_like(&catalog, TraitId(0), 20, 20, 42);

    // The parent (panel individual 0, a case) publishes their full genome;
    // the child publishes nothing at all.
    let mut family = Family::new();
    let parent = family.member(panel.full_evidence(0));
    let child = family.member(Evidence::none());
    family.relate(parent, child);

    let (result, idx) = kin_attack(&catalog, &family, BpConfig::default())?;

    println!(
        "parent released {} SNPs; child released nothing\n",
        panel.full_evidence(0).snps.len()
    );
    println!("attacker's view of the CHILD (who published nothing):");
    println!(
        "{:<26} {:>10} {:>10} {:>10}",
        "disease", "prior", "P(kin-BP)", "privacy"
    );
    for (t, info) in catalog.traits() {
        if let Some(i) = idx.trait_(child, t) {
            let m = result.trait_marginals[i];
            println!(
                "{:<26} {:>10.4} {:>10.4} {:>10.4}",
                info.name,
                info.prevalence,
                m[1],
                entropy_privacy(&m)
            );
        }
    }

    // Compare: the child in isolation (no relatives) — the attacker only
    // has the population priors.
    let mut lone = Family::new();
    let solo = lone.member(Evidence::none());
    let (baseline, idx0) = kin_attack(&catalog, &lone, BpConfig::default())?;
    println!("\nshift from the no-relatives baseline (|ΔP(disease)|):");
    for (t, info) in catalog.traits() {
        if let (Some(i), Some(j)) = (idx.trait_(child, t), idx0.trait_(solo, t)) {
            let shift = (result.trait_marginals[i][1] - baseline.trait_marginals[j][1]).abs();
            println!("  {:<26} {shift:.4}", info.name);
        }
    }

    // Genotype leakage: the child's most exposed loci.
    println!("\nchild's five most exposed genotypes (max posterior mass):");
    let mut exposed: Vec<(SnpId, f64)> = (0..catalog.n_snps())
        .filter_map(|s| {
            idx.snp(child, SnpId(s)).map(|i| {
                let m = result.snp_marginals[i];
                (SnpId(s), m.iter().cloned().fold(f64::MIN, f64::max))
            })
        })
        .collect();
    exposed.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (s, conf) in exposed.into_iter().take(5) {
        println!("  {s}: attacker confidence {conf:.3}");
    }

    // Defence: which of the PARENT's SNPs must be withheld so the child's
    // disease statuses stay private (the consent problem)?
    let targets: Vec<KinTarget> = (0..catalog.n_traits())
        .map(|t| KinTarget::Trait(child, TraitId(t)))
        .collect();
    let out = kin_greedy_sanitize(
        &catalog,
        &family,
        parent,
        &targets,
        0.95,
        12,
        BpConfig::default(),
    )?;
    println!(
        "
kin-aware sanitization of the parent's release (delta = 0.95):"
    );
    println!(
        "  SNPs the parent must withhold : {} of {}",
        out.withheld.len(),
        panel.n_snps()
    );
    println!(
        "  child privacy trajectory      : {:?}",
        out.history
            .iter()
            .map(|x| (x * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    println!("  delta satisfied               : {}", out.satisfied);
    Ok(())
}
