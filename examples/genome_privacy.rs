//! Chapter 5 end-to-end: a belief-propagation inference attack on an
//! individual's hidden disease status from their released SNPs, then
//! greedy SNP sanitization to δ-privacy.
//!
//! Run with: `cargo run --release --example genome_privacy`

use ppdp::datagen::genomes::amd_like;
use ppdp::datagen::gwas::synthetic_catalog;
use ppdp::genomic::sanitize::Target;
use ppdp::genomic::{entropy_privacy, naive_bayes_marginals};
use ppdp::prelude::*;
use ppdp::publish::GenomePublisher;

fn main() -> Result<()> {
    // A GWAS-Catalog-like association database over the dissertation's
    // seven Table 5.3 diseases, and an AMD-style case/control panel.
    let catalog = synthetic_catalog(200, 6, 2, 42);
    let panel = amd_like(&catalog, TraitId(0), 96, 50, 42);
    println!(
        "catalog: {} traits, {} associations over {} SNP loci",
        catalog.n_traits(),
        catalog.associations().len(),
        catalog.n_snps()
    );
    println!(
        "panel: {} individuals ({} cases)",
        panel.n_individuals(),
        96
    );

    // Individual 0 is a case; they release all their SNPs but not their
    // disease status. How much does the attacker learn?
    let victim = 0usize;
    let evidence = panel.full_evidence(victim);
    let graph = FactorGraph::build(&catalog, &evidence)?;
    let bp = BpConfig::default().run(&graph);
    let nb = naive_bayes_marginals(&catalog, &evidence)?;

    println!(
        "\nattacker posteriors for the focal disease (truth: case = {}):",
        panel.case[victim]
    );
    let t = graph.trait_local(TraitId(0)).expect("focal trait in graph");
    println!(
        "  belief propagation: P(disease) = {:.3}  (entropy privacy {:.3})",
        bp.trait_marginals[t][1],
        entropy_privacy(&bp.trait_marginals[t])
    );
    println!(
        "  naive bayes       : P(disease) = {:.3}  (entropy privacy {:.3})",
        nb.trait_marginals[t][1],
        entropy_privacy(&nb.trait_marginals[t])
    );

    // Defend: hide the fewest SNPs such that every disease's entropy
    // privacy reaches δ = 0.9 against the BP attacker.
    let targets: Vec<Target> = (0..catalog.n_traits())
        .map(|i| Target::Trait(TraitId(i)))
        .collect();
    let report = GenomePublisher::new(&catalog, 0.9).publish(&evidence, &targets)?;
    let (released, outcome) = (report.released, report.outcome);

    println!("\ngreedy δ-privacy sanitization (δ = 0.9):");
    println!("  SNPs released originally : {}", evidence.snps.len());
    println!(
        "  SNPs hidden              : {} → {:?}",
        outcome.removed.len(),
        outcome.removed
    );
    println!("  SNPs still released      : {}", released.snps.len());
    println!(
        "  min-target privacy path  : {:?}",
        rounded(&outcome.history)
    );
    println!(
        "  attacker error path      : {:?}",
        rounded(&outcome.error_history)
    );
    println!("  δ satisfied              : {}", outcome.satisfied);

    // Verify: re-run the attack on the sanitized release.
    let graph2 = FactorGraph::build(&catalog, &released)?;
    let bp2 = BpConfig::default().run(&graph2);
    let t2 = graph2.trait_local(TraitId(0)).expect("still materialized");
    println!(
        "\npost-release BP posterior: P(disease) = {:.3} (entropy privacy {:.3})",
        bp2.trait_marginals[t2][1],
        entropy_privacy(&bp2.trait_marginals[t2])
    );

    // Every pipeline run carries its telemetry: spans, counters, residuals.
    println!("\nrun telemetry:\n{}", report.telemetry.to_text());
    Ok(())
}

fn rounded(xs: &[f64]) -> Vec<f64> {
    xs.iter().map(|x| (x * 1000.0).round() / 1000.0).collect()
}
