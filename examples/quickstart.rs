//! Quickstart: sanitize a social dataset against sensitive-attribute
//! inference attacks and check what the attacker can still do.
//!
//! Run with: `cargo run --release --example quickstart`

use ppdp::datagen::social::caltech_like;
use ppdp::prelude::*;

fn main() -> Result<()> {
    // A Caltech-like dataset (769 users, 16 656 friendships, 7 attribute
    // categories; the sensitive attribute is the 4-ary student/faculty
    // status flag).
    let data = caltech_like(42);
    println!(
        "dataset: {} users, {} links, {} categories",
        data.graph.user_count(),
        data.graph.edge_count(),
        data.graph.schema().len()
    );

    // Publish with Algorithm 2 (collective sanitization): remove the
    // privacy-dependent attributes that carry no utility, generalize the
    // shared Core, and additionally drop 200 indistinguishable links.
    let report = SocialPublisher::new(&data)
        .generalization_level(3)
        .remove_links(200)
        .known_fraction(0.7)
        .local_classifier(LocalKind::Bayes)
        .evidence_mix(0.5, 0.5)
        .publish(7)?;

    println!("\ncollective sanitization plan:");
    println!("  removed categories   : {:?}", report.plan.removed);
    println!("  perturbed categories : {:?}", report.plan.perturbed);
    println!("  generalization level : {}", report.plan.level);

    println!("\nattack accuracy on the sensitive attribute (ICA-Bayes):");
    println!(
        "  before sanitization : {:.3}",
        report.privacy_accuracy_before
    );
    println!(
        "  after sanitization  : {:.3}",
        report.privacy_accuracy_after
    );
    println!(
        "\nattack accuracy on the utility attribute after sanitization: {:.3}",
        report.utility_accuracy_after
    );
    println!(
        "utility/privacy ratio: {:.3}",
        report.utility_accuracy_after / report.privacy_accuracy_after
    );
    Ok(())
}
